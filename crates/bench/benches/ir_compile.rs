//! Microbenchmarks for the compiled flat-IR engines (PR7): the
//! tree-walking interpreters versus stack evaluation of the flat IR on a
//! dedupe-heavy XPath parent-step query and a FLWOR-heavy aggregate
//! XQuery, plus the one-off cost of compiling each to IR.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use xic_workload::{generate, WorkloadConfig};
use xic_xml::parse_document;
use xic_xpath::NodeRef;
use xic_xquery::XProgram;

fn bench_ir(c: &mut Criterion) {
    let w = generate(WorkloadConfig::sized_kib(128, 1));
    let (doc, _) = parse_document(&w.xml).unwrap();

    // Dedupe-heavy: every hit of `//name/..` is produced once per `name`
    // child, so the sort/dedupe pass dominates evaluation.
    let parent_q = xic_xpath::parse("//name/..").unwrap();
    let (parent_prog, parent_root) = xic_xpath::ir::compile(&parent_q);
    let expected = xic_xpath::evaluate_nodes(&parent_q, &xic_xpath::Context::root(&doc))
        .unwrap()
        .len();
    assert!(expected > 0);
    let count_nodes = |hits: Vec<NodeRef>| {
        assert_eq!(hits.len(), expected);
    };

    let mut group = c.benchmark_group("ir_xpath");
    group.bench_function("dedupe_parent_interpreted_128k", |b| {
        let ctx = xic_xpath::Context::root(&doc);
        b.iter(|| count_nodes(xic_xpath::evaluate_nodes(&parent_q, &ctx).unwrap()));
    });
    group.bench_function("dedupe_parent_compiled_128k", |b| {
        b.iter(|| count_nodes(parent_prog.evaluate_nodes(parent_root, &doc).unwrap()));
    });
    group.finish();

    // FLWOR-heavy: one binding per reviewer, a let-bound sequence and an
    // aggregate per binding; the threshold never trips, so every binding
    // is visited.
    let flwor_text =
        "exists(for $r in //rev let $d := $r/sub where count($d) > 1000 return <idle/>)";
    let flwor_q = xic_xquery::parse_query(flwor_text).unwrap();
    let flwor_prog = XProgram::compile(&flwor_q);

    let mut group = c.benchmark_group("ir_xquery");
    group.bench_function("flwor_aggregate_interpreted_128k", |b| {
        b.iter(|| {
            assert!(!xic_xquery::eval_query_bool(&flwor_q, &doc).unwrap());
        });
    });
    group.bench_function("flwor_aggregate_compiled_128k", |b| {
        b.iter(|| {
            assert!(!flwor_prog.eval_bool(&doc, &[]).unwrap());
        });
    });
    group.finish();

    // Compilation itself must stay cheap enough to run once per pattern
    // registration without registering on the schema-design-time budget.
    let mut group = c.benchmark_group("ir_compile_cost");
    group.bench_function("compile_xpath_parent", |b| {
        b.iter(|| black_box(xic_xpath::ir::compile(black_box(&parent_q))));
    });
    group.bench_function("compile_xquery_flwor", |b| {
        b.iter(|| black_box(XProgram::compile(black_box(&flwor_q))));
    });
    group.finish();
}

criterion_group!(benches, bench_ir);
criterion_main!(benches);

//! Microbenchmarks for the substrates: XML parsing, shredding, XPath
//! descendant queries and XUpdate apply/undo throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use xic_mapping::{shred, RelSchema};
use xic_workload::{generate, WorkloadConfig};
use xic_xml::{apply, parse_document, undo, Dtd, XUpdateDoc};

fn bench_micro(c: &mut Criterion) {
    let w = generate(WorkloadConfig::sized_kib(128, 1));
    let dtd = Dtd::parse(xic_bench::dtd_text()).unwrap();
    let (doc, _) = parse_document(&w.xml).unwrap();
    let schema = RelSchema::from_dtd(&dtd).unwrap();

    let mut group = c.benchmark_group("micro");
    group.throughput(Throughput::Bytes(w.xml.len() as u64));
    group.bench_function("xml_parse_128k", |b| {
        b.iter(|| {
            let (d, _) = parse_document(&w.xml).unwrap();
            assert!(d.node_count() > 100);
        });
    });
    group.bench_function("dtd_validate_128k", |b| {
        b.iter(|| dtd.validate(&doc).unwrap());
    });
    group.bench_function("shred_128k", |b| {
        b.iter(|| {
            let db = shred(&doc, &schema);
            assert!(db.total_tuples() > 100);
        });
    });
    group.finish();

    let mut group = c.benchmark_group("micro_queries");
    let q_desc = xic_xpath::parse("//rev/name/text()").unwrap();
    group.bench_function("xpath_descendant_names", |b| {
        let ctx = xic_xpath::Context::root(&doc);
        b.iter(|| {
            let v = xic_xpath::evaluate(&q_desc, &ctx).unwrap();
            assert!(matches!(v, xic_xpath::XValue::Nodes(ref ns) if !ns.is_empty()));
        });
    });
    let q_agg = xic_xquery::parse_query(
        "exists(for $r in //rev let $d := $r/sub where count($d) > 1000 return <idle/>)",
    )
    .unwrap();
    group.bench_function("xquery_flwor_aggregate", |b| {
        b.iter(|| {
            assert!(!xic_xquery::eval_query_bool(&q_agg, &doc).unwrap());
        });
    });
    group.finish();

    let mut group = c.benchmark_group("micro_updates");
    let stmt = XUpdateDoc::parse(&xic_workload::legal_insert(0, 0, 77)).unwrap();
    let mut doc2 = doc.clone();
    group.bench_function("xupdate_apply_undo", |b| {
        b.iter(|| {
            let applied = apply(&mut doc2, &stmt, &xicheck::xpath_resolver).unwrap();
            undo(&mut doc2, applied);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_micro);
criterion_main!(benches);

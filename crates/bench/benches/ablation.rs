//! E4 — ablations for the design choices DESIGN.md calls out:
//!
//! * the element-name index (`//tag` as a lookup vs a full scan), which
//!   stands in for a repository's structural index;
//! * parameter instantiation: the simplified check with concrete values
//!   vs the same check shape with a fresh quantifier (what the optimized
//!   query would cost without the update-time placeholders).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xic_bench::{dtd_text, Experiment};
use xic_workload::{generate, WorkloadConfig};
use xicheck::Checker;

fn bench_name_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_name_index");
    group.sample_size(10);
    for kib in [32usize, 128] {
        let w = generate(WorkloadConfig::sized_kib(kib, 1));
        let mut checker = Checker::new(
            &w.xml,
            dtd_text(),
            xic_workload::conflict_constraint(),
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::new("full_check_indexed", kib), &kib, |b, _| {
            b.iter(|| {
                assert!(checker.check_full().unwrap().is_none());
            });
        });
        checker.doc_mut().disable_name_index();
        group.bench_with_input(
            BenchmarkId::new("full_check_unindexed", kib),
            &kib,
            |b, _| {
                b.iter(|| {
                    assert!(checker.check_full().unwrap().is_none());
                });
            },
        );
    }
    group.finish();
}

fn bench_instantiation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_parameter_instantiation");
    group.sample_size(10);
    let kib = 128;
    let inst = xic_bench::instance(Experiment::ConflictOfInterests, kib, 1);
    let legal = inst.legal.clone();
    // Optimized check with instantiated parameters (the real thing).
    group.bench_function("optimized_with_parameters", |b| {
        b.iter(|| {
            assert!(inst.checker.check_optimized(&legal).unwrap().is_none());
        });
    });
    // The same simplified-shape check with the target reviewer left as a
    // quantified variable (i.e. checked against *every* reviewer instead
    // of the update's target): measures what instantiation buys (the
    // paper's "specific values … allow one to filter"). The author name
    // is the legal statement's fresh author, so the outcome matches the
    // instantiated check (no violation).
    let shape = xic_xquery::parse_query(
        "some $r in //rev, $d in //aut satisfies \
         $d/name/text() = \"newcomer900001\" and \
         $d/../aut/name/text() = $r/name/text()",
    )
    .unwrap();
    group.bench_function("optimized_shape_without_parameters", |b| {
        b.iter(|| {
            assert!(!xic_xquery::eval_query_bool(&shape, inst.checker.doc()).unwrap());
        });
    });
    group.finish();
}

criterion_group!(benches, bench_name_index, bench_instantiation);
criterion_main!(benches);

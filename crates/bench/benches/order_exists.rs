//! Microbenchmarks for the PR3 fast paths: rank-cached document-order
//! deduplication, lazy descendant iteration, and the optimized pre-update
//! check at Section 7 corpus sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use xic_bench::{instance, Experiment};
use xic_workload::{generate, WorkloadConfig};
use xic_xml::parse_document;
use xic_xpath::NodeRef;

fn bench_order_exists(c: &mut Criterion) {
    let w = generate(WorkloadConfig::sized_kib(128, 1));
    let (doc, _) = parse_document(&w.xml).unwrap();
    let mut plain = doc.clone();
    plain.disable_order_cache();

    // An adversarial multiset: every node in reverse preorder, with every
    // third node duplicated — the worst case sort/dedupe input.
    let mut refs: Vec<NodeRef> = doc
        .descendants(doc.document_node())
        .map(NodeRef::Node)
        .collect();
    refs.reverse();
    let dups: Vec<NodeRef> = refs.iter().cloned().step_by(3).collect();
    refs.extend(dups);

    let mut group = c.benchmark_group("order");
    group.bench_function("dedupe_doc_order_cached_128k", |b| {
        b.iter(|| {
            let mut v = refs.clone();
            xic_xpath::dedupe_doc_order(&doc, &mut v);
            assert!(v.len() < refs.len());
        });
    });
    group.bench_function("dedupe_doc_order_uncached_128k", |b| {
        b.iter(|| {
            let mut v = refs.clone();
            xic_xpath::dedupe_doc_order(&plain, &mut v);
            assert!(v.len() < refs.len());
        });
    });
    group.bench_function("descendants_iter_128k", |b| {
        b.iter(|| {
            assert!(doc.descendants(doc.document_node()).count() > 100);
        });
    });
    group.finish();

    let mut group = c.benchmark_group("check");
    for kib in [32, 128] {
        let inst = instance(Experiment::ConflictOfInterests, kib, 1);
        let legal = inst.legal.clone();
        group.bench_function(&format!("check_optimized_{kib}k"), |b| {
            b.iter(|| {
                assert!(inst.checker.check_optimized(&legal).unwrap().is_none());
            });
        });
        let mut violating = instance(Experiment::ConflictOfInterests, kib, 1);
        let illegal = violating.illegal.clone();
        violating.checker.apply_unchecked(&illegal).unwrap();
        violating.checker.set_parallel_full(Some(false));
        group.bench_function(&format!("check_full_exists_{kib}k"), |b| {
            b.iter(|| {
                assert!(violating.checker.check_full().unwrap().is_some());
            });
        });
        group.bench_function(&format!("check_full_materialized_{kib}k"), |b| {
            b.iter(|| {
                assert!(violating.checker.check_full_materialized().unwrap().is_some());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_order_exists);
criterion_main!(benches);

//! E3 — compile-time simplification latency. The paper (footnote 4)
//! reports "the simplified constraints of examples 1 and 6 were generated
//! in less than 50 ms"; this bench measures our `Simp` on the same inputs,
//! plus the full map+simplify+translate pattern compilation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeSet;
use xic_datalog::{parse_denials, parse_update};
use xic_simplify::{simp, FreshSpec, SimpConfig};

fn bench_simplify(c: &mut Criterion) {
    // Example 6: conflict of interests against the single-author
    // submission pattern.
    let gamma = parse_denials(
        "<- rev(Ir,_,_,R) & sub(Is,_,Ir,_) & auts(_,_,Is,R).
         <- rev(Ir,_,_,R) & sub(Is,_,Ir,_) & auts(_,_,Is,A)
            & aut(_,_,Ip,R) & aut(_,_,Ip,A).",
    )
    .unwrap();
    let u = parse_update("{sub($is, $ps, $ir, $t), auts($ia, $pa, $is, $n)}").unwrap();
    let delta =
        parse_denials("<- sub($is,_,_,_). <- auts(_,_,$is,_). <- auts($ia,_,_,_).").unwrap();
    let cfg = SimpConfig {
        fresh: FreshSpec::Params(
            ["is", "ia"].iter().map(|s| (*s).to_string()).collect::<BTreeSet<_>>(),
        ),
    };
    c.bench_function("simp_example_6_conflict", |b| {
        b.iter(|| {
            let out = simp(&gamma, &u, &delta, &cfg).unwrap();
            assert_eq!(out.len(), 2);
        });
    });

    // Example 7: the aggregate constraint.
    let gamma7 = parse_denials("<- rev(Ir,_,_,_) & cntd(; sub(_,_,Ir,_)) > 4").unwrap();
    c.bench_function("simp_example_7_aggregate", |b| {
        b.iter(|| {
            let out = simp(&gamma7, &u, &delta, &cfg).unwrap();
            assert_eq!(out.len(), 1);
        });
    });

    // Example 4/5: ISSN uniqueness.
    let gamma4 = parse_denials("<- p(X, Y) & p(X, Z) & Y != Z").unwrap();
    let u4 = parse_update("{p($i, $t)}").unwrap();
    c.bench_function("simp_example_4_uniqueness", |b| {
        b.iter(|| {
            let out = simp(&gamma4, &u4, &[], &SimpConfig::default()).unwrap();
            assert_eq!(out.len(), 1);
        });
    });

    // Full pattern compilation (map + simp + translate) as the checker
    // performs it at schema design time.
    let inst = xic_bench::instance(xic_bench::Experiment::ConflictOfInterests, 16, 1);
    let mapped = xic_mapping::map_update(
        inst.checker.doc(),
        inst.checker.schema(),
        &inst.legal,
        &xicheck::xpath_resolver,
    )
    .unwrap();
    c.bench_function("compile_pattern_end_to_end", |b| {
        b.iter(|| {
            let compiled =
                xicheck::compile_pattern(&mapped, inst.checker.constraints(), inst.checker.schema());
            assert!(compiled.is_incremental());
        });
    });
}

criterion_group!(benches, bench_simplify);
criterion_main!(benches);

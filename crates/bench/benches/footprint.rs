//! Microbenchmarks for the static independence analysis (PR8): the cost
//! of extracting constraint read footprints, building the DTD
//! reachability index, computing a statement's write footprint, and
//! intersecting the two into a live-constraint mask. All four run at
//! schema-design or statement-arrival time, so they must stay far below
//! a single constraint check to pay for themselves.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use xic_workload::multi::{generate_multi, MultiConfig};
use xicheck::{
    live_set, map_denials, read_footprints, Dtd, IndependenceIndex, RelSchema, XUpdateDoc,
};

fn bench_footprint(c: &mut Criterion) {
    // 32 tenant regions -> 64 constraints, the mid-size point of E12.
    let w = generate_multi(MultiConfig::with_regions(32, 1));
    let dtd = Dtd::parse(&w.dtd).unwrap();
    let schema = RelSchema::from_dtd(&dtd).unwrap();
    let denials = xic_xpathlog::parse_denials(&w.constraints_text()).unwrap();
    let gamma = map_denials(&denials, &schema, &dtd).unwrap();
    assert_eq!(gamma.len(), 64);

    let mut group = c.benchmark_group("footprint");
    // Once per constraint-set registration.
    group.bench_function("read_footprints_64_constraints", |b| {
        b.iter(|| black_box(read_footprints(black_box(&gamma))));
    });
    group.bench_function("independence_index_64_regions", |b| {
        b.iter(|| black_box(IndependenceIndex::new(black_box(&dtd), black_box(&schema))));
    });

    // Once per arriving statement.
    let index = IndependenceIndex::new(&dtd, &schema);
    let read_fps = read_footprints(&gamma);
    let stmt = XUpdateDoc::parse(
        "<xupdate:modifications version=\"1.0\" \
         xmlns:xupdate=\"http://www.xmldb.org/xupdate\">\
         <xupdate:remove select=\"/db/region7/item7[2]\"/>\
         </xupdate:modifications>",
    )
    .unwrap();
    group.bench_function("write_footprint_region_local_remove", |b| {
        b.iter(|| black_box(index.write_footprint(black_box(&stmt), true)));
    });
    let wfp = index.write_footprint(&stmt, true);
    group.bench_function("live_set_64_constraints", |b| {
        b.iter(|| {
            let live = live_set(black_box(&read_fps), black_box(&wfp));
            assert_eq!(live.iter().filter(|&&l| l).count(), 2);
            black_box(live)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_footprint);
criterion_main!(benches);

//! Figure 1(b) — "Conference workload": the aggregate constraints of
//! Examples 2 and 7, same three curves as Figure 1(a).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xic_bench::{instance, Experiment};
use xic_xml::{apply, undo};

fn bench_fig1b(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1b_conference_workload");
    group.sample_size(10);
    for kib in [16usize, 32, 64, 128] {
        let mut inst = instance(Experiment::ConferenceWorkload, kib, 1);
        let legal = inst.legal.clone();

        group.bench_with_input(BenchmarkId::new("full_check", kib), &kib, |b, _| {
            b.iter(|| {
                let v = inst.checker.check_full().unwrap();
                assert!(v.is_none());
            });
        });
        group.bench_with_input(BenchmarkId::new("optimized_check", kib), &kib, |b, _| {
            b.iter(|| {
                let v = inst.checker.check_optimized(&legal).unwrap();
                assert!(v.is_none());
            });
        });
        group.bench_with_input(
            BenchmarkId::new("update_full_undo", kib),
            &kib,
            |b, _| {
                b.iter(|| {
                    let applied =
                        apply(inst.checker.doc_mut(), &legal, &xicheck::xpath_resolver).unwrap();
                    let v = inst.checker.check_full().unwrap();
                    assert!(v.is_none());
                    undo(inst.checker.doc_mut(), applied);
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig1b);
criterion_main!(benches);

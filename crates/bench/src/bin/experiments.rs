//! Regenerates the paper's evaluation tables on stdout.
//!
//! ```text
//! experiments [fig1a] [fig1b] [illegal] [simp] [all]
//!             [--sizes=32,64,128,256,512] [--iters=3] [--seed=1]
//! ```
//!
//! Each figure prints one row per document size with the three curves of
//! Figure 1: full check (diamonds), optimized check (squares), and
//! update + full check + undo (triangles). `illegal` prints the
//! early-detection comparison (E5); `simp` reports compile-time
//! simplification latency (the paper's footnote 4: "generated in less
//! than 50 ms").

use std::time::Instant;
use xic_bench::{instance, measure_illegal, measure_row, Experiment};
use xic_mapping::map_update;
use xicheck::{compile_pattern, xpath_resolver};

struct Args {
    what: Vec<String>,
    sizes: Vec<usize>,
    iters: usize,
    seed: u64,
}

fn parse_args() -> Args {
    let mut what = Vec::new();
    let mut sizes = vec![32, 64, 128, 256, 512];
    let mut iters = 3;
    let mut seed = 1;
    for a in std::env::args().skip(1) {
        if let Some(v) = a.strip_prefix("--sizes=") {
            sizes = v
                .split(',')
                .map(|s| s.trim().parse().expect("size in KiB"))
                .collect();
        } else if let Some(v) = a.strip_prefix("--iters=") {
            iters = v.parse().expect("iteration count");
        } else if let Some(v) = a.strip_prefix("--seed=") {
            seed = v.parse().expect("seed");
        } else {
            what.push(a);
        }
    }
    if what.is_empty() || what.iter().any(|w| w == "all") {
        what = ["fig1a", "fig1b", "illegal", "simp"]
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
    }
    Args {
        what,
        sizes,
        iters,
        seed,
    }
}

fn figure(exp: Experiment, title: &str, args: &Args) {
    println!("== {title} ==");
    println!(
        "{:>9} {:>9} {:>12} {:>14} {:>21}",
        "size/KiB", "bytes", "full/ms", "optimized/ms", "update+full+undo/ms"
    );
    for &kib in &args.sizes {
        let row = measure_row(exp, kib, args.seed, args.iters);
        println!(
            "{:>9} {:>9} {:>12.2} {:>14.3} {:>21.2}",
            row.kib, row.bytes, row.full_ms, row.optimized_ms, row.update_full_undo_ms
        );
    }
    println!();
}

fn illegal(args: &Args) {
    println!("== Illegal updates: early detection vs apply+check+rollback (E5) ==");
    println!(
        "{:>12} {:>9} {:>21} {:>21}",
        "experiment", "size/KiB", "optimized reject/ms", "baseline reject/ms"
    );
    for (exp, name) in [
        (Experiment::ConflictOfInterests, "conflict"),
        (Experiment::ConferenceWorkload, "workload"),
    ] {
        for &kib in &args.sizes {
            let r = measure_illegal(exp, kib, args.seed, args.iters);
            println!(
                "{name:>12} {:>9} {:>21.3} {:>21.2}",
                r.kib, r.optimized_reject_ms, r.baseline_reject_ms
            );
        }
    }
    println!();
}

fn simp_latency(args: &Args) {
    println!("== Compile-time simplification latency (paper: < 50 ms, E3) ==");
    let kib = args.sizes.first().copied().unwrap_or(32);
    for (exp, name) in [
        (Experiment::ConflictOfInterests, "conflict (Ex. 1/6)"),
        (Experiment::ConferenceWorkload, "workload (Ex. 2/7)"),
    ] {
        let inst = instance(exp, kib, args.seed);
        let stmt = inst.legal.clone();
        let mapped = map_update(inst.checker.doc(), inst.checker.schema(), &stmt, &xpath_resolver)
            .expect("mappable update");
        let gamma = inst.checker.constraints();
        let schema = inst.checker.schema();
        let n = 200u32;
        let start = Instant::now();
        for _ in 0..n {
            let compiled = compile_pattern(&mapped, gamma, schema);
            assert!(compiled.is_incremental(), "{:?}", compiled.unsupported);
        }
        let per = start.elapsed().as_secs_f64() * 1e3 / f64::from(n);
        println!("  {name:<22} map+simp+translate: {per:.3} ms/pattern");
    }
    println!();
}

fn main() {
    let args = parse_args();
    println!(
        "xicheck experiments — sizes {:?} KiB, {} iterations, seed {}",
        args.sizes, args.iters, args.seed
    );
    println!(
        "(document sizes are scaled down from the paper's 32–256 MB so the whole\n\
         sweep runs in minutes; the curves' shape is the reproduction target)\n"
    );
    for w in &args.what.clone() {
        match w.as_str() {
            "fig1a" => figure(
                Experiment::ConflictOfInterests,
                "Figure 1(a): Conflict of interests",
                &args,
            ),
            "fig1b" => figure(
                Experiment::ConferenceWorkload,
                "Figure 1(b): Conference workload",
                &args,
            ),
            "illegal" => illegal(&args),
            "simp" => simp_latency(&args),
            other => eprintln!("unknown experiment {other}"),
        }
    }
}

//! Regenerates the paper's evaluation tables on stdout and emits a
//! machine-readable report (`BENCH_PR3.json`).
//!
//! ```text
//! experiments [fig1a] [fig1b] [illegal] [simp] [exists] [ordercache] [ir]
//!             [journal] [budget] [checkpoint] [service] [independence]
//!             [overload] [shards] [all]
//!             [--sizes=32,64,128,256,512] [--iters=3] [--seed=1]
//!             [--out=BENCH_PR3.json]
//! ```
//!
//! Each figure prints one row per document size with the three curves of
//! Figure 1: full check (diamonds), optimized check (squares), and
//! update + full check + undo (triangles). `illegal` prints the
//! early-detection comparison (E5); `simp` reports compile-time
//! simplification latency (the paper's footnote 4: "generated in less
//! than 50 ms"); `exists` compares the short-circuiting existential full
//! check (sequential and parallel) against the materializing baseline on
//! a violating state; `ordercache` compares a dedupe-heavy query with and
//! without the cached document-order ranks; `ir` compares the
//! tree-walking interpreter against the compiled flat-IR engine on the
//! full and optimized checks (E11 — conventionally written to
//! `BENCH_PR7.json` via `--out`); `journal` measures the
//! write-ahead journal's per-update overhead (off / on without fsync / on
//! with per-record fsync); `budget` measures evaluation-step budgeting on
//! the optimized fast path and the cost of its baseline fallback (E8);
//! `checkpoint` measures crash-recovery time against committed-history
//! length with and without checkpointing, and the cost of one atomic
//! snapshot as the document grows (E9); `service` measures multi-client
//! throughput and submit→ack latency through the concurrent checker
//! service under the sequential and group-commit executors (E10 —
//! conventionally written to `BENCH_PR6.json` via `--out`);
//! `independence` measures per-update latency against a growing
//! multi-tenant constraint set with the static update/constraint
//! independence mask on versus off, plus the masked run's skip rate
//! (E12 — conventionally written to `BENCH_PR8.json` via `--out`);
//! `overload` sweeps closed-loop client counts against a small admission
//! queue and reports offered load, goodput, shed rate and p99 latency
//! (E13 — conventionally written to `BENCH_PR9.json` via `--out`);
//! `shards` measures whole-set crash recovery of a multi-document
//! [`xicheck::ShardSet`] at 1/4/16 shards — sequential versus the
//! scoped-thread parallel fan-out — plus Zipf-skewed mixed-traffic
//! throughput with one writer per shard (E14 — conventionally written
//! to `BENCH_PR10.json` via `--out`).
//!
//! Every run also rewrites the JSON report: the sections just measured
//! replace their previous versions, sections from earlier invocations are
//! preserved. Each figure section carries the per-size timings of the
//! three curves plus an observability snapshot (phase timings and event
//! counters, see `xic-obs`) captured across that figure's measurement.

use std::time::Instant;
use xic_bench::{
    instance, measure_budget, measure_exists, measure_illegal, measure_ir, measure_journal,
    measure_order_cache, measure_row, measure_service, Experiment,
};
use xic_mapping::map_update;
use xicheck::obs::{self, json};
use xicheck::{compile_pattern, xpath_resolver};

struct Args {
    what: Vec<String>,
    sizes: Vec<usize>,
    iters: usize,
    seed: u64,
    out: String,
}

fn parse_args() -> Args {
    let mut what = Vec::new();
    let mut sizes = vec![32, 64, 128, 256, 512];
    let mut iters = 3;
    let mut seed = 1;
    let mut out = "BENCH_PR3.json".to_string();
    for a in std::env::args().skip(1) {
        if let Some(v) = a.strip_prefix("--sizes=") {
            sizes = v
                .split(',')
                .map(|s| s.trim().parse().expect("size in KiB"))
                .collect();
        } else if let Some(v) = a.strip_prefix("--iters=") {
            iters = v.parse().expect("iteration count");
        } else if let Some(v) = a.strip_prefix("--seed=") {
            seed = v.parse().expect("seed");
        } else if let Some(v) = a.strip_prefix("--out=") {
            out = v.to_string();
        } else {
            what.push(a);
        }
    }
    if what.is_empty() || what.iter().any(|w| w == "all") {
        what = [
            "fig1a", "fig1b", "illegal", "simp", "exists", "ordercache", "ir", "journal",
            "budget", "checkpoint", "service", "independence", "overload", "shards",
        ]
        .iter()
        .map(std::string::ToString::to_string)
        .collect();
    }
    Args {
        what,
        sizes,
        iters,
        seed,
        out,
    }
}

fn num(v: f64) -> json::Value {
    json::Value::Number(v)
}

fn figure(exp: Experiment, title: &str, args: &Args) -> json::Value {
    println!("== {title} ==");
    println!(
        "{:>9} {:>9} {:>12} {:>14} {:>21}",
        "size/KiB", "bytes", "full/ms", "optimized/ms", "update+full+undo/ms"
    );
    obs::reset();
    let mut rows = Vec::new();
    for &kib in &args.sizes {
        let row = measure_row(exp, kib, args.seed, args.iters);
        println!(
            "{:>9} {:>9} {:>12.2} {:>14.3} {:>21.2}",
            row.kib, row.bytes, row.full_ms, row.optimized_ms, row.update_full_undo_ms
        );
        rows.push(json::Value::Object(vec![
            ("kib".to_string(), num(row.kib as f64)),
            ("bytes".to_string(), num(row.bytes as f64)),
            ("full_ms".to_string(), num(row.full_ms)),
            ("optimized_ms".to_string(), num(row.optimized_ms)),
            (
                "update_full_undo_ms".to_string(),
                num(row.update_full_undo_ms),
            ),
        ]));
    }
    println!();
    json::Value::Object(vec![
        ("title".to_string(), json::Value::String(title.to_string())),
        ("seed".to_string(), num(args.seed as f64)),
        ("iters".to_string(), num(args.iters as f64)),
        ("rows".to_string(), json::Value::Array(rows)),
        ("obs".to_string(), obs::snapshot().to_json_value()),
    ])
}

fn illegal(args: &Args) -> json::Value {
    println!("== Illegal updates: early detection vs apply+check+rollback (E5) ==");
    println!(
        "{:>12} {:>9} {:>21} {:>21}",
        "experiment", "size/KiB", "optimized reject/ms", "baseline reject/ms"
    );
    obs::reset();
    let mut rows = Vec::new();
    for (exp, name) in [
        (Experiment::ConflictOfInterests, "conflict"),
        (Experiment::ConferenceWorkload, "workload"),
    ] {
        for &kib in &args.sizes {
            let r = measure_illegal(exp, kib, args.seed, args.iters);
            println!(
                "{name:>12} {:>9} {:>21.3} {:>21.2}",
                r.kib, r.optimized_reject_ms, r.baseline_reject_ms
            );
            rows.push(json::Value::Object(vec![
                (
                    "experiment".to_string(),
                    json::Value::String(name.to_string()),
                ),
                ("kib".to_string(), num(r.kib as f64)),
                (
                    "optimized_reject_ms".to_string(),
                    num(r.optimized_reject_ms),
                ),
                ("baseline_reject_ms".to_string(), num(r.baseline_reject_ms)),
            ]));
        }
    }
    println!();
    json::Value::Object(vec![
        ("seed".to_string(), num(args.seed as f64)),
        ("iters".to_string(), num(args.iters as f64)),
        ("rows".to_string(), json::Value::Array(rows)),
        ("obs".to_string(), obs::snapshot().to_json_value()),
    ])
}

fn simp_latency(args: &Args) -> json::Value {
    println!("== Compile-time simplification latency (paper: < 50 ms, E3) ==");
    let kib = args.sizes.first().copied().unwrap_or(32);
    obs::reset();
    let mut rows = Vec::new();
    for (exp, name) in [
        (Experiment::ConflictOfInterests, "conflict (Ex. 1/6)"),
        (Experiment::ConferenceWorkload, "workload (Ex. 2/7)"),
    ] {
        let inst = instance(exp, kib, args.seed);
        let stmt = inst.legal.clone();
        let mapped = map_update(inst.checker.doc(), inst.checker.schema(), &stmt, &xpath_resolver)
            .expect("mappable update");
        let gamma = inst.checker.constraints();
        let schema = inst.checker.schema();
        let n = 200u32;
        let start = Instant::now();
        for _ in 0..n {
            let compiled = compile_pattern(&mapped, gamma, schema);
            assert!(compiled.is_incremental(), "{:?}", compiled.unsupported);
        }
        let per = start.elapsed().as_secs_f64() * 1e3 / f64::from(n);
        println!("  {name:<22} map+simp+translate: {per:.3} ms/pattern");
        rows.push(json::Value::Object(vec![
            (
                "experiment".to_string(),
                json::Value::String(name.to_string()),
            ),
            ("ms_per_pattern".to_string(), num(per)),
        ]));
    }
    println!();
    json::Value::Object(vec![
        ("seed".to_string(), num(args.seed as f64)),
        ("rows".to_string(), json::Value::Array(rows)),
        ("obs".to_string(), obs::snapshot().to_json_value()),
    ])
}

fn exists_section(args: &Args) -> json::Value {
    println!("== Existential short-circuit: check_full vs materialized baseline (PR3) ==");
    println!(
        "{:>12} {:>9} {:>10} {:>8} {:>12} {:>13} {:>13}",
        "experiment", "size/KiB", "exists/ms", "mat/ms", "parallel/ms", "nodes e/m", "binds e/m"
    );
    obs::reset();
    let mut rows = Vec::new();
    for (exp, name) in [
        (Experiment::ConflictOfInterests, "conflict"),
        (Experiment::ConferenceWorkload, "workload"),
    ] {
        for &kib in &args.sizes {
            let r = measure_exists(exp, kib, args.seed, args.iters);
            println!(
                "{name:>12} {:>9} {:>10.3} {:>8.2} {:>12.3} {:>6}/{:<6} {:>6}/{:<6}",
                r.kib,
                r.exists_ms,
                r.materialized_ms,
                r.parallel_ms,
                r.exists_nodes_visited,
                r.materialized_nodes_visited,
                r.exists_bindings_visited,
                r.materialized_bindings_visited,
            );
            rows.push(json::Value::Object(vec![
                (
                    "experiment".to_string(),
                    json::Value::String(name.to_string()),
                ),
                ("kib".to_string(), num(r.kib as f64)),
                ("exists_ms".to_string(), num(r.exists_ms)),
                ("materialized_ms".to_string(), num(r.materialized_ms)),
                ("parallel_ms".to_string(), num(r.parallel_ms)),
                (
                    "exists_nodes_visited".to_string(),
                    num(r.exists_nodes_visited as f64),
                ),
                (
                    "materialized_nodes_visited".to_string(),
                    num(r.materialized_nodes_visited as f64),
                ),
                (
                    "exists_bindings_visited".to_string(),
                    num(r.exists_bindings_visited as f64),
                ),
                (
                    "materialized_bindings_visited".to_string(),
                    num(r.materialized_bindings_visited as f64),
                ),
            ]));
        }
    }
    println!();
    json::Value::Object(vec![
        ("seed".to_string(), num(args.seed as f64)),
        ("iters".to_string(), num(args.iters as f64)),
        ("rows".to_string(), json::Value::Array(rows)),
        ("obs".to_string(), obs::snapshot().to_json_value()),
    ])
}

fn order_cache_section(args: &Args) -> json::Value {
    println!("== Document-order rank cache: dedupe-heavy query `//name/..` (PR3) ==");
    println!(
        "{:>9} {:>10} {:>12} {:>11} {:>11}",
        "size/KiB", "cached/ms", "uncached/ms", "fast sorts", "path sorts"
    );
    obs::reset();
    let mut rows = Vec::new();
    for &kib in &args.sizes {
        let r = measure_order_cache(kib, args.seed, args.iters);
        println!(
            "{:>9} {:>10.3} {:>12.3} {:>11} {:>11}",
            r.kib, r.cached_ms, r.uncached_ms, r.fast_sorts, r.path_sorts
        );
        rows.push(json::Value::Object(vec![
            ("kib".to_string(), num(r.kib as f64)),
            ("cached_ms".to_string(), num(r.cached_ms)),
            ("uncached_ms".to_string(), num(r.uncached_ms)),
            ("fast_sorts".to_string(), num(r.fast_sorts as f64)),
            ("path_sorts".to_string(), num(r.path_sorts as f64)),
        ]));
    }
    println!();
    json::Value::Object(vec![
        ("seed".to_string(), num(args.seed as f64)),
        ("iters".to_string(), num(args.iters as f64)),
        ("rows".to_string(), json::Value::Array(rows)),
        ("obs".to_string(), obs::snapshot().to_json_value()),
    ])
}

fn ir_section(args: &Args) -> json::Value {
    println!("== Interpreter vs compiled flat IR: full and optimized checks (E11) ==");
    println!(
        "{:>12} {:>9} {:>13} {:>12} {:>7} {:>13} {:>12} {:>7}",
        "experiment",
        "size/KiB",
        "int full/ms",
        "ir full/ms",
        "x",
        "int opt/ms",
        "ir opt/ms",
        "x"
    );
    obs::reset();
    let mut rows = Vec::new();
    for (exp, name) in [
        (Experiment::ConflictOfInterests, "conflict"),
        (Experiment::ConferenceWorkload, "workload"),
    ] {
        for &kib in &args.sizes {
            let r = measure_ir(exp, kib, args.seed, args.iters);
            let full_speedup = r.interpret_full_ms / r.compiled_full_ms;
            let opt_speedup = r.interpret_optimized_ms / r.compiled_optimized_ms;
            println!(
                "{name:>12} {:>9} {:>13.2} {:>12.2} {:>7.2} {:>13.3} {:>12.3} {:>7.2}",
                r.kib,
                r.interpret_full_ms,
                r.compiled_full_ms,
                full_speedup,
                r.interpret_optimized_ms,
                r.compiled_optimized_ms,
                opt_speedup,
            );
            rows.push(json::Value::Object(vec![
                (
                    "experiment".to_string(),
                    json::Value::String(name.to_string()),
                ),
                ("kib".to_string(), num(r.kib as f64)),
                ("interpret_full_ms".to_string(), num(r.interpret_full_ms)),
                ("compiled_full_ms".to_string(), num(r.compiled_full_ms)),
                ("full_speedup".to_string(), num(full_speedup)),
                (
                    "interpret_optimized_ms".to_string(),
                    num(r.interpret_optimized_ms),
                ),
                (
                    "compiled_optimized_ms".to_string(),
                    num(r.compiled_optimized_ms),
                ),
                ("optimized_speedup".to_string(), num(opt_speedup)),
            ]));
        }
    }
    println!();
    json::Value::Object(vec![
        ("seed".to_string(), num(args.seed as f64)),
        ("iters".to_string(), num(args.iters as f64)),
        ("rows".to_string(), json::Value::Array(rows)),
        ("obs".to_string(), obs::snapshot().to_json_value()),
    ])
}

fn journal_section(args: &Args) -> json::Value {
    println!("== Write-ahead journal overhead on the update workload (E8) ==");
    println!(
        "{:>9} {:>9} {:>11} {:>10} {:>13} {:>9} {:>8}",
        "size/KiB", "off/ms", "nosync/ms", "fsync/ms", "nosync ovh/%", "appends", "fsyncs"
    );
    obs::reset();
    let mut rows = Vec::new();
    for &kib in &args.sizes {
        let r = measure_journal(Experiment::ConflictOfInterests, kib, args.seed, args.iters);
        println!(
            "{:>9} {:>9.3} {:>11.3} {:>10.3} {:>13.2} {:>9} {:>8}",
            r.kib, r.off_ms, r.nosync_ms, r.fsync_ms, r.nosync_overhead_pct, r.appends, r.fsyncs
        );
        rows.push(json::Value::Object(vec![
            ("kib".to_string(), num(r.kib as f64)),
            ("journal_off_ms".to_string(), num(r.off_ms)),
            ("journal_nosync_ms".to_string(), num(r.nosync_ms)),
            ("journal_fsync_ms".to_string(), num(r.fsync_ms)),
            ("nosync_overhead_pct".to_string(), num(r.nosync_overhead_pct)),
            ("appends".to_string(), num(r.appends as f64)),
            ("fsyncs".to_string(), num(r.fsyncs as f64)),
        ]));
    }
    println!();
    json::Value::Object(vec![
        ("seed".to_string(), num(args.seed as f64)),
        ("iters".to_string(), num(args.iters as f64)),
        ("rows".to_string(), json::Value::Array(rows)),
        ("obs".to_string(), obs::snapshot().to_json_value()),
    ])
}

fn budget_section(args: &Args) -> json::Value {
    println!("== Evaluation-budget overhead on the optimized fast path (E8) ==");
    println!(
        "{:>9} {:>14} {:>12} {:>8} {:>21}",
        "size/KiB", "unbudgeted/ms", "budgeted/ms", "ovh/%", "exhausted fallback/ms"
    );
    obs::reset();
    let mut rows = Vec::new();
    for &kib in &args.sizes {
        let r = measure_budget(Experiment::ConflictOfInterests, kib, args.seed, args.iters);
        println!(
            "{:>9} {:>14.3} {:>12.3} {:>8.2} {:>21.2}",
            r.kib, r.unbudgeted_ms, r.budgeted_ms, r.overhead_pct, r.exhausted_fallback_ms
        );
        rows.push(json::Value::Object(vec![
            ("kib".to_string(), num(r.kib as f64)),
            ("unbudgeted_ms".to_string(), num(r.unbudgeted_ms)),
            ("budgeted_ms".to_string(), num(r.budgeted_ms)),
            ("overhead_pct".to_string(), num(r.overhead_pct)),
            (
                "exhausted_fallback_ms".to_string(),
                num(r.exhausted_fallback_ms),
            ),
        ]));
    }
    println!();
    json::Value::Object(vec![
        ("seed".to_string(), num(args.seed as f64)),
        ("iters".to_string(), num(args.iters as f64)),
        ("rows".to_string(), json::Value::Array(rows)),
        ("obs".to_string(), obs::snapshot().to_json_value()),
    ])
}

fn independence_section(args: &Args) -> json::Value {
    println!("== Static independence: per-update latency vs constraint count (E12) ==");
    println!(
        "{:>12} {:>8} {:>10} {:>11} {:>8} {:>7} {:>9} {:>9}",
        "constraints", "updates", "on ms/upd", "off ms/upd", "speedup", "skip%", "skipped", "retained"
    );
    obs::reset();
    // Constraint counts double per step so the curves separate cleanly;
    // the update stream grows with --iters.
    let ks = [4usize, 16, 64, 256];
    let updates = 20 * args.iters.max(1);
    let mut rows = Vec::new();
    for &k in &ks {
        let r = xic_bench::measure_independence(k, args.seed, updates);
        println!(
            "{:>12} {:>8} {:>10.3} {:>11.3} {:>8.2} {:>7.1} {:>9} {:>9}",
            r.constraints,
            r.updates,
            r.on_ms,
            r.off_ms,
            r.speedup(),
            r.skip_rate() * 100.0,
            r.skipped,
            r.retained,
        );
        rows.push(json::Value::Object(vec![
            ("constraints".to_string(), num(r.constraints as f64)),
            ("updates".to_string(), num(r.updates as f64)),
            ("on_ms".to_string(), num(r.on_ms)),
            ("off_ms".to_string(), num(r.off_ms)),
            ("speedup".to_string(), num(r.speedup())),
            ("skip_rate".to_string(), num(r.skip_rate())),
            ("checks_skipped_static".to_string(), num(r.skipped as f64)),
            ("checks_retained_static".to_string(), num(r.retained as f64)),
        ]));
    }
    println!();
    json::Value::Object(vec![
        ("seed".to_string(), num(args.seed as f64)),
        ("iters".to_string(), num(args.iters as f64)),
        ("rows".to_string(), json::Value::Array(rows)),
        ("obs".to_string(), obs::snapshot().to_json_value()),
    ])
}

fn checkpoint_section(args: &Args) -> json::Value {
    println!("== Checkpointing: recovery time vs history length (E9) ==");
    const INTERVAL: u64 = 50;
    // Off the interval boundary so the checkpointed runs replay a real
    // (but bounded) suffix.
    let histories = [60usize, 120, 240, 480];
    println!(
        "{:>9} {:>10} {:>16} {:>14} {:>10} {:>4}",
        "history", "interval", "no-ckpt rec/ms", "ckpt rec/ms", "replayed", "gen"
    );
    obs::reset();
    let mut recovery_rows = Vec::new();
    for &history in &histories {
        let r = xic_bench::measure_checkpoint(history, INTERVAL, 16, args.seed, args.iters);
        println!(
            "{:>9} {:>10} {:>16.2} {:>14.2} {:>10} {:>4}",
            r.history, r.interval, r.no_ckpt_recover_ms, r.ckpt_recover_ms, r.ckpt_replayed,
            r.generation
        );
        recovery_rows.push(json::Value::Object(vec![
            ("history".to_string(), num(r.history as f64)),
            ("interval".to_string(), num(r.interval as f64)),
            ("no_ckpt_recover_ms".to_string(), num(r.no_ckpt_recover_ms)),
            ("ckpt_recover_ms".to_string(), num(r.ckpt_recover_ms)),
            ("ckpt_replayed".to_string(), num(r.ckpt_replayed as f64)),
            ("generation".to_string(), num(r.generation as f64)),
        ]));
    }
    println!("\n-- atomic snapshot write cost vs document size --");
    println!("{:>9} {:>9} {:>9}", "size/KiB", "bytes", "write/ms");
    let mut write_rows = Vec::new();
    for &kib in &args.sizes {
        let r = xic_bench::measure_checkpoint_write(
            Experiment::ConflictOfInterests,
            kib,
            args.seed,
            args.iters,
        );
        println!("{:>9} {:>9} {:>9.3}", r.kib, r.bytes, r.write_ms);
        write_rows.push(json::Value::Object(vec![
            ("kib".to_string(), num(r.kib as f64)),
            ("bytes".to_string(), num(r.bytes as f64)),
            ("write_ms".to_string(), num(r.write_ms)),
        ]));
    }
    println!();
    json::Value::Object(vec![
        ("seed".to_string(), num(args.seed as f64)),
        ("iters".to_string(), num(args.iters as f64)),
        ("recovery_rows".to_string(), json::Value::Array(recovery_rows)),
        ("write_rows".to_string(), json::Value::Array(write_rows)),
        ("obs".to_string(), obs::snapshot().to_json_value()),
    ])
}

fn service_section(args: &Args) -> json::Value {
    println!("== Concurrent service: sequential vs group-commit executor (E10) ==");
    const PER_CLIENT: usize = 64;
    let kib = args.sizes.first().copied().unwrap_or(32);
    println!(
        "{:>8} {:>13} {:>8} {:>9} {:>12} {:>8} {:>8}",
        "clients", "executor", "updates", "wall/ms", "updates/s", "p50/ms", "p99/ms"
    );
    let mut rows = Vec::new();
    for &clients in &[1usize, 4, 16] {
        let mut throughput = [0.0f64; 2];
        for (i, executor) in [xicheck::Executor::Sync, xicheck::Executor::group_commit()]
            .into_iter()
            .enumerate()
        {
            let r = measure_service(kib, args.seed, clients, PER_CLIENT, executor);
            throughput[i] = r.throughput_per_s;
            println!(
                "{:>8} {:>13} {:>8} {:>9.1} {:>12.0} {:>8.3} {:>8.3}",
                r.clients, r.executor, r.updates, r.wall_ms, r.throughput_per_s, r.p50_ms, r.p99_ms
            );
            rows.push(json::Value::Object(vec![
                ("clients".to_string(), num(r.clients as f64)),
                (
                    "executor".to_string(),
                    json::Value::String(r.executor.to_string()),
                ),
                ("updates".to_string(), num(r.updates as f64)),
                ("wall_ms".to_string(), num(r.wall_ms)),
                ("throughput_per_s".to_string(), num(r.throughput_per_s)),
                ("p50_ms".to_string(), num(r.p50_ms)),
                ("p99_ms".to_string(), num(r.p99_ms)),
            ]));
        }
        println!(
            "{:>8} group-commit speedup: {:.2}x",
            clients,
            throughput[1] / throughput[0]
        );
    }
    println!();
    json::Value::Object(vec![
        ("seed".to_string(), num(args.seed as f64)),
        ("kib".to_string(), num(kib as f64)),
        ("per_client".to_string(), num(PER_CLIENT as f64)),
        ("rows".to_string(), json::Value::Array(rows)),
    ])
}

fn overload_section(args: &Args) -> json::Value {
    println!("== Overload: offered load vs goodput under bounded admission (E13) ==");
    const PER_CLIENT: usize = 32;
    // A deliberately small queue so client counts past it actually shed;
    // the production default (256) would just absorb this sweep.
    const QUEUE_DEPTH: usize = 4;
    let kib = args.sizes.first().copied().unwrap_or(32);
    println!(
        "{:>8} {:>7} {:>9} {:>7} {:>6} {:>8} {:>11} {:>11} {:>8}",
        "clients", "depth", "offered", "acked", "shed", "shed/%", "offered/s", "goodput/s", "p99/ms"
    );
    let mut rows = Vec::new();
    for &clients in &[1usize, 2, 4, 8, 16, 32] {
        let r = xic_bench::measure_overload(kib, args.seed, clients, PER_CLIENT, QUEUE_DEPTH);
        println!(
            "{:>8} {:>7} {:>9} {:>7} {:>6} {:>8.1} {:>11.0} {:>11.0} {:>8.3}",
            r.clients,
            r.queue_depth,
            r.offered,
            r.acked,
            r.shed,
            r.shed_rate() * 100.0,
            r.offered_per_s,
            r.goodput_per_s,
            r.p99_ms,
        );
        rows.push(json::Value::Object(vec![
            ("clients".to_string(), num(r.clients as f64)),
            ("queue_depth".to_string(), num(r.queue_depth as f64)),
            ("offered".to_string(), num(r.offered as f64)),
            ("acked".to_string(), num(r.acked as f64)),
            ("shed".to_string(), num(r.shed as f64)),
            ("shed_rate".to_string(), num(r.shed_rate())),
            ("wall_ms".to_string(), num(r.wall_ms)),
            ("offered_per_s".to_string(), num(r.offered_per_s)),
            ("goodput_per_s".to_string(), num(r.goodput_per_s)),
            ("p99_ms".to_string(), num(r.p99_ms)),
        ]));
    }
    println!();
    json::Value::Object(vec![
        ("seed".to_string(), num(args.seed as f64)),
        ("kib".to_string(), num(kib as f64)),
        ("per_client".to_string(), num(PER_CLIENT as f64)),
        ("queue_depth".to_string(), num(QUEUE_DEPTH as f64)),
        ("rows".to_string(), json::Value::Array(rows)),
    ])
}

fn shards_section(args: &Args) -> json::Value {
    println!("== Sharded store: parallel recovery and mixed traffic (E14) ==");
    // The fan-out can only beat the sequential loop given real cores;
    // record what this host offers so a ~1.0x speedup column is
    // interpretable.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!("(host offers {cores} core(s) to the parallel fan-out)");
    println!(
        "{:>8} {:>9} {:>12} {:>12} {:>9}",
        "shards", "commits", "seq rec/ms", "par rec/ms", "speedup"
    );
    obs::reset();
    let mut recovery_rows = Vec::new();
    for &shards in &[1usize, 4, 16] {
        let r = xic_bench::measure_shard_recovery(shards, args.seed, args.iters);
        println!(
            "{:>8} {:>9} {:>12.2} {:>12.2} {:>8.2}x",
            r.shards,
            r.commits,
            r.seq_recover_ms,
            r.par_recover_ms,
            r.speedup()
        );
        recovery_rows.push(json::Value::Object(vec![
            ("shards".to_string(), num(r.shards as f64)),
            ("commits".to_string(), num(r.commits as f64)),
            ("seq_recover_ms".to_string(), num(r.seq_recover_ms)),
            ("par_recover_ms".to_string(), num(r.par_recover_ms)),
            ("speedup".to_string(), num(r.speedup())),
        ]));
    }
    println!("\n-- Zipf-skewed mixed traffic, one writer per shard --");
    println!(
        "{:>8} {:>9} {:>7} {:>9} {:>11}",
        "shards", "offered", "acked", "wall/ms", "commits/s"
    );
    let mut throughput_rows = Vec::new();
    for &shards in &[1usize, 4, 16] {
        let r = xic_bench::measure_shard_throughput(shards, args.seed);
        println!(
            "{:>8} {:>9} {:>7} {:>9.1} {:>11.0}",
            r.shards, r.offered, r.acked, r.wall_ms, r.throughput_per_s
        );
        throughput_rows.push(json::Value::Object(vec![
            ("shards".to_string(), num(r.shards as f64)),
            ("offered".to_string(), num(r.offered as f64)),
            ("acked".to_string(), num(r.acked as f64)),
            ("wall_ms".to_string(), num(r.wall_ms)),
            ("throughput_per_s".to_string(), num(r.throughput_per_s)),
        ]));
    }
    println!();
    json::Value::Object(vec![
        ("seed".to_string(), num(args.seed as f64)),
        ("iters".to_string(), num(args.iters as f64)),
        ("host_cores".to_string(), num(cores as f64)),
        ("recovery_rows".to_string(), json::Value::Array(recovery_rows)),
        (
            "throughput_rows".to_string(),
            json::Value::Array(throughput_rows),
        ),
        ("obs".to_string(), obs::snapshot().to_json_value()),
    ])
}

/// Rewrites `path`, replacing the sections in `fresh` and keeping every
/// other section from a previous run, so `experiments fig1a` followed by
/// `experiments fig1b` accumulates both figures in one report.
fn write_report(path: &str, fresh: Vec<(String, json::Value)>) -> bool {
    let mut sections: Vec<(String, json::Value)> = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| json::parse(&text).ok())
        .and_then(|v| v.get("sections").and_then(|s| s.as_object().map(<[_]>::to_vec)))
        .unwrap_or_default();
    for (name, value) in fresh {
        match sections.iter_mut().find(|(n, _)| *n == name) {
            Some(slot) => slot.1 = value,
            None => sections.push((name, value)),
        }
    }
    let report = json::Value::Object(vec![
        ("schema_version".to_string(), num(1.0)),
        (
            "generator".to_string(),
            json::Value::String("xic-bench experiments".to_string()),
        ),
        ("sections".to_string(), json::Value::Object(sections)),
    ]);
    match std::fs::write(path, report.render_pretty(2) + "\n") {
        Ok(()) => {
            println!("report written to {path}");
            true
        }
        Err(e) => {
            eprintln!("could not write {path}: {e}");
            false
        }
    }
}

fn main() {
    let args = parse_args();
    println!(
        "xicheck experiments — sizes {:?} KiB, {} iterations, seed {}",
        args.sizes, args.iters, args.seed
    );
    println!(
        "(document sizes are scaled down from the paper's 32–256 MB so the whole\n\
         sweep runs in minutes; the curves' shape is the reproduction target)\n"
    );
    let mut sections = Vec::new();
    let mut failed = false;
    for w in &args.what.clone() {
        let section = match w.as_str() {
            "fig1a" => figure(
                Experiment::ConflictOfInterests,
                "Figure 1(a): Conflict of interests",
                &args,
            ),
            "fig1b" => figure(
                Experiment::ConferenceWorkload,
                "Figure 1(b): Conference workload",
                &args,
            ),
            "illegal" => illegal(&args),
            "simp" => simp_latency(&args),
            "exists" => exists_section(&args),
            "ordercache" => order_cache_section(&args),
            "ir" => ir_section(&args),
            "journal" => journal_section(&args),
            "budget" => budget_section(&args),
            "checkpoint" => checkpoint_section(&args),
            "service" => service_section(&args),
            "independence" => independence_section(&args),
            "overload" => overload_section(&args),
            "shards" => shards_section(&args),
            other => {
                eprintln!(
                    "unknown experiment {other} (expected all, fig1a, fig1b, illegal, simp, \
                     exists, ordercache, ir, journal, budget, checkpoint, service, independence, \
                     overload, shards)"
                );
                failed = true;
                continue;
            }
        };
        // Report-facing section names for the PR3 additions.
        let key = match w.as_str() {
            "exists" => "exists-short-circuit",
            "ordercache" => "order-key-cache",
            "ir" => "ir-vs-interpreter",
            "journal" => "journal-overhead",
            "budget" => "budget-overhead",
            other => other,
        };
        sections.push((key.to_string(), section));
    }
    if !write_report(&args.out, sections) {
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

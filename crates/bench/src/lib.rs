//! Shared harness for the Section 7 experiments.
//!
//! Each figure of the paper compares, across document sizes, the time to
//! (i) verify the original constraint against the whole document, (ii)
//! verify the optimized (simplified, pre-update) constraint, and (iii)
//! execute an update, verify the original constraint, and undo the update
//! — the paper's diamonds, squares and triangles.
//!
//! In the system-inventory table of `DESIGN.md` this crate is item 13 (benchmark harness).

use std::time::{Duration, Instant};
use xic_workload::{generate, Workload, WorkloadConfig};
use xic_xml::{apply, undo, XUpdateDoc};
use xicheck::{Checker, CheckerService, Executor, UpdateOutcome};

/// Which of the two running examples an experiment exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Experiment {
    /// Figure 1(a): conflict of interests (Examples 1/3/6).
    ConflictOfInterests,
    /// Figure 1(b): conference workload (the aggregate constraints of
    /// Examples 2 and 7).
    ConferenceWorkload,
}

/// A prepared experiment instance: checker + one legal and one illegal
/// statement matching the compiled pattern.
pub struct Instance {
    /// The checker, loaded with the sized corpus.
    pub checker: Checker,
    /// Corpus size in bytes (serialized).
    pub corpus_bytes: usize,
    /// A statement that passes the constraint.
    pub legal: XUpdateDoc,
    /// A statement that violates it.
    pub illegal: XUpdateDoc,
}

/// The paper's combined DTD.
pub fn dtd_text() -> &'static str {
    "<!ELEMENT collection (dblp, review)>\n<!ELEMENT dblp (pub)*>\n\
     <!ELEMENT pub (title, aut+)>\n<!ELEMENT aut (name)>\n\
     <!ELEMENT review (track)+>\n<!ELEMENT track (name,rev+)>\n\
     <!ELEMENT rev (name, sub+)>\n<!ELEMENT sub (title, auts+)>\n\
     <!ELEMENT title (#PCDATA)>\n<!ELEMENT auts (name)>\n\
     <!ELEMENT name (#PCDATA)>"
}

/// A statement appending `n` fresh-author submissions to one reviewer.
fn multi_insert(track: usize, rev: usize, n: usize, serial: usize) -> String {
    let mut subs = String::new();
    for i in 0..n {
        subs.push_str(&format!(
            "<sub><title>Batch {serial}-{i}</title>\
             <auts><name>newcomer{serial:05}x{i}</name></auts></sub>"
        ));
    }
    format!(
        r#"<xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
  <xupdate:append select="/collection/review/track[{}]/rev[{}]">{subs}</xupdate:append>
</xupdate:modifications>"#,
        track + 1,
        rev + 1
    )
}

/// Builds an experiment instance at roughly `kib` KiB.
///
/// For the conference-workload experiment the aggregate thresholds are
/// derived from the corpus so that it starts exactly consistent: the
/// per-reviewer-node bound sits one above the generated fan-out, making a
/// single-submission insert legal and a two-submission batch illegal.
pub fn instance(exp: Experiment, kib: usize, seed: u64) -> Instance {
    let w: Workload = generate(WorkloadConfig::sized_kib(kib, seed));
    let corpus_bytes = w.xml.len();
    let (constraints, legal_text, illegal_text) = match exp {
        Experiment::ConflictOfInterests => (
            xic_workload::conflict_constraint().to_string(),
            xic_workload::legal_insert(0, 0, 900_001),
            xic_workload::illegal_insert(0, 0, &w.reviewers[0][0]),
        ),
        Experiment::ConferenceWorkload => {
            // Highest per-name submission load in the corpus.
            let mut counts = std::collections::HashMap::new();
            for track in &w.reviewers {
                for r in track {
                    *counts.entry(r.as_str()).or_insert(0usize) += w.config.subs_per_rev;
                }
            }
            let max_name_subs = counts.values().copied().max().unwrap_or(0);
            let constraints = format!(
                "{}. {}",
                xic_workload::workload_constraint(3, max_name_subs + 1),
                xic_workload::review_load_constraint(w.config.subs_per_rev + 1),
            );
            (
                constraints,
                xic_workload::legal_insert(0, 0, 900_001),
                multi_insert(0, 0, 2, 900_002),
            )
        }
    };
    let mut checker =
        Checker::new(&w.xml, dtd_text(), &constraints).expect("generated corpus must load");
    let legal = XUpdateDoc::parse(&legal_text).expect("legal stmt");
    let illegal = XUpdateDoc::parse(&illegal_text).expect("illegal stmt");
    // Schema-design-time compilation: register both patterns once.
    checker.register_pattern(&legal).expect("pattern registration");
    checker
        .register_pattern(&illegal)
        .expect("pattern registration");
    Instance {
        checker,
        corpus_bytes,
        legal,
        illegal,
    }
}

/// Times `f` over `iters` runs and returns the mean duration (with one
/// warm-up run, as in the paper's protocol).
pub fn time_mean<F: FnMut()>(iters: usize, mut f: F) -> Duration {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed() / u32::try_from(iters.max(1)).expect("small iter counts")
}

/// One row of a figure: mean milliseconds for the three curves.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Corpus size in KiB (x axis).
    pub kib: usize,
    /// Actual serialized bytes.
    pub bytes: usize,
    /// (i) full check of the original constraint (diamonds).
    pub full_ms: f64,
    /// (ii) optimized pre-update check (squares).
    pub optimized_ms: f64,
    /// (iii) update + full check + undo (triangles).
    pub update_full_undo_ms: f64,
}

/// Measures one figure row.
pub fn measure_row(exp: Experiment, kib: usize, seed: u64, iters: usize) -> Row {
    let mut inst = instance(exp, kib, seed);

    let full = time_mean(iters, || {
        let v = inst.checker.check_full().expect("full check");
        assert!(v.is_none(), "corpus must be consistent");
    });

    let legal = inst.legal.clone();
    let optimized = time_mean(iters, || {
        let v = inst.checker.check_optimized(&legal).expect("optimized");
        assert!(v.is_none(), "legal update must pass");
    });

    let update_full_undo = time_mean(iters, || {
        let doc = inst.checker.doc_mut();
        let applied = apply(doc, &legal, &xicheck::xpath_resolver).expect("apply");
        let v = inst.checker.check_full().expect("full check");
        assert!(v.is_none());
        undo(inst.checker.doc_mut(), applied);
    });

    Row {
        kib,
        bytes: inst.corpus_bytes,
        full_ms: full.as_secs_f64() * 1e3,
        optimized_ms: optimized.as_secs_f64() * 1e3,
        update_full_undo_ms: update_full_undo.as_secs_f64() * 1e3,
    }
}

/// End-to-end handling of an illegal statement under both strategies
/// (E5): optimized = reject before execution; baseline = apply + full
/// check + compensating rollback.
#[derive(Debug, Clone, Copy)]
pub struct IllegalRow {
    /// Corpus size in KiB.
    pub kib: usize,
    /// Optimized end-to-end rejection time (ms).
    pub optimized_reject_ms: f64,
    /// Baseline apply + check + rollback time (ms).
    pub baseline_reject_ms: f64,
}

/// Measures the illegal-update scenario.
pub fn measure_illegal(exp: Experiment, kib: usize, seed: u64, iters: usize) -> IllegalRow {
    let mut inst = instance(exp, kib, seed);
    let illegal = inst.illegal.clone();

    let optimized = time_mean(iters, || {
        let out = inst.checker.try_update(&illegal).expect("try_update");
        assert!(!out.applied(), "illegal update must be rejected");
        assert!(matches!(out, UpdateOutcome::Rejected { .. }));
    });

    // Baseline: apply + full check + undo (the violation fires, so the
    // compensating action always runs).
    let baseline = time_mean(iters, || {
        let doc = inst.checker.doc_mut();
        let applied = apply(doc, &illegal, &xicheck::xpath_resolver).expect("apply");
        let v = inst.checker.check_full().expect("full check");
        assert!(v.is_some(), "violation must be detected post-update");
        undo(inst.checker.doc_mut(), applied);
    });

    IllegalRow {
        kib,
        optimized_reject_ms: optimized.as_secs_f64() * 1e3,
        baseline_reject_ms: baseline.as_secs_f64() * 1e3,
    }
}

fn counter_value(snap: &xic_obs::Snapshot, name: &str) -> u64 {
    snap.counters
        .iter()
        .find(|(k, _)| k == name)
        .map_or(0, |(_, v)| *v)
}

/// Existential short-circuiting vs the materializing baseline: one full
/// check on a *violating* document state (so a witness exists for the
/// short-circuit to stop at), measured in wall time and engine visit
/// counters.
#[derive(Debug, Clone, Copy)]
pub struct ExistsRow {
    /// Corpus size in KiB.
    pub kib: usize,
    /// `check_full` (existential, sequential) mean time (ms).
    pub exists_ms: f64,
    /// `check_full_materialized` mean time (ms).
    pub materialized_ms: f64,
    /// `check_full` with the parallel fan-out forced on (ms).
    pub parallel_ms: f64,
    /// XPath nodes visited by one existential check.
    pub exists_nodes_visited: u64,
    /// XPath nodes visited by one materializing check.
    pub materialized_nodes_visited: u64,
    /// XQuery FLWOR bindings visited by one existential check.
    pub exists_bindings_visited: u64,
    /// XQuery FLWOR bindings visited by one materializing check.
    pub materialized_bindings_visited: u64,
}

/// Measures the exists-short-circuit scenario: the instance's illegal
/// statement is applied *unchecked*, so the constraint has a witness and
/// the full check must detect it under both evaluation modes.
pub fn measure_exists(exp: Experiment, kib: usize, seed: u64, iters: usize) -> ExistsRow {
    let mut inst = instance(exp, kib, seed);
    let illegal = inst.illegal.clone();
    inst.checker.apply_unchecked(&illegal).expect("illegal statement applies");

    inst.checker.set_parallel_full(Some(false));
    xic_obs::reset();
    assert!(inst.checker.check_full().expect("check").is_some());
    let exists_snap = inst.checker.obs_snapshot();
    xic_obs::reset();
    assert!(inst.checker.check_full_materialized().expect("check").is_some());
    let mat_snap = inst.checker.obs_snapshot();

    let exists = time_mean(iters, || {
        assert!(inst.checker.check_full().expect("check").is_some());
    });
    let materialized = time_mean(iters, || {
        assert!(inst.checker.check_full_materialized().expect("check").is_some());
    });
    inst.checker.set_parallel_full(Some(true));
    let parallel = time_mean(iters, || {
        assert!(inst.checker.check_full().expect("check").is_some());
    });

    ExistsRow {
        kib,
        exists_ms: exists.as_secs_f64() * 1e3,
        materialized_ms: materialized.as_secs_f64() * 1e3,
        parallel_ms: parallel.as_secs_f64() * 1e3,
        exists_nodes_visited: counter_value(&exists_snap, "xpath_nodes_visited"),
        materialized_nodes_visited: counter_value(&mat_snap, "xpath_nodes_visited"),
        exists_bindings_visited: counter_value(&exists_snap, "xquery_bindings_visited"),
        materialized_bindings_visited: counter_value(&mat_snap, "xquery_bindings_visited"),
    }
}

/// Cached document-order ranks vs from-scratch path keys on a
/// deduplication-heavy query.
#[derive(Debug, Clone, Copy)]
pub struct OrderCacheRow {
    /// Corpus size in KiB.
    pub kib: usize,
    /// Query time with the order cache enabled (ms).
    pub cached_ms: f64,
    /// Same query on a cache-disabled clone (ms).
    pub uncached_ms: f64,
    /// Rank-based sorts taken by one cached evaluation.
    pub fast_sorts: u64,
    /// Path-key sorts taken by one uncached evaluation.
    pub path_sorts: u64,
}

/// Measures a dedupe-heavy parent-step query (`//name/..` — every hit is
/// produced once per `name` child, so the sort/dedupe pass dominates)
/// with and without the document-order rank cache.
pub fn measure_order_cache(kib: usize, seed: u64, iters: usize) -> OrderCacheRow {
    let w: Workload = generate(WorkloadConfig::sized_kib(kib, seed));
    let (doc, _) = xic_xml::parse_document(&w.xml).expect("corpus parses");
    let mut plain = doc.clone();
    plain.disable_order_cache();
    let expr = xic_xpath::parse("//name/..").expect("query parses");

    let run = |d: &xic_xml::Document| {
        let hits = xic_xpath::evaluate_nodes(&expr, &xic_xpath::Context::root(d)).expect("eval");
        assert!(!hits.is_empty());
    };
    xic_obs::reset();
    run(&doc);
    let fast_sorts = counter_value(&xic_obs::snapshot(), "doc_order_fast_sort");
    xic_obs::reset();
    run(&plain);
    let path_sorts = counter_value(&xic_obs::snapshot(), "doc_order_path_sort");

    let cached = time_mean(iters, || run(&doc));
    let uncached = time_mean(iters, || run(&plain));
    OrderCacheRow {
        kib,
        cached_ms: cached.as_secs_f64() * 1e3,
        uncached_ms: uncached.as_secs_f64() * 1e3,
        fast_sorts,
        path_sorts,
    }
}

/// The tree-walking interpreter versus the compiled flat-IR engine
/// ([`xicheck::IrMode`]) on the same checker entry points: the full check
/// of the original constraint and the optimized pre-update check.
#[derive(Debug, Clone, Copy)]
pub struct IrRow {
    /// Corpus size in KiB.
    pub kib: usize,
    /// Full check, interpreter (ms).
    pub interpret_full_ms: f64,
    /// Full check, compiled IR (ms).
    pub compiled_full_ms: f64,
    /// Optimized pre-update check, interpreter (ms).
    pub interpret_optimized_ms: f64,
    /// Optimized pre-update check, compiled IR (ms).
    pub compiled_optimized_ms: f64,
}

/// Measures [`IrRow`]: the same checker instance is flipped between
/// engine modes with [`xicheck::Checker::set_ir_mode`], so both engines
/// see the identical document, constraint set and compiled pattern. The
/// full check runs sequentially (parallel fan-out off) so the comparison
/// isolates per-query evaluation cost rather than thread scheduling.
pub fn measure_ir(exp: Experiment, kib: usize, seed: u64, iters: usize) -> IrRow {
    let mut inst = instance(exp, kib, seed);
    inst.checker.set_parallel_full(Some(false));
    let legal = inst.legal.clone();
    let mut full = [0.0f64; 2];
    let mut optimized = [0.0f64; 2];
    for (i, mode) in [xicheck::IrMode::Interpret, xicheck::IrMode::Compiled]
        .into_iter()
        .enumerate()
    {
        inst.checker.set_ir_mode(mode);
        full[i] = time_mean(iters, || {
            assert!(inst.checker.check_full().expect("full check").is_none());
        })
        .as_secs_f64()
            * 1e3;
        optimized[i] = time_mean(iters, || {
            assert!(inst.checker.check_optimized(&legal).expect("optimized").is_none());
        })
        .as_secs_f64()
            * 1e3;
    }
    IrRow {
        kib,
        interpret_full_ms: full[0],
        compiled_full_ms: full[1],
        interpret_optimized_ms: optimized[0],
        compiled_optimized_ms: optimized[1],
    }
}

/// Per-update cost of the write-ahead journal on the Section 7 update
/// workload (a stream of legal pattern-matching inserts through
/// [`Checker::try_update`]), with the journal detached, attached without
/// fsync, and attached with per-record fsync.
#[derive(Debug, Clone, Copy)]
pub struct JournalRow {
    /// Corpus size in KiB.
    pub kib: usize,
    /// Mean per-update time with no journal (ms).
    pub off_ms: f64,
    /// Mean per-update time with the journal on, fsync off (ms).
    pub nosync_ms: f64,
    /// Mean per-update time with the journal on, fsync per record (ms).
    pub fsync_ms: f64,
    /// `(nosync - off) / off`, in percent.
    pub nosync_overhead_pct: f64,
    /// Journal records appended during the fsync run.
    pub appends: u64,
    /// `sync_data` calls during the fsync run.
    pub fsyncs: u64,
}

fn journal_tmp(tag: &str, kib: usize, seed: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "xic-bench-{}-{tag}-{kib}k-{seed}.wal",
        std::process::id()
    ))
}

/// Measures [`JournalRow`]. Every configuration drives the same statement
/// stream from the same starting corpus (each insert adds a fresh-author
/// submission, which the conflict constraint always accepts, so the
/// document grows identically under all three configurations). The
/// journal's per-record cost (microseconds) is far below the run-to-run
/// noise of the millisecond-scale optimized check it rides on, so each
/// configuration is repeated and the *fastest* repetition is kept — the
/// standard way to measure a small additive overhead.
pub fn measure_journal(exp: Experiment, kib: usize, seed: u64, iters: usize) -> JournalRow {
    const REPS: usize = 3;
    let run = |sync: Option<bool>, tag: &str| -> (Duration, u64, u64) {
        let mut best: Option<(Duration, u64, u64)> = None;
        for rep in 0..REPS {
            let mut inst = instance(exp, kib, seed);
            let path = journal_tmp(&format!("{tag}{rep}"), kib, seed);
            if let Some(sync) = sync {
                inst.checker
                    .attach_journal(&path, sync)
                    .expect("journal attaches");
            }
            let legal = inst.legal.clone();
            xic_obs::reset();
            let t = time_mean(iters, || {
                let out = inst.checker.try_update(&legal).expect("legal update");
                assert!(out.applied());
            });
            let snap = xic_obs::snapshot();
            let _ = std::fs::remove_file(&path);
            let sample = (
                t,
                counter_value(&snap, "journal_appends"),
                counter_value(&snap, "journal_fsyncs"),
            );
            if best.is_none_or(|(b, _, _)| t < b) {
                best = Some(sample);
            }
        }
        best.expect("REPS > 0")
    };
    let (off, _, _) = run(None, "off");
    let (nosync, _, _) = run(Some(false), "nosync");
    let (fsync, appends, fsyncs) = run(Some(true), "fsync");
    let off_ms = off.as_secs_f64() * 1e3;
    let nosync_ms = nosync.as_secs_f64() * 1e3;
    JournalRow {
        kib,
        off_ms,
        nosync_ms,
        fsync_ms: fsync.as_secs_f64() * 1e3,
        nosync_overhead_pct: (nosync_ms - off_ms) / off_ms * 100.0,
        appends,
        fsyncs,
    }
}

/// Cost of evaluation-step budgeting on the optimized existential fast
/// path: the same pre-update check unbudgeted and under a generous budget
/// (charging enabled, never exhausted), plus the verdict-preserving
/// fallback when a tiny budget exhausts.
#[derive(Debug, Clone, Copy)]
pub struct BudgetRow {
    /// Corpus size in KiB.
    pub kib: usize,
    /// Optimized check, no budget armed (ms).
    pub unbudgeted_ms: f64,
    /// Optimized check under a never-exhausting budget (ms).
    pub budgeted_ms: f64,
    /// `(budgeted - unbudgeted) / unbudgeted`, in percent.
    pub overhead_pct: f64,
    /// End-to-end `try_update` time when a zero budget forces the
    /// baseline fallback (ms) — the graceful-degradation cost ceiling.
    pub exhausted_fallback_ms: f64,
}

/// Measures [`BudgetRow`] on the legal statement's optimized check.
pub fn measure_budget(exp: Experiment, kib: usize, seed: u64, iters: usize) -> BudgetRow {
    let mut inst = instance(exp, kib, seed);
    let legal = inst.legal.clone();

    inst.checker.set_eval_budget(None);
    let unbudgeted = time_mean(iters, || {
        assert!(inst.checker.check_optimized(&legal).expect("check").is_none());
    });
    inst.checker.set_eval_budget(Some(xicheck::EvalBudget::new(u64::MAX / 2)));
    let budgeted = time_mean(iters, || {
        assert!(inst.checker.check_optimized(&legal).expect("check").is_none());
    });

    // Exhaustion path: a zero budget trips on the first visit and
    // try_update degrades to apply + full check + rollback-on-violation.
    inst.checker.set_eval_budget(Some(xicheck::EvalBudget::new(0)));
    let fallback = time_mean(iters, || {
        let out = inst.checker.try_update(&legal).expect("fallback update");
        assert!(out.applied());
        assert_eq!(out.strategy(), xicheck::Strategy::FullWithRollback);
    });

    let unbudgeted_ms = unbudgeted.as_secs_f64() * 1e3;
    let budgeted_ms = budgeted.as_secs_f64() * 1e3;
    BudgetRow {
        kib,
        unbudgeted_ms,
        budgeted_ms,
        overhead_pct: (budgeted_ms - unbudgeted_ms) / unbudgeted_ms * 100.0,
        exhausted_fallback_ms: fallback.as_secs_f64() * 1e3,
    }
}

/// Recovery time versus committed-history length, with and without
/// checkpointing. Without checkpoints, [`Checker::recover`] replays the
/// whole history — cost linear in `history`. With an automatic rotation
/// policy, [`Checker::recover_store`] replays only the suffix since the
/// newest snapshot — cost bounded by the rotation interval, flat in
/// `history` (the durability analogue of the paper's Simp making check
/// cost flat in document size).
#[derive(Debug, Clone, Copy)]
pub struct CheckpointRow {
    /// Committed statements before the simulated crash.
    pub history: usize,
    /// Rotation interval (statements) for the checkpointed run.
    pub interval: u64,
    /// Full-history recovery time, no checkpoints (ms).
    pub no_ckpt_recover_ms: f64,
    /// Suffix recovery time from the newest snapshot (ms).
    pub ckpt_recover_ms: f64,
    /// Commits replayed by the checkpointed recovery (≤ `interval`).
    pub ckpt_replayed: usize,
    /// Generation the checkpointed recovery restored from.
    pub generation: u64,
}

fn store_tmp(tag: &str, n: usize, seed: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "xic-bench-store-{}-{tag}-{n}-{seed}",
        std::process::id()
    ))
}

/// Measures [`CheckpointRow`] on the conflict-of-interests workload (its
/// constraint set is corpus-independent, so the recovery entry points can
/// be handed the same base text the journaled run started from).
///
/// The committed history alternates a legal insert with the removal of
/// the inserted submission, so the document — and therefore every
/// snapshot — stays at its base size however long the history grows.
/// That isolates the variable under test: replay length.
pub fn measure_checkpoint(history: usize, interval: u64, kib: usize, seed: u64, iters: usize) -> CheckpointRow {
    let w = generate(WorkloadConfig::sized_kib(kib, seed));
    let constraints = xic_workload::conflict_constraint();
    let legal = XUpdateDoc::parse(&xic_workload::legal_insert(0, 0, 900_001)).expect("legal stmt");
    // The insert appends to track 1 / rev 1, so the new sub sits right
    // after the generator's fixed per-reviewer fan-out.
    let remove_text = format!(
        r#"<xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
  <xupdate:remove select="/collection/review/track[1]/rev[1]/sub[{}]"/>
</xupdate:modifications>"#,
        w.config.subs_per_rev + 1
    );
    let remove = XUpdateDoc::parse(&remove_text).expect("remove stmt");
    let commit_history = |checker: &mut Checker| {
        for i in 0..history {
            let stmt = if i % 2 == 0 { &legal } else { &remove };
            assert!(checker.try_update(stmt).expect("legal update").applied());
        }
    };

    // Without checkpoints: one journal holding the entire history.
    let path = journal_tmp("ckpt-none", history, seed);
    {
        let mut checker = Checker::new(&w.xml, dtd_text(), constraints).expect("corpus loads");
        checker.register_pattern(&legal).expect("pattern registration");
        checker.attach_journal(&path, false).expect("journal attaches");
        commit_history(&mut checker);
    } // crash
    let no_ckpt = time_mean(iters, || {
        let (_c, rep) = Checker::recover(&w.xml, dtd_text(), constraints, &path)
            .expect("recovery");
        assert_eq!(rep.replayed, history);
    });
    let _ = std::fs::remove_file(&path);

    // With checkpoints: same history, automatic rotation every `interval`.
    let dir = store_tmp("ckpt", history, seed);
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut checker = Checker::new(&w.xml, dtd_text(), constraints).expect("corpus loads");
        checker.register_pattern(&legal).expect("pattern registration");
        checker.attach_store(&dir, false).expect("store attaches");
        checker.set_checkpoint_policy(xicheck::CheckpointPolicy::every_commits(interval));
        commit_history(&mut checker);
    } // crash
    let (_c, rep) = Checker::recover_store(&dir, &w.xml, dtd_text(), constraints)
        .expect("store recovery");
    assert!(!rep.degraded);
    assert_eq!(rep.base_commit_seq as usize + rep.replayed, history);
    let (ckpt_replayed, generation) = (rep.replayed, rep.generation);
    let ckpt = time_mean(iters, || {
        let (_c, rep) =
            Checker::recover_store(&dir, &w.xml, dtd_text(), constraints).expect("store recovery");
        assert!(!rep.degraded);
    });
    let _ = std::fs::remove_dir_all(&dir);

    CheckpointRow {
        history,
        interval,
        no_ckpt_recover_ms: no_ckpt.as_secs_f64() * 1e3,
        ckpt_recover_ms: ckpt.as_secs_f64() * 1e3,
        ckpt_replayed,
        generation,
    }
}

/// Cost of one atomic checkpoint (serialize + tmp write + fsync + rename
/// + dir fsync + fresh segment) as the document grows.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointWriteRow {
    /// Corpus size in KiB.
    pub kib: usize,
    /// Serialized snapshot bytes actually written.
    pub bytes: usize,
    /// Mean cost of [`Checker::checkpoint`] (ms).
    pub write_ms: f64,
}

/// Measures [`CheckpointWriteRow`]; every iteration rotates to a fresh
/// generation (retention keeps the store directory bounded).
pub fn measure_checkpoint_write(exp: Experiment, kib: usize, seed: u64, iters: usize) -> CheckpointWriteRow {
    let mut inst = instance(exp, kib, seed);
    let dir = store_tmp("write", kib, seed);
    let _ = std::fs::remove_dir_all(&dir);
    inst.checker.attach_store(&dir, false).expect("store attaches");
    let legal = inst.legal.clone();
    assert!(inst.checker.try_update(&legal).expect("legal update").applied());
    let bytes = xic_xml::serialize(inst.checker.doc()).len();
    let write = time_mean(iters, || {
        inst.checker.checkpoint().expect("checkpoint");
    });
    let _ = std::fs::remove_dir_all(&dir);
    CheckpointWriteRow {
        kib,
        bytes,
        write_ms: write.as_secs_f64() * 1e3,
    }
}

/// Multi-client service throughput and latency (E10): `clients` writer
/// threads each submit a stream of legal pattern-matching inserts
/// through a [`CheckerService`] whose journal fsyncs — under the
/// sequential executor (one fsync per commit) and the group-commit
/// executor (one shared fsync per batch).
#[derive(Debug, Clone, Copy)]
pub struct ServiceRow {
    /// Concurrent writer clients.
    pub clients: usize,
    /// Executor under test: `"sync"` or `"group-commit"`.
    pub executor: &'static str,
    /// Total acknowledged updates across all clients.
    pub updates: usize,
    /// Wall-clock time for the whole run (ms).
    pub wall_ms: f64,
    /// Acknowledged updates per second.
    pub throughput_per_s: f64,
    /// Median submit→ack latency (ms).
    pub p50_ms: f64,
    /// 99th-percentile submit→ack latency (ms).
    pub p99_ms: f64,
}

/// Measures [`ServiceRow`] on the conflict-of-interests workload. Every
/// statement is a fresh-author insert (always legal, and hitting the
/// registered pattern's optimized check), so throughput differences
/// between the executors isolate the commit path — per-commit fsyncs
/// versus one shared fsync per batch. Latency is measured per submit on
/// each client thread, from the call to the durable acknowledgement.
pub fn measure_service(
    kib: usize,
    seed: u64,
    clients: usize,
    per_client: usize,
    executor: Executor,
) -> ServiceRow {
    let name = match executor {
        Executor::Sync => "sync",
        Executor::GroupCommit { .. } => "group-commit",
    };
    let w = generate(WorkloadConfig::sized_kib(kib, seed));
    let constraints = xic_workload::conflict_constraint();
    let mut checker = Checker::new(&w.xml, dtd_text(), constraints).expect("corpus loads");
    let pattern =
        XUpdateDoc::parse(&xic_workload::legal_insert(0, 0, 900_001)).expect("legal stmt");
    checker.register_pattern(&pattern).expect("pattern registration");
    let path = journal_tmp(&format!("svc-{name}-{clients}"), kib, seed);
    let _ = std::fs::remove_file(&path);
    checker.attach_journal(&path, true).expect("journal attaches");
    let service = CheckerService::new(checker, executor);

    let start = Instant::now();
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(clients * per_client);
    std::thread::scope(|scope| {
        let service = &service;
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut lats = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        // Distinct serials keep every author fresh, so
                        // each insert stays legal as the run proceeds.
                        let serial = 100_000 + c * per_client + i;
                        let stmt = xic_workload::legal_insert(0, 0, serial);
                        let t = Instant::now();
                        let out = service.submit(&stmt).expect("legal update");
                        lats.push(t.elapsed().as_secs_f64() * 1e3);
                        assert!(out.outcome.applied());
                    }
                    lats
                })
            })
            .collect();
        for h in handles {
            latencies_ms.extend(h.join().expect("client thread"));
        }
    });
    let wall = start.elapsed();
    let live = service.shutdown().expect("first shutdown succeeds");
    assert_eq!(live.committed(), (clients * per_client) as u64);
    let _ = std::fs::remove_file(&path);

    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: usize| latencies_ms[(latencies_ms.len() * p / 100).min(latencies_ms.len() - 1)];
    let updates = clients * per_client;
    ServiceRow {
        clients,
        executor: name,
        updates,
        wall_ms: wall.as_secs_f64() * 1e3,
        throughput_per_s: updates as f64 / wall.as_secs_f64(),
        p50_ms: pct(50),
        p99_ms: pct(99),
    }
}

/// One point on the overload curve (E13): `clients` closed-loop writers
/// against a service with a deliberately small admission queue, counting
/// what the service sheds versus what it commits.
#[derive(Debug, Clone, Copy)]
pub struct OverloadRow {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Admission bound the service was configured with.
    pub queue_depth: usize,
    /// Submit attempts across all clients (acks + sheds = offered load).
    pub offered: usize,
    /// Acknowledged commits (the goodput numerator).
    pub acked: usize,
    /// Attempts refused with `Overloaded`.
    pub shed: usize,
    /// Wall-clock time for the whole run (ms).
    pub wall_ms: f64,
    /// Acknowledged commits per second.
    pub goodput_per_s: f64,
    /// Submit attempts per second (offered load).
    pub offered_per_s: f64,
    /// 99th-percentile latency of *successful* submits (ms).
    pub p99_ms: f64,
}

impl OverloadRow {
    /// Fraction of attempts shed, in `[0, 1]`.
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed as f64 / self.offered as f64
        }
    }
}

/// Measures [`OverloadRow`]: each client submits `per_client` legal
/// pattern-matching inserts and, when shed, retries after a
/// seed-deterministic jittered exponential backoff (1–2, 2–4, 4–8 … ms,
/// capped at 32 ms) — the protocol's documented client discipline. Every
/// statement therefore commits exactly once; what the curve shows is how
/// goodput plateaus and shed rate grows as clients outnumber the
/// admission queue, instead of latency collapsing.
pub fn measure_overload(
    kib: usize,
    seed: u64,
    clients: usize,
    per_client: usize,
    queue_depth: usize,
) -> OverloadRow {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use xicheck::{ServiceConfig, ServiceError};

    let w = generate(WorkloadConfig::sized_kib(kib, seed));
    let constraints = xic_workload::conflict_constraint();
    let mut checker = Checker::new(&w.xml, dtd_text(), constraints).expect("corpus loads");
    let pattern =
        XUpdateDoc::parse(&xic_workload::legal_insert(0, 0, 900_002)).expect("legal stmt");
    checker.register_pattern(&pattern).expect("pattern registration");
    let path = journal_tmp(&format!("ovl-{clients}"), kib, seed);
    let _ = std::fs::remove_file(&path);
    checker.attach_journal(&path, true).expect("journal attaches");
    let service = CheckerService::with_config(
        checker,
        ServiceConfig {
            queue_depth,
            ..Default::default()
        },
    );

    let start = Instant::now();
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(clients * per_client);
    let mut offered = 0usize;
    let mut shed = 0usize;
    std::thread::scope(|scope| {
        let service = &service;
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut rng =
                        StdRng::seed_from_u64(seed ^ (c as u64).wrapping_mul(0x9e37_79b9));
                    let mut lats = Vec::with_capacity(per_client);
                    let mut attempts = 0usize;
                    let mut rejected = 0usize;
                    for i in 0..per_client {
                        let serial = 200_000 + c * per_client + i;
                        let stmt = xic_workload::legal_insert(0, 0, serial);
                        let mut backoff_ms = 1u64;
                        loop {
                            attempts += 1;
                            let t = Instant::now();
                            match service.submit(&stmt) {
                                Ok(out) => {
                                    assert!(out.outcome.applied());
                                    lats.push(t.elapsed().as_secs_f64() * 1e3);
                                    break;
                                }
                                Err(ServiceError::Overloaded { .. }) => {
                                    rejected += 1;
                                    let jitter =
                                        rng.gen_range(backoff_ms..=backoff_ms.saturating_mul(2));
                                    std::thread::sleep(Duration::from_millis(jitter));
                                    backoff_ms = (backoff_ms * 2).min(32);
                                }
                                Err(e) => panic!("unexpected submit error: {e}"),
                            }
                        }
                    }
                    (lats, attempts, rejected)
                })
            })
            .collect();
        for h in handles {
            let (lats, attempts, rejected) = h.join().expect("client thread");
            latencies_ms.extend(lats);
            offered += attempts;
            shed += rejected;
        }
    });
    let wall = start.elapsed();
    let stats = service.stats();
    assert_eq!(stats.requests_shed as usize, shed, "shed accounting disagrees");
    let live = service.shutdown().expect("first shutdown succeeds");
    let acked = clients * per_client;
    assert_eq!(live.committed(), acked as u64);
    let _ = std::fs::remove_file(&path);

    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let p99 = latencies_ms[(latencies_ms.len() * 99 / 100).min(latencies_ms.len() - 1)];
    OverloadRow {
        clients,
        queue_depth,
        offered,
        acked,
        shed,
        wall_ms: wall.as_secs_f64() * 1e3,
        goodput_per_s: acked as f64 / wall.as_secs_f64(),
        offered_per_s: offered as f64 / wall.as_secs_f64(),
        p99_ms: p99,
    }
}

/// One row of the independence experiment (E12): per-update latency of
/// the same region-local update stream against `constraints` constraints
/// with the static independence mask on vs off, and the masked run's
/// static skip rate.
#[derive(Debug, Clone, Copy)]
pub struct IndependenceRow {
    /// Total constraints registered (two per tenant region).
    pub constraints: usize,
    /// Statements driven through `try_update`.
    pub updates: usize,
    /// Mean per-update latency with the mask on (ms).
    pub on_ms: f64,
    /// Mean per-update latency with the mask off (ms).
    pub off_ms: f64,
    /// Constraint checks statically skipped during the masked run.
    pub skipped: u64,
    /// Constraint checks retained during the masked run.
    pub retained: u64,
}

impl IndependenceRow {
    /// Fraction of constraint checks the analysis skipped, in `[0, 1]`.
    pub fn skip_rate(&self) -> f64 {
        let total = self.skipped + self.retained;
        if total == 0 {
            0.0
        } else {
            self.skipped as f64 / total as f64
        }
    }

    /// `off_ms / on_ms` — how much the mask buys on this stream.
    pub fn speedup(&self) -> f64 {
        self.off_ms / self.on_ms.max(f64::EPSILON)
    }
}

/// Measures [`IndependenceRow`] on the multi-tenant workload
/// ([`xic_workload::multi`]): `constraints / 2` tenant regions, each
/// carrying a key-uniqueness join and a capacity aggregate, driven by a
/// Zipf-skewed stream of region-local statements covering all six
/// operation kinds. The identical pre-parsed stream replays against a
/// masked and an unmasked checker, so the latency difference isolates
/// the checks the analysis proves irrelevant (plus the footprint
/// computation itself, which the masked run pays).
pub fn measure_independence(constraints: usize, seed: u64, updates: usize) -> IndependenceRow {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xic_workload::multi::{generate_multi, random_multi_statement, MultiConfig};

    assert!(
        constraints >= 2 && constraints % 2 == 0,
        "constraints must be even (two per region)"
    );
    let mut cfg = MultiConfig::with_regions(constraints / 2, seed);
    // Enough capacity headroom that the stream's appends stay legal.
    cfg.cap = cfg.items_per_region + updates;
    let w = generate_multi(cfg);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9));
    let stmts: Vec<XUpdateDoc> = (0..updates)
        .map(|_| {
            XUpdateDoc::parse(&random_multi_statement(&mut rng, &w))
                .expect("generated statement parses")
        })
        .collect();

    let run = |mask: bool| -> (f64, u64, u64) {
        let mut c = Checker::new(&w.xml, &w.dtd, &w.constraints_text())
            .expect("multi-tenant corpus assembles");
        c.set_independence(mask);
        xicheck::obs::reset();
        let start = Instant::now();
        for stmt in &stmts {
            // A select can legitimately stop matching after earlier
            // removes; both runs see the identical stream, so errors are
            // symmetric and simply not counted as work.
            let _ = c.try_update(stmt);
        }
        let per_update = start.elapsed().as_secs_f64() * 1e3 / updates.max(1) as f64;
        let snap = xicheck::obs::snapshot();
        (
            per_update,
            snap.counter(xicheck::obs::Counter::ChecksSkippedStatic),
            snap.counter(xicheck::obs::Counter::ChecksRetainedStatic),
        )
    };
    let (on_ms, skipped, retained) = run(true);
    let (off_ms, off_skipped, _) = run(false);
    assert_eq!(off_skipped, 0, "unmasked run must not skip");
    IndependenceRow {
        constraints,
        updates,
        on_ms,
        off_ms,
        skipped,
        retained,
    }
}

/// One point on the E14 recovery curve: a K-shard store with committed
/// history on every shard, recovered sequentially and in parallel.
#[derive(Debug, Clone, Copy)]
pub struct ShardRecoveryRow {
    /// Shard count.
    pub shards: usize,
    /// Commits durably applied across all shards before the recovery.
    pub commits: usize,
    /// Mean whole-set recovery time, one shard at a time (ms).
    pub seq_recover_ms: f64,
    /// Mean whole-set recovery time, scoped-thread fan-out (ms).
    pub par_recover_ms: f64,
}

impl ShardRecoveryRow {
    /// Sequential-over-parallel wall-clock ratio (> 1 means the fan-out
    /// pays off).
    pub fn speedup(&self) -> f64 {
        if self.par_recover_ms == 0.0 {
            0.0
        } else {
            self.seq_recover_ms / self.par_recover_ms
        }
    }
}

fn shard_root_tmp(tag: &str, shards: usize, seed: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "xic-bench-shards-{}-{tag}-{shards}-{seed}",
        std::process::id()
    ))
}

/// Measures [`ShardRecoveryRow`]: builds a K-shard set over distinct
/// DBLP-style corpora, drives a Zipf-skewed event stream into it
/// (organically refused statements are fine — only durable commits
/// count), then times whole-set recovery with the sequential and the
/// parallel fan-out. Recovery over a cleanly shut-down store is
/// idempotent, so both timings replay identical bytes.
pub fn measure_shard_recovery(shards: usize, seed: u64, iters: usize) -> ShardRecoveryRow {
    use xic_workload::shards::{generate_corpora, shard_events, ShardTrafficConfig};
    use xicheck::{ShardSet, ShardSetConfig};

    // A heavier event budget than the throughput panel: recovery replay
    // is what's under test, so give every shard a real journal suffix.
    let corpora = generate_corpora(ShardTrafficConfig {
        seed,
        shards,
        events: 192 * shards,
    });
    let bases = corpora.bases();
    let constraints = xic_workload::conflict_constraint();
    let cfg = ShardSetConfig {
        service: xicheck::ServiceConfig {
            executor: Executor::Sync,
            ..Default::default()
        },
        sync: false,
        ..Default::default()
    };
    let root = shard_root_tmp("recover", shards, seed);
    let _ = std::fs::remove_dir_all(&root);
    let set = ShardSet::create(&root, &bases, dtd_text(), constraints, cfg)
        .expect("shard set creation");
    let mut commits = 0usize;
    for e in shard_events(&corpora) {
        // A generated statement may no longer match after earlier events
        // on its shard — that refusal is part of the workload's shape.
        if let Ok(out) = set.submit(e.shard, &e.stmt) {
            if out.outcome.applied() {
                commits += 1;
            }
        }
    }
    set.shutdown().expect("clean shutdown");
    drop(set);

    let recover = |parallel: bool| {
        let (set, report) =
            ShardSet::recover(&root, &bases, dtd_text(), constraints, cfg, parallel)
                .expect("shard set recovery");
        assert_eq!(report.shards.len(), shards);
        assert!(report.degraded_shards().is_empty());
        let _ = set.shutdown();
    };
    let seq = time_mean(iters, || recover(false));
    let par = time_mean(iters, || recover(true));
    let _ = std::fs::remove_dir_all(&root);

    ShardRecoveryRow {
        shards,
        commits,
        seq_recover_ms: seq.as_secs_f64() * 1e3,
        par_recover_ms: par.as_secs_f64() * 1e3,
    }
}

/// K-shard mixed-traffic throughput (E14's second panel): one writer
/// thread per shard drains that shard's slice of a Zipf-skewed event
/// stream, all against one [`xicheck::ShardSet`] sharing a compiled Γ
/// and pattern cache.
#[derive(Debug, Clone, Copy)]
pub struct ShardThroughputRow {
    /// Shard count (= writer threads).
    pub shards: usize,
    /// Events offered across all shards.
    pub offered: usize,
    /// Events acknowledged as applied.
    pub acked: usize,
    /// Wall-clock time for the whole run (ms).
    pub wall_ms: f64,
    /// Acknowledged commits per second across the set.
    pub throughput_per_s: f64,
}

/// Measures [`ShardThroughputRow`]. Statement refusals (constraint
/// violations or selects emptied by earlier traffic) are counted against
/// `offered` but not `acked`; shard-level errors are a bug.
pub fn measure_shard_throughput(shards: usize, seed: u64) -> ShardThroughputRow {
    use xic_workload::shards::{
        generate_corpora, per_shard_streams, shard_events, ShardTrafficConfig,
    };
    use xicheck::{ShardSet, ShardSetConfig};

    let corpora = generate_corpora(ShardTrafficConfig::with_shards(shards, seed));
    let bases = corpora.bases();
    let constraints = xic_workload::conflict_constraint();
    let cfg = ShardSetConfig {
        service: xicheck::ServiceConfig {
            executor: Executor::Sync,
            ..Default::default()
        },
        sync: false,
        ..Default::default()
    };
    let root = shard_root_tmp("throughput", shards, seed);
    let _ = std::fs::remove_dir_all(&root);
    let set = ShardSet::create(&root, &bases, dtd_text(), constraints, cfg)
        .expect("shard set creation");
    let events = shard_events(&corpora);
    let streams = per_shard_streams(&events, shards);

    let start = Instant::now();
    let acked: usize = std::thread::scope(|scope| {
        let set = &set;
        let handles: Vec<_> = streams
            .iter()
            .enumerate()
            .map(|(id, stream)| {
                scope.spawn(move || {
                    let mut ok = 0usize;
                    for stmt in stream {
                        match set.submit(id, stmt) {
                            Ok(out) if out.outcome.applied() => ok += 1,
                            Ok(_) => {}
                            Err(e) => {
                                // Refused selects surface as statement
                                // errors; anything else is a bug.
                                assert!(
                                    e.to_string().contains("bad statement"),
                                    "shard {id}: {e}"
                                );
                            }
                        }
                    }
                    ok
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("writer thread")).sum()
    });
    let wall = start.elapsed();
    set.shutdown().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&root);

    ShardThroughputRow {
        shards,
        offered: events.len(),
        acked,
        wall_ms: wall.as_secs_f64() * 1e3,
        throughput_per_s: acked as f64 / wall.as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_builds_and_checks() {
        for exp in [Experiment::ConflictOfInterests, Experiment::ConferenceWorkload] {
            let mut inst = instance(exp, 8, 42);
            assert!(inst.checker.check_full().unwrap().is_none(), "{exp:?}");
            assert!(
                inst.checker.check_optimized(&inst.legal).unwrap().is_none(),
                "{exp:?}"
            );
            let out = inst.checker.try_update(&inst.illegal).unwrap();
            assert!(!out.applied(), "{exp:?}");
        }
    }

    #[test]
    fn shard_rows_measure_recovery_and_throughput() {
        let r = measure_shard_recovery(2, 5, 1);
        assert_eq!(r.shards, 2);
        assert!(r.commits > 0, "{r:?}");
        assert!(r.seq_recover_ms > 0.0 && r.par_recover_ms > 0.0);
        let t = measure_shard_throughput(2, 5);
        assert_eq!(t.shards, 2);
        assert!(t.acked > 0 && t.acked <= t.offered, "{t:?}");
    }

    #[test]
    fn independence_rows_skip_disjoint_regions() {
        let r = measure_independence(8, 3, 12);
        assert!(r.on_ms > 0.0 && r.off_ms > 0.0);
        assert!(r.skipped > 0, "{r:?}");
        assert!(r.skip_rate() > 0.5, "{r:?}");
    }

    #[test]
    fn rows_have_positive_times() {
        let row = measure_row(Experiment::ConflictOfInterests, 8, 1, 1);
        assert!(row.full_ms > 0.0);
        assert!(row.optimized_ms > 0.0);
        assert!(row.update_full_undo_ms > 0.0);
        assert!(row.bytes > 4096);
    }

    #[test]
    fn illegal_rows_measure_both_paths() {
        let r = measure_illegal(Experiment::ConferenceWorkload, 8, 2, 1);
        assert!(r.optimized_reject_ms > 0.0);
        assert!(r.baseline_reject_ms > 0.0);
    }

    #[test]
    fn exists_rows_short_circuit() {
        let r = measure_exists(Experiment::ConflictOfInterests, 8, 3, 1);
        assert!(r.exists_ms > 0.0 && r.materialized_ms > 0.0 && r.parallel_ms > 0.0);
        assert!(
            r.exists_nodes_visited <= r.materialized_nodes_visited,
            "existential mode must not visit more nodes ({} vs {})",
            r.exists_nodes_visited,
            r.materialized_nodes_visited,
        );
    }

    #[test]
    fn ir_rows_measure_both_engines() {
        let r = measure_ir(Experiment::ConflictOfInterests, 8, 4, 1);
        assert!(r.interpret_full_ms > 0.0 && r.compiled_full_ms > 0.0);
        assert!(r.interpret_optimized_ms > 0.0 && r.compiled_optimized_ms > 0.0);
    }

    #[test]
    fn journal_rows_measure_all_three_configurations() {
        let r = measure_journal(Experiment::ConflictOfInterests, 8, 5, 1);
        assert!(r.off_ms > 0.0 && r.nosync_ms > 0.0 && r.fsync_ms > 0.0);
        assert!(r.appends > 0, "fsync run must journal every commit");
        assert!(r.fsyncs > 0, "fsync run must sync every record");
    }

    #[test]
    fn budget_rows_measure_overhead_and_fallback() {
        let r = measure_budget(Experiment::ConflictOfInterests, 8, 6, 1);
        assert!(r.unbudgeted_ms > 0.0 && r.budgeted_ms > 0.0);
        assert!(r.exhausted_fallback_ms > 0.0);
    }

    #[test]
    fn checkpoint_rows_bound_replay_to_the_suffix() {
        let r = measure_checkpoint(12, 4, 8, 7, 1);
        assert!(r.no_ckpt_recover_ms > 0.0 && r.ckpt_recover_ms > 0.0);
        assert!(r.generation >= 2, "12 commits at interval 4 must rotate");
        assert!(
            r.ckpt_replayed <= 4,
            "checkpointed recovery must replay at most one interval, got {}",
            r.ckpt_replayed
        );
    }

    #[test]
    fn checkpoint_write_rows_report_snapshot_bytes() {
        let r = measure_checkpoint_write(Experiment::ConflictOfInterests, 8, 8, 1);
        assert!(r.write_ms > 0.0);
        assert!(r.bytes > 4096, "8 KiB corpus snapshot should exceed 4 KiB");
    }

    #[test]
    fn service_rows_measure_both_executors() {
        for executor in [Executor::Sync, Executor::group_commit()] {
            let r = measure_service(8, 9, 2, 3, executor);
            assert_eq!(r.updates, 6);
            assert!(r.wall_ms > 0.0 && r.throughput_per_s > 0.0);
            assert!(r.p50_ms > 0.0 && r.p99_ms >= r.p50_ms);
        }
    }

    #[test]
    fn order_cache_rows_take_the_fast_path() {
        let r = measure_order_cache(8, 4, 1);
        assert!(r.cached_ms > 0.0 && r.uncached_ms > 0.0);
        assert!(r.fast_sorts > 0, "cached run must use rank sorts");
        assert!(r.path_sorts > 0, "uncached run must fall back to path keys");
    }
}

//! Translation of Datalog denials into XQuery (Section 6).
//!
//! The output is a [`QueryTemplate`]: XQuery source text in which every
//! parameter of the (simplified) denial appears as a `%{name}` placeholder
//! — "the placeholders %r, %t and %n will be known at update time and
//! replaced in the query". Node-id parameters are replaced by the
//! absolute positional path of the target node
//! (`/review/track[2]/rev[5]`), value parameters by literals.
//!
//! Translation follows the paper's strategy with its optimizations fused
//! in: every atom contributes a `some $id in <source>` binding (the
//! existential on the node), value columns are *inlined* as
//! `$id/tag/text()` wherever used (the paper's dead-definition elimination
//! and single-use inlining leave exactly this shape), positions become
//! `count($id/preceding-sibling::*) + 1`, and aggregate literals become
//! `let`-bound sequences inside an `exists(for … return <idle/>)` wrapper.
//!
//! In the system-inventory table of `DESIGN.md` this crate is item 10 (Datalog→XQuery translator).

pub mod template;
pub mod translate;

pub use template::{ParamKind, QueryTemplate, TemplateError};
pub use translate::{
    translate_denial, translate_denial_with, translate_denials, translate_denials_with,
    TranslateError,
};

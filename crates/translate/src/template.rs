//! Query templates with update-time placeholders.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use xic_datalog::Value;
use xic_xml::{Document, NodeId};

/// How a placeholder is rendered at instantiation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamKind {
    /// A node identifier: rendered as the node's absolute positional path
    /// (`/review/track[2]/rev[5]`).
    NodePath,
    /// A data value: rendered as a string or numeric literal.
    Value,
}

/// Instantiation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemplateError {
    /// A placeholder had no binding.
    Unbound(String),
    /// A node-path parameter did not resolve to an attached node.
    BadNode(String),
    /// A string value cannot be quoted in XQuery (contains both quote
    /// characters).
    Unquotable(String),
}

impl fmt::Display for TemplateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemplateError::Unbound(p) => write!(f, "unbound placeholder %{{{p}}}"),
            TemplateError::BadNode(p) => {
                write!(f, "placeholder %{{{p}}} does not denote an attached node")
            }
            TemplateError::Unquotable(s) => {
                write!(f, "value {s:?} contains both quote characters")
            }
        }
    }
}

impl std::error::Error for TemplateError {}

/// A translated query with `%{name}` placeholders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryTemplate {
    /// XQuery source text with placeholders.
    pub text: String,
    /// Placeholder kinds.
    pub params: BTreeMap<String, ParamKind>,
}

impl fmt::Display for QueryTemplate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl QueryTemplate {
    /// True if the template needs no update-time information (full,
    /// non-simplified checks).
    pub fn is_closed(&self) -> bool {
        self.params.is_empty()
    }

    /// Substitutes all placeholders, producing runnable XQuery text.
    ///
    /// Node-id parameters must be bound to `Value::Int` node ids valid in
    /// `doc`; value parameters to strings or integers.
    pub fn instantiate(
        &self,
        doc: &Document,
        bindings: &HashMap<String, Value>,
    ) -> Result<String, TemplateError> {
        let mut out = self.text.clone();
        for (name, kind) in &self.params {
            let value = bindings
                .get(name)
                .ok_or_else(|| TemplateError::Unbound(name.clone()))?;
            let rendered = match kind {
                ParamKind::NodePath => {
                    let id = value
                        .as_int()
                        .and_then(|i| u32::try_from(i).ok())
                        .ok_or_else(|| TemplateError::BadNode(name.clone()))?;
                    doc.positional_path(NodeId(id))
                        .ok_or_else(|| TemplateError::BadNode(name.clone()))?
                }
                ParamKind::Value => match value {
                    Value::Int(i) => i.to_string(),
                    Value::Str(s) => quote(s)?,
                },
            };
            out = out.replace(&format!("%{{{name}}}"), &rendered);
        }
        Ok(out)
    }
}

/// Quotes a string as an XQuery literal (the shared lexer supports both
/// quote characters but no escapes).
pub fn quote(s: &str) -> Result<String, TemplateError> {
    if !s.contains('"') {
        Ok(format!("\"{s}\""))
    } else if !s.contains('\'') {
        Ok(format!("'{s}'"))
    } else {
        Err(TemplateError::Unquotable(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xic_xml::parse_document;

    #[test]
    fn instantiate_node_and_value() {
        let (doc, _) = parse_document(
            "<review><track><name>A</name></track><track><name>B</name>\
             <rev><name>R</name></rev></track></review>",
        )
        .unwrap();
        let rev = doc.elements_named("rev")[0];
        let t = QueryTemplate {
            text: "some $d in //aut satisfies $d/name/text() = %{n} and \
                   %{ir}/name/text() = $d/name/text()"
                .to_string(),
            params: [
                ("n".to_string(), ParamKind::Value),
                ("ir".to_string(), ParamKind::NodePath),
            ]
            .into(),
        };
        let mut b = HashMap::new();
        b.insert("n".to_string(), Value::from("Jack"));
        b.insert("ir".to_string(), Value::Int(i64::from(rev.0)));
        let q = t.instantiate(&doc, &b).unwrap();
        assert!(q.contains("\"Jack\""), "{q}");
        assert!(q.contains("/review/track[2]/rev[1]/name/text()"), "{q}");
    }

    #[test]
    fn unbound_and_bad_node() {
        let (doc, _) = parse_document("<r/>").unwrap();
        let t = QueryTemplate {
            text: "%{x}".to_string(),
            params: [("x".to_string(), ParamKind::NodePath)].into(),
        };
        assert!(matches!(
            t.instantiate(&doc, &HashMap::new()),
            Err(TemplateError::Unbound(_))
        ));
        let mut b = HashMap::new();
        b.insert("x".to_string(), Value::from("oops"));
        assert!(matches!(
            t.instantiate(&doc, &b),
            Err(TemplateError::BadNode(_))
        ));
    }

    #[test]
    fn quoting() {
        assert_eq!(quote("plain").unwrap(), "\"plain\"");
        assert_eq!(quote("it\"s").unwrap(), "'it\"s'");
        assert!(quote("both\"'quotes").is_err());
    }
}

//! The denial → XQuery translation algorithm.

use crate::template::{quote, ParamKind, QueryTemplate, TemplateError};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use xic_datalog::{AggFunc, Aggregate, Atom, CompOp, Denial, Literal, Term, Value};
use xic_mapping::RelSchema;

/// Translation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranslateError {
    /// The denial uses a construct with no XQuery counterpart under this
    /// schema.
    Unsupported(String),
    /// A predicate/arity mismatch against the schema.
    Schema(String),
    /// A variable occurs only in positions that cannot define it.
    UnsafeVar(String),
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::Unsupported(m) => write!(f, "untranslatable: {m}"),
            TranslateError::Schema(m) => write!(f, "schema mismatch: {m}"),
            TranslateError::UnsafeVar(v) => write!(f, "unsafe variable {v}"),
        }
    }
}

impl std::error::Error for TranslateError {}

impl From<TemplateError> for TranslateError {
    fn from(e: TemplateError) -> Self {
        TranslateError::Unsupported(e.to_string())
    }
}

/// Translates a set of denials; the produced queries each report `true`
/// on violation, so the constraint set holds iff every query is false.
pub fn translate_denials(
    denials: &[Denial],
    schema: &RelSchema,
) -> Result<Vec<QueryTemplate>, TranslateError> {
    denials.iter().map(|d| translate_denial(d, schema)).collect()
}

/// [`translate_denials`] for simplified denials whose parameters include
/// known node identifiers (update targets and fresh ids).
pub fn translate_denials_with(
    denials: &[Denial],
    schema: &RelSchema,
    node_params: &std::collections::BTreeSet<String>,
) -> Result<Vec<QueryTemplate>, TranslateError> {
    denials
        .iter()
        .map(|d| translate_denial_with(d, schema, node_params))
        .collect()
}

/// Translates one denial into an XQuery template returning `true` iff the
/// denial is violated in the queried document.
pub fn translate_denial(
    denial: &Denial,
    schema: &RelSchema,
) -> Result<QueryTemplate, TranslateError> {
    translate_denial_with(denial, schema, &std::collections::BTreeSet::new())
}

/// [`translate_denial`] with a set of parameters known to denote node
/// identifiers; these are always rendered as positional node paths, and
/// comparisons between node terms use identity (union-cardinality)
/// semantics rather than string values.
pub fn translate_denial_with(
    denial: &Denial,
    schema: &RelSchema,
    node_params: &std::collections::BTreeSet<String>,
) -> Result<QueryTemplate, TranslateError> {
    let mut t = Tr {
        schema,
        node_params,
        occurrences: occurrences(denial),
        node_expr: HashMap::new(),
        var_expr: HashMap::new(),
        bindings: Vec::new(),
        lets: Vec::new(),
        conds: Vec::new(),
        params: BTreeMap::new(),
        agg_counter: 0,
    };

    let mut atoms: Vec<&Atom> = Vec::new();
    let mut comps: Vec<(&Term, CompOp, &Term)> = Vec::new();
    let mut negs: Vec<&Atom> = Vec::new();
    let mut aggs: Vec<(usize, &Aggregate, CompOp, &Term)> = Vec::new();
    for (i, l) in denial.body.iter().enumerate() {
        match l {
            Literal::Pos(a) => atoms.push(a),
            Literal::Neg(a) => negs.push(a),
            Literal::Comp(x, op, y) => comps.push((x, *op, y)),
            Literal::Agg(a, op, k) => aggs.push((i, a, *op, k)),
        }
    }

    for a in order_atoms(&atoms)? {
        t.atom(a)?;
    }
    for (i, agg, op, k) in &aggs {
        t.aggregate(*i, agg, *op, k)?;
    }
    for (x, op, y) in comps {
        t.comparison(x, op, y)?;
    }
    for n in negs {
        t.negated_atom(n)?;
    }

    let params = t.params.clone();
    let text = t.assemble(!aggs.is_empty());
    Ok(QueryTemplate { text, params })
}

/// Variable occurrences across the denial: for each variable, the list of
/// body-literal indexes it appears in (with multiplicity).
fn occurrences(denial: &Denial) -> HashMap<String, Vec<usize>> {
    let mut occ: HashMap<String, Vec<usize>> = HashMap::new();
    let term = |t: &Term, i: usize, occ: &mut HashMap<String, Vec<usize>>| {
        if let Term::Var(v) = t {
            occ.entry(v.clone()).or_default().push(i);
        }
    };
    for (i, l) in denial.body.iter().enumerate() {
        match l {
            Literal::Pos(a) | Literal::Neg(a) => {
                for t in &a.args {
                    term(t, i, &mut occ);
                }
            }
            Literal::Comp(x, _, y) => {
                term(x, i, &mut occ);
                term(y, i, &mut occ);
            }
            Literal::Agg(agg, _, k) => {
                for a in &agg.pattern {
                    for t in &a.args {
                        term(t, i, &mut occ);
                    }
                }
                if let Some(t) = &agg.term {
                    term(t, i, &mut occ);
                }
                term(k, i, &mut occ);
            }
        }
    }
    occ
}

/// Orders atoms parent-before-child (the paper's sorting step).
fn order_atoms<'a>(atoms: &[&'a Atom]) -> Result<Vec<&'a Atom>, TranslateError> {
    let mut pending: Vec<&Atom> = atoms.to_vec();
    let mut out: Vec<&Atom> = Vec::new();
    let mut defined: HashSet<&str> = HashSet::new();
    while !pending.is_empty() {
        let idx = pending.iter().position(|a| {
            match a.args.get(2) {
                Some(Term::Var(w)) => {
                    // Ready if the parent var is already defined, or is not
                    // the id of any pending atom.
                    defined.contains(w.as_str())
                        || !pending
                            .iter()
                            .any(|b| b.args.first().and_then(Term::var_name) == Some(w))
                }
                _ => true, // params/consts never wait
            }
        });
        match idx {
            Some(i) => {
                let a = pending.remove(i);
                if let Some(Term::Var(v)) = a.args.first() {
                    defined.insert(v.as_str());
                }
                out.push(a);
            }
            None => {
                return Err(TranslateError::Unsupported(
                    "cyclic parent links between atoms".to_string(),
                ))
            }
        }
    }
    Ok(out)
}

struct Tr<'a> {
    schema: &'a RelSchema,
    node_params: &'a std::collections::BTreeSet<String>,
    occurrences: HashMap<String, Vec<usize>>,
    /// Datalog node-id variable → XQuery node expression (`$v`, `%{p}`).
    node_expr: HashMap<String, String>,
    /// Datalog value variable → XQuery value expression.
    var_expr: HashMap<String, String>,
    /// `some`/`for` bindings, in order: (`$name`, source).
    bindings: Vec<(String, String)>,
    /// `let` bindings for aggregates.
    lets: Vec<(String, String)>,
    conds: Vec<String>,
    params: BTreeMap<String, ParamKind>,
    agg_counter: usize,
}

impl Tr<'_> {
    fn param(&mut self, name: &str, kind: ParamKind) -> String {
        // Known node parameters are always paths; otherwise NodePath wins
        // if a parameter is used both ways.
        let kind = if self.node_params.contains(name) {
            ParamKind::NodePath
        } else {
            kind
        };
        let slot = self.params.entry(name.to_string()).or_insert(kind);
        if kind == ParamKind::NodePath {
            *slot = ParamKind::NodePath;
        }
        format!("%{{{name}}}")
    }

    fn used_elsewhere(&self, v: &str) -> bool {
        self.occurrences.get(v).map_or(0, Vec::len) > 1
    }

    /// True if the variable occurs in a literal other than `lit_idx`.
    fn occurs_outside(&self, v: &str, lit_idx: usize) -> bool {
        self.occurrences
            .get(v)
            .is_some_and(|ls| ls.iter().any(|&l| l != lit_idx))
    }

    fn const_lit(v: &Value) -> Result<String, TranslateError> {
        Ok(match v {
            Value::Int(i) => i.to_string(),
            Value::Str(s) => quote(s)?,
        })
    }

    /// Renders a value-position term (columns, thresholds, comparisons).
    fn value_term(&mut self, t: &Term) -> Result<String, TranslateError> {
        match t {
            Term::Const(c) => Self::const_lit(c),
            Term::Param(p) => Ok(self.param(p, ParamKind::Value)),
            Term::Var(v) => {
                if let Some(e) = self.var_expr.get(v) {
                    Ok(e.clone())
                } else if let Some(e) = self.node_expr.get(v) {
                    Ok(e.clone())
                } else {
                    Err(TranslateError::UnsafeVar(v.clone()))
                }
            }
        }
    }

    fn atom(&mut self, a: &Atom) -> Result<(), TranslateError> {
        let info = self.schema.pred(&a.pred).ok_or_else(|| {
            TranslateError::Schema(format!("unknown predicate {}", a.pred))
        })?;
        if a.args.len() != info.arity() {
            return Err(TranslateError::Schema(format!(
                "{} has arity {}, got {}",
                a.pred,
                info.arity(),
                a.args.len()
            )));
        }
        // Node expression for this atom.
        let self_expr = match &a.args[0] {
            Term::Param(p) => {
                let ph = self.param(p, ParamKind::NodePath);
                // A variable id gets its name test from the `//pred` (or
                // `$parent/pred`) binding source; a parameter id is pure
                // navigation, so the membership `pred(%{p}, …)` must be
                // asserted explicitly or the residual check fires on nodes
                // of the wrong element kind.
                self.conds.push(format!("exists({ph}/self::{})", a.pred));
                ph
            }
            Term::Var(v) => {
                let var = format!("${v}");
                let (source, deferred_parent) = self.atom_source(a)?;
                self.bindings.push((var.clone(), source));
                self.node_expr.insert(v.clone(), var.clone());
                if let Some(w) = deferred_parent {
                    // The parent is reached from the child (`$w in $v/..`)
                    // and must therefore be bound after it.
                    let wref = format!("${w}");
                    self.bindings.push((wref.clone(), format!("{var}/..")));
                    self.node_expr.insert(w, wref);
                }
                var
            }
            Term::Const(_) => {
                return Err(TranslateError::Unsupported(
                    "constant node identifiers cannot be translated (instantiate \
                     parameters instead)"
                        .to_string(),
                ))
            }
        };
        // Parent definition when the id is a parameter but the parent
        // variable is still needed.
        if let (Term::Param(_), Some(Term::Var(w))) = (&a.args[0], a.args.get(2)) {
            if self.used_elsewhere(w) && !self.node_expr.contains_key(w) {
                self.bindings
                    .push((format!("${w}"), format!("{self_expr}/..")));
                self.node_expr.insert(w.clone(), format!("${w}"));
            }
        }
        // Position column.
        match &a.args[1] {
            Term::Var(v) if !self.used_elsewhere(v) => {}
            Term::Var(v) => {
                self.var_expr.insert(
                    v.clone(),
                    format!("(count({self_expr}/preceding-sibling::*) + 1)"),
                );
            }
            rigid => {
                let rendered = self.value_term(rigid)?;
                self.conds.push(format!(
                    "(count({self_expr}/preceding-sibling::*) + 1) = {rendered}"
                ));
            }
        }
        // Data columns.
        for (k, col) in info.cols.iter().enumerate() {
            let term = &a.args[3 + k];
            let expr = format!("{self_expr}/{col}/text()");
            match term {
                Term::Var(v) => {
                    if let Some(existing) = self.var_expr.get(v).cloned() {
                        self.conds.push(format!("{existing} = {expr}"));
                    } else if !self.used_elsewhere(v) {
                        // Unused column: no condition needed.
                    } else {
                        self.var_expr.insert(v.clone(), expr);
                    }
                }
                rigid => {
                    let rendered = self.value_term(rigid)?;
                    self.conds.push(format!("{expr} = {rendered}"));
                }
            }
        }
        Ok(())
    }

    /// The binding source for an atom with a variable id; the second
    /// component names a parent variable that must be defined from the
    /// child (`$w in $id/..`) *after* the child's own binding.
    fn atom_source(&mut self, a: &Atom) -> Result<(String, Option<String>), TranslateError> {
        match a.args.get(2) {
            Some(Term::Var(w)) => {
                if let Some(parent) = self.node_expr.get(w) {
                    Ok((format!("{parent}/{}", a.pred), None))
                } else {
                    // Free parent: descendant query; the parent variable is
                    // defined from the child when anything else needs it.
                    let deferred = self.used_elsewhere(w).then(|| w.clone());
                    Ok((format!("//{}", a.pred), deferred))
                }
            }
            Some(Term::Param(p)) => {
                let ph = self.param(p, ParamKind::NodePath);
                Ok((format!("{ph}/{}", a.pred), None))
            }
            Some(Term::Const(_)) => Err(TranslateError::Unsupported(
                "constant parent identifiers cannot be translated".to_string(),
            )),
            None => Err(TranslateError::Schema(format!(
                "atom {a} lacks the parent column"
            ))),
        }
    }

    fn comparison(&mut self, x: &Term, op: CompOp, y: &Term) -> Result<(), TranslateError> {
        let is_node = |t: &Term, s: &Self| match t {
            Term::Var(v) => s.node_expr.contains_key(v),
            Term::Param(p) => s.node_params.contains(p),
            Term::Const(_) => false,
        };
        let x_node = is_node(x, self);
        let y_node = is_node(y, self);
        if x_node && y_node {
            // Node identity: XPath `=` compares string values, so use the
            // union-cardinality encoding.
            let ex = self.value_term(x)?;
            let ey = self.value_term(y)?;
            match op {
                CompOp::Eq => self.conds.push(format!("count({ex} | {ey}) = 1")),
                CompOp::Ne => self.conds.push(format!("count({ex} | {ey}) = 2")),
                other => {
                    return Err(TranslateError::Unsupported(format!(
                        "ordered comparison {other} between node identifiers"
                    )))
                }
            }
            return Ok(());
        }
        let ex = self.value_term(x)?;
        let ey = self.value_term(y)?;
        self.conds.push(format!("{ex} {} {ey}", op_str(op)));
        Ok(())
    }

    fn negated_atom(&mut self, a: &Atom) -> Result<(), TranslateError> {
        let info = self.schema.pred(&a.pred).ok_or_else(|| {
            TranslateError::Schema(format!("unknown predicate {}", a.pred))
        })?;
        // Column predicates.
        let mut preds = String::new();
        for (k, col) in info.cols.iter().enumerate() {
            match &a.args[3 + k] {
                Term::Var(v) if !self.used_elsewhere(v) => {} // ¬∃ over the column
                rigid_or_bound => {
                    let rendered = self.value_term(rigid_or_bound)?;
                    preds.push_str(&format!("[{col}/text() = {rendered}]"));
                }
            }
        }
        match &a.args[1] {
            Term::Var(v) if !self.used_elsewhere(v) => {}
            t => {
                let rendered = self.value_term(t)?;
                preds.push_str(&format!(
                    "[(count(preceding-sibling::*) + 1) = {rendered}]"
                ));
            }
        }
        let selector = match &a.args[0] {
            Term::Var(v) if self.node_expr.contains_key(v) => {
                format!("{}/self::{}{preds}", self.node_expr[v], a.pred)
            }
            Term::Param(p) => {
                let ph = self.param(p, ParamKind::NodePath);
                format!("{ph}/self::{}{preds}", a.pred)
            }
            _ => match a.args.get(2) {
                Some(Term::Var(w)) if self.node_expr.contains_key(w) => {
                    format!("{}/{}{preds}", self.node_expr[w], a.pred)
                }
                Some(Term::Param(p)) => {
                    let ph = self.param(p, ParamKind::NodePath);
                    format!("{ph}/{}{preds}", a.pred)
                }
                _ => format!("//{}{preds}", a.pred),
            },
        };
        self.conds.push(format!("not(exists({selector}))"));
        Ok(())
    }

    fn aggregate(
        &mut self,
        lit_idx: usize,
        agg: &Aggregate,
        op: CompOp,
        threshold: &Term,
    ) -> Result<(), TranslateError> {
        // Group generators: pattern variables shared with the rest of the
        // denial but not yet defined get a `for $g in distinct-values(…)`
        // binding over the first column in which they occur.
        let pattern_vars: HashSet<String> = agg
            .pattern
            .iter()
            .flat_map(Atom::vars)
            .collect();
        for v in &pattern_vars {
            if self.node_expr.contains_key(v) || self.var_expr.contains_key(v) {
                continue;
            }
            if !self.occurs_outside(v, lit_idx) {
                continue; // local to this aggregate
            }
            // Column occurrence?
            let generator = self.group_generator(agg, v)?;
            self.bindings
                .push((format!("${v}"), format!("distinct-values({generator})")));
            self.var_expr.insert(v.clone(), format!("${v}"));
        }

        let (path, func_call) = self.aggregate_path(agg)?;
        let var = format!("$agg{}", self.agg_counter);
        self.agg_counter += 1;
        self.lets.push((var.clone(), path));
        let k = self.value_term(threshold)?;
        self.conds
            .push(format!("{} {} {k}", func_call.replace("()", &format!("({var})")), op_str(op)));
        Ok(())
    }

    /// A generator expression for an unbound group variable: the path to
    /// the first pattern column mentioning it.
    fn group_generator(&mut self, agg: &Aggregate, v: &str) -> Result<String, TranslateError> {
        for a in &agg.pattern {
            let info = self.schema.pred(&a.pred).ok_or_else(|| {
                TranslateError::Schema(format!("unknown predicate {}", a.pred))
            })?;
            for (k, col) in info.cols.iter().enumerate() {
                if a.args[3 + k].var_name() == Some(v) {
                    return Ok(format!("//{}/{col}/text()", a.pred));
                }
            }
        }
        Err(TranslateError::UnsafeVar(format!(
            "group variable {v} does not occur in an aggregate column"
        )))
    }

    /// Builds the sequence path for an aggregate pattern plus the function
    /// call shape (`count()`, `count(distinct-values())`, `sum()`, …).
    fn aggregate_path(&mut self, agg: &Aggregate) -> Result<(String, String), TranslateError> {
        // Identify the counted atom/column.
        enum Target {
            Atom(usize),
            Column(usize, usize), // atom index, column index
        }
        let target = match (&agg.func, &agg.term) {
            (AggFunc::Cnt, _) | (AggFunc::CntD, None) => {
                if agg.pattern.len() != 1 {
                    // Counting join rows is not a path cardinality.
                    if agg.func == AggFunc::Cnt {
                        return Err(TranslateError::Unsupported(
                            "cnt over a multi-atom pattern".to_string(),
                        ));
                    }
                    return Err(TranslateError::Unsupported(
                        "cnt_d without a counted term over a multi-atom pattern".to_string(),
                    ));
                }
                Target::Atom(0)
            }
            (_, Some(Term::Var(v))) => {
                // Node id?
                if let Some(i) = agg
                    .pattern
                    .iter()
                    .position(|a| a.args.first().and_then(Term::var_name) == Some(v))
                {
                    Target::Atom(i)
                } else if let Some((i, k)) = agg.pattern.iter().enumerate().find_map(|(i, a)| {
                    a.args[3..]
                        .iter()
                        .position(|t| t.var_name() == Some(v))
                        .map(|k| (i, k))
                }) {
                    Target::Column(i, k)
                } else {
                    return Err(TranslateError::UnsafeVar(format!(
                        "aggregated term {v} does not occur in the pattern"
                    )));
                }
            }
            (_, t) => {
                return Err(TranslateError::Unsupported(format!(
                    "aggregated term {t:?} must be a pattern variable"
                )))
            }
        };
        let target_atom = match &target {
            Target::Atom(i) | Target::Column(i, _) => *i,
        };

        // Tree structure: child_of[i] = Some(j) when atom i's parent term
        // is atom j's id variable.
        let n = agg.pattern.len();
        let parent_of = |i: usize| -> Option<usize> {
            let p = agg.pattern[i].args.get(2)?.var_name()?;
            agg.pattern
                .iter()
                .position(|b| b.args.first().and_then(Term::var_name) == Some(p))
        };
        // Spine: target atom up to its root.
        let mut spine = vec![target_atom];
        let mut cur = target_atom;
        let mut guard = 0;
        while let Some(p) = parent_of(cur) {
            spine.push(p);
            cur = p;
            guard += 1;
            if guard > n {
                return Err(TranslateError::Unsupported(
                    "cyclic aggregate pattern".to_string(),
                ));
            }
        }
        spine.reverse();
        // Every non-spine atom must hang off a spine atom (possibly
        // transitively).
        let mut hangs: HashMap<usize, Vec<usize>> = HashMap::new();
        for i in 0..n {
            if spine.contains(&i) {
                continue;
            }
            match parent_of(i) {
                Some(p) => hangs.entry(p).or_default().push(i),
                None => {
                    return Err(TranslateError::Unsupported(
                        "disconnected aggregate pattern".to_string(),
                    ))
                }
            }
        }

        // Root anchor.
        let root = spine[0];
        let anchor = match agg.pattern[root].args.get(2) {
            Some(Term::Var(w)) => match self.node_expr.get(w) {
                Some(e) => e.clone(),
                None => "/".to_string(), // unconstrained: //pred below
            },
            Some(Term::Param(p)) => self.param(p, ParamKind::NodePath),
            _ => {
                return Err(TranslateError::Unsupported(
                    "aggregate root with constant parent".to_string(),
                ))
            }
        };

        let mut path = anchor.clone();
        for (si, &i) in spine.iter().enumerate() {
            let seg = self.pattern_segment(agg, i, &hangs, &mut HashSet::new())?;
            if si == 0 && path == "/" {
                path = format!("//{seg}");
            } else {
                path.push('/');
                path.push_str(&seg);
            }
        }
        let func_call = match (&agg.func, &target) {
            (AggFunc::Cnt | AggFunc::CntD, Target::Atom(_)) => "count()".to_string(),
            (AggFunc::CntD, Target::Column(i, k)) => {
                let col = &self.aggregate_column(agg, *i, *k)?;
                path.push_str(&format!("/{col}/text()"));
                "count(distinct-values())".to_string()
            }
            (AggFunc::Sum | AggFunc::Max | AggFunc::Min, Target::Column(i, k)) => {
                let col = &self.aggregate_column(agg, *i, *k)?;
                path.push_str(&format!("/{col}/text()"));
                match agg.func {
                    AggFunc::Sum => "sum()",
                    AggFunc::Max => "max()",
                    AggFunc::Min => "min()",
                    _ => unreachable!(),
                }
                .to_string()
            }
            (AggFunc::Sum | AggFunc::Max | AggFunc::Min, Target::Atom(_)) => {
                return Err(TranslateError::Unsupported(
                    "sum/max/min over node identifiers".to_string(),
                ))
            }
            (AggFunc::Cnt, Target::Column(..)) => "count()".to_string(),
        };
        Ok((path, func_call))
    }

    /// The column name an aggregate target `(i, k)` points at, or a typed
    /// error when the pattern names a relation the schema does not have
    /// (reachable through hand-written constraints over unknown elements).
    fn aggregate_column(
        &self,
        agg: &Aggregate,
        i: usize,
        k: usize,
    ) -> Result<String, TranslateError> {
        let pred = &agg.pattern[i].pred;
        let rel = self.schema.pred(pred).ok_or_else(|| {
            TranslateError::Unsupported(format!("aggregate over unknown relation {pred}"))
        })?;
        rel.cols.get(k).cloned().ok_or_else(|| {
            TranslateError::Unsupported(format!(
                "aggregate target column {k} out of range for relation {pred}"
            ))
        })
    }

    /// One path segment `pred[col-conds][nested child paths]`.
    fn pattern_segment(
        &mut self,
        agg: &Aggregate,
        i: usize,
        hangs: &HashMap<usize, Vec<usize>>,
        visiting: &mut HashSet<usize>,
    ) -> Result<String, TranslateError> {
        if !visiting.insert(i) {
            return Err(TranslateError::Unsupported(
                "cyclic aggregate pattern".to_string(),
            ));
        }
        let a = &agg.pattern[i];
        let info = self.schema.pred(&a.pred).ok_or_else(|| {
            TranslateError::Schema(format!("unknown predicate {}", a.pred))
        })?;
        if a.args.len() != info.arity() {
            return Err(TranslateError::Schema(format!(
                "{} has arity {}, got {}",
                a.pred,
                info.arity(),
                a.args.len()
            )));
        }
        let mut seg = a.pred.clone();
        for (k, col) in info.cols.iter().enumerate() {
            match &a.args[3 + k] {
                Term::Var(v) => {
                    if let Some(e) = self.var_expr.get(v).cloned() {
                        seg.push_str(&format!("[{col}/text() = {e}]"));
                    } else if let Some(e) = self.node_expr.get(v).cloned() {
                        seg.push_str(&format!("[{col}/text() = {e}]"));
                    }
                    // Otherwise local and unconstrained.
                }
                rigid => {
                    let rendered = self.value_term(rigid)?;
                    seg.push_str(&format!("[{col}/text() = {rendered}]"));
                }
            }
        }
        match &a.args[1] {
            Term::Var(_) => {}
            t => {
                let rendered = self.value_term(t)?;
                seg.push_str(&format!(
                    "[(count(preceding-sibling::*) + 1) = {rendered}]"
                ));
            }
        }
        if let Some(children) = hangs.get(&i) {
            for &c in children {
                let child_seg = self.pattern_segment(agg, c, hangs, visiting)?;
                seg.push_str(&format!("[{child_seg}]"));
            }
        }
        Ok(seg)
    }

    /// The paper's single-use inlining: "if a variable is used only once
    /// outside its definition, its occurrence is replaced with its
    /// definition". A quantifier `some $x in S satisfies P($x)` with a
    /// single positive use of `$x` collapses into `P(S)` — XPath's
    /// existential comparison semantics carries the quantification. This
    /// turns the six-binding conflict query into the paper's two-binding
    /// form and is the difference between O(n²) and O(n⁶) full checks.
    ///
    /// Inlining is skipped when the single occurrence sits inside `not(…)`
    /// (negation flips the quantifier), inside `count(…)` (cardinality is
    /// not existential), or in a `let` source (aggregate grouping is per
    /// binding).
    fn inline_single_use(&mut self) {
        // Token-boundary occurrence count of `var` in `text`.
        fn count_occ(text: &str, var: &str) -> usize {
            let mut n = 0;
            let mut start = 0;
            while let Some(pos) = text[start..].find(var) {
                let end = start + pos + var.len();
                let boundary = text[end..]
                    .chars()
                    .next()
                    .is_none_or(|c| !(c.is_alphanumeric() || c == '_'));
                if boundary {
                    n += 1;
                }
                start = start + pos + 1;
            }
            n
        }
        fn replace_one(text: &str, var: &str, with: &str) -> String {
            let mut start = 0;
            while let Some(pos) = text[start..].find(var) {
                let at = start + pos;
                let end = at + var.len();
                let boundary = text[end..]
                    .chars()
                    .next()
                    .is_none_or(|c| !(c.is_alphanumeric() || c == '_'));
                if boundary {
                    return format!("{}{}{}", &text[..at], with, &text[end..]);
                }
                start = at + 1;
            }
            text.to_string()
        }
        'outer: loop {
            for i in 0..self.bindings.len() {
                let (var, src) = self.bindings[i].clone();
                let mut uses = 0usize;
                let mut site: Option<(usize, bool)> = None; // (index, is_cond)
                for (j, (_, s)) in self.bindings.iter().enumerate() {
                    if j == i {
                        continue;
                    }
                    let c = count_occ(s, &var);
                    uses += c;
                    if c == 1 && site.is_none() {
                        site = Some((j, false));
                    }
                }
                let mut in_let = false;
                for (_, s) in &self.lets {
                    let c = count_occ(s, &var);
                    uses += c;
                    if c > 0 {
                        in_let = true;
                    }
                }
                let mut cond_site = None;
                for (j, cnd) in self.conds.iter().enumerate() {
                    let c = count_occ(cnd, &var);
                    uses += c;
                    if c == 1 && cond_site.is_none() {
                        cond_site = Some(j);
                    }
                }
                if uses != 1 || in_let {
                    continue;
                }
                match (site, cond_site) {
                    (Some((j, _)), None) => {
                        self.bindings[j].1 = replace_one(&self.bindings[j].1, &var, &src);
                        self.bindings.remove(i);
                        continue 'outer;
                    }
                    (None, Some(j)) => {
                        let cnd = &self.conds[j];
                        if cnd.contains("not(") || cnd.contains("count(") {
                            continue;
                        }
                        self.conds[j] = replace_one(cnd, &var, &src);
                        self.bindings.remove(i);
                        continue 'outer;
                    }
                    _ => {}
                }
            }
            break;
        }
    }

    fn assemble(mut self, has_aggs: bool) -> String {
        self.inline_single_use();
        let conds = if self.conds.is_empty() {
            "true()".to_string()
        } else {
            self.conds.join(" and ")
        };
        if has_aggs {
            let mut q = String::from("exists(");
            if !self.bindings.is_empty() {
                q.push_str("for ");
                q.push_str(
                    &self
                        .bindings
                        .iter()
                        .map(|(v, s)| format!("{v} in {s}"))
                        .collect::<Vec<_>>()
                        .join(", "),
                );
                q.push(' ');
            }
            for (v, e) in &self.lets {
                q.push_str(&format!("let {v} := {e} "));
            }
            q.push_str(&format!("where {conds} return <idle/>)"));
            q
        } else if self.bindings.is_empty() {
            conds
        } else {
            format!(
                "some {} satisfies {conds}",
                self.bindings
                    .iter()
                    .map(|(v, s)| format!("{v} in {s}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        }
    }
}

fn op_str(op: CompOp) -> &'static str {
    match op {
        CompOp::Eq => "=",
        CompOp::Ne => "!=",
        CompOp::Lt => "<",
        CompOp::Le => "<=",
        CompOp::Gt => ">",
        CompOp::Ge => ">=",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xic_datalog::{parse_denial, parse_denials};
    use xic_mapping::schema::paper_dtd;

    fn schema() -> RelSchema {
        RelSchema::from_dtd(&paper_dtd()).unwrap()
    }

    fn tr(src: &str) -> QueryTemplate {
        translate_denial(&parse_denial(src).unwrap(), &schema())
            .unwrap_or_else(|e| panic!("{src}: {e}"))
    }

    #[test]
    fn full_conflict_constraint_shape() {
        // The paper's final optimized translation of the second denial.
        let t = tr(
            "<- rev(Ir,_,_,R) & sub(Is,_,Ir,_) & auts(_,_,Is,A) \
             & aut(_,_,Ip,R2) & aut(_,_,Ip,A2) & R2 = R & A2 = A",
        );
        let q = &t.text;
        // Single-use inlining leaves the paper's two-quantifier form:
        //   some $Ir in //rev, $H in //aut
        //   satisfies $H/name/text() = $Ir/name/text()
        //   and $H/../aut/name/text() = $Ir/sub/auts/name/text()
        assert!(q.starts_with("some $Ir in //rev"), "{q}");
        assert_eq!(q.matches(" in ").count(), 2, "exactly two quantifiers: {q}");
        assert!(q.contains("$Ir/sub/auts/name/text()"), "{q}");
        assert!(q.contains("/../aut/name/text()"), "{q}");
        assert!(t.params.is_empty());
        // Parseable by the XQuery engine.
        xic_xquery::parse_query(q).unwrap_or_else(|e| panic!("{q}: {e}"));
    }

    #[test]
    fn simplified_denials_with_parameters() {
        // Simp output of Example 6: `<- rev($ir,_,_,$n)` and the coauthor
        // variant.
        let t1 = tr("<- rev($ir,_,_,$n)");
        // The membership guard keeps the residual from firing when the
        // bound node is not actually a `rev` element.
        assert_eq!(
            t1.text,
            "exists(%{ir}/self::rev) and %{ir}/name/text() = %{n}"
        );
        assert_eq!(t1.params["ir"], ParamKind::NodePath);
        assert_eq!(t1.params["n"], ParamKind::Value);

        let t2 = tr("<- rev($ir,_,_,R) & aut(_,_,Ip,$n) & aut(_,_,Ip,R)");
        let q = &t2.text;
        // Mirrors the paper: some $D in //aut satisfies $D/name/text()=%n
        // and $D/../aut/name/text()=%ir-path/name/text().
        assert!(q.contains("//aut"), "{q}");
        assert!(q.contains("%{n}"), "{q}");
        assert!(q.contains("%{ir}/name/text()"), "{q}");
        assert!(q.contains("/../aut") || q.contains("$Ip/aut"), "{q}");
    }

    #[test]
    fn aggregate_flwor_shape() {
        // Example 7 and the paper's printed translation:
        // exists(for $lr in //rev let $D := $lr/sub where count($D) > 4
        //        return <idle/>)
        let t = tr("<- rev(Ir,_,_,_) & cnt(; sub(_,_,Ir,_)) > 4");
        let q = &t.text;
        assert!(q.starts_with("exists(for $Ir in //rev let $agg0 := $Ir/sub"), "{q}");
        assert!(q.contains("count($agg0) > 4"), "{q}");
        assert!(q.ends_with("return <idle/>)"), "{q}");
        xic_xquery::parse_query(q).unwrap();
    }

    #[test]
    fn simplified_aggregate_with_param() {
        let t = tr("<- rev($ir,_,_,_) & cntd(; sub(_,_,$ir,_)) > 3");
        let q = &t.text;
        assert!(q.contains("let $agg0 := %{ir}/sub"), "{q}");
        assert!(q.contains("count($agg0) > 3"), "{q}");
    }

    #[test]
    fn example_2_group_enumeration() {
        let ds = parse_denials(
            "<- cntd(It; track(It,_,_,_), rev(_,_,It,R)) >= 3 \
             & cntd(Is; rev(Ir,_,_,R), sub(Is,_,Ir,_)) > 10",
        )
        .unwrap();
        let t = translate_denial(&ds[0], &schema()).unwrap();
        let q = &t.text;
        assert!(q.contains("for $R in distinct-values(//rev/name/text())"), "{q}");
        assert!(q.contains("//track[rev/name/text() = $R]") || q.contains("rev[name"), "{q}");
        assert!(q.contains("count($agg0) >= 3"), "{q}");
        assert!(q.contains("count($agg1) > 10"), "{q}");
        xic_xquery::parse_query(q).unwrap_or_else(|e| panic!("{q}: {e}"));
    }

    #[test]
    fn position_conditions() {
        let t = tr("<- track(It, 2, _, _) & rev(_, 6, It, \"Goofy\")");
        let q = &t.text;
        assert!(
            q.contains("(count($It/preceding-sibling::*) + 1) = 2"),
            "{q}"
        );
        xic_xquery::parse_query(q).unwrap();
    }

    #[test]
    fn negated_atom() {
        let t = tr("<- rev(Ir,_,_,R) & not rev(_,_,_,R)");
        // Degenerate but exercises the not(exists(…)) shape.
        assert!(t.text.contains("not(exists(//rev[name/text() = "), "{}", t.text);
        xic_xquery::parse_query(&t.text).unwrap();
    }

    #[test]
    fn node_identity_comparison() {
        let t = tr("<- rev(Ir,_,_,_) & rev(Jr,_,_,_) & Ir != Jr");
        assert!(t.text.contains("count($Ir | $Jr) = 2"), "{}", t.text);
        xic_xquery::parse_query(&t.text).unwrap();
    }

    #[test]
    fn empty_denial_is_true() {
        let t = translate_denial(&Denial::always_violated(), &schema()).unwrap();
        assert_eq!(t.text, "true()");
    }

    #[test]
    fn unknown_predicate_rejected() {
        let e = translate_denial(&parse_denial("<- zzz(X)").unwrap(), &schema()).unwrap_err();
        assert!(matches!(e, TranslateError::Schema(_)));
    }

    #[test]
    fn unsafe_variable_rejected() {
        let e =
            translate_denial(&parse_denial("<- rev(Ir,_,_,R) & R = Z").unwrap(), &schema())
                .unwrap_err();
        assert!(matches!(e, TranslateError::UnsafeVar(_)));
    }

    #[test]
    fn inlining_keeps_multi_use_variables() {
        // R is used in two conditions: $Ir must stay quantified.
        let t = tr("<- rev(Ir,_,_,R) & R != \"x\" & R != \"y\"");
        assert!(t.text.contains("some $Ir in //rev"), "{}", t.text);
    }

    #[test]
    fn inlining_skips_negation_contexts() {
        // $Jr's only use is inside not(exists(…)): the quantifier must
        // survive (inlining into a negation flips the quantifier).
        let t = tr("<- rev(Ir,_,_,R) & not rev(_,_,_,R)");
        assert!(
            t.text.contains("not(exists("),
            "{}", t.text
        );
        // And the negated condition still references a defined expression.
        xic_xquery::parse_query(&t.text).unwrap();
    }

    #[test]
    fn inlining_skips_position_contexts() {
        // The position condition contains count(...): no inlining into it.
        let t = tr("<- track(It, 2, _, _)");
        assert!(t.text.contains("some $It in //track"), "{}", t.text);
        assert!(t.text.contains("count($It/preceding-sibling::*)"), "{}", t.text);
    }

    #[test]
    fn pure_existence_binding_is_kept() {
        let t = tr("<- track(It, _, _, _)");
        assert_eq!(t.text, "some $It in //track satisfies true()");
        xic_xquery::parse_query(&t.text).unwrap();
    }

    #[test]
    fn chained_inlining_collapses_paths() {
        // rev -> sub -> auts chain with one condition at the end collapses
        // completely: XPath's existential comparison carries all three
        // quantifiers.
        let t = tr("<- rev(Ir,_,_,_) & sub(Is,_,Ir,_) & auts(Ia,_,Is,\"x\")");
        assert_eq!(t.text, "//rev/sub/auts/name/text() = \"x\"");
    }

    #[test]
    fn sum_aggregate() {
        // Synthetic: sum over a value column (title used as a number).
        let t = tr("<- rev(Ir,_,_,_) & sum(T; sub(_,_,Ir,T)) > 100");
        assert!(t.text.contains("sum($agg0) > 100"), "{}", t.text);
        assert!(t.text.contains("$Ir/sub/title/text()"), "{}", t.text);
        xic_xquery::parse_query(&t.text).unwrap();
    }
}

//! Cross-engine agreement: for random corpora conforming to the paper's
//! DTDs, a Datalog denial evaluated over the shredded relational image
//! must agree with its XQuery translation evaluated over the XML document.
//! This validates the whole Section 4 + Section 6 round trip.

use proptest::prelude::*;
use xic_datalog::{denial_holds, parse_denial, Denial};
use xic_mapping::schema::paper_dtd;
use xic_mapping::{map_denials, shred, RelSchema};
use xic_translate::translate_denial;
use xic_xml::parse_document;
use xic_xpathlog::parse_denial as parse_xpl;
use xic_xquery::{eval_query_bool, parse_query};

const NAMES: &[&str] = &["ann", "bob", "cat", "dan", "eve"];

#[derive(Debug, Clone)]
struct Corpus {
    pubs: Vec<Vec<usize>>,             // each pub: author name indexes
    tracks: Vec<Vec<(usize, Vec<Vec<usize>>)>>, // track -> revs (name, subs: each sub = author idxs)
}

impl Corpus {
    fn to_xml(&self) -> String {
        let mut s = String::from("<collection><dblp>");
        for (i, authors) in self.pubs.iter().enumerate() {
            s.push_str(&format!("<pub><title>P{i}</title>"));
            for &a in authors {
                s.push_str(&format!("<aut><name>{}</name></aut>", NAMES[a]));
            }
            s.push_str("</pub>");
        }
        s.push_str("</dblp><review>");
        for (ti, revs) in self.tracks.iter().enumerate() {
            s.push_str(&format!("<track><name>T{ti}</name>"));
            for (ni, subs) in revs {
                s.push_str(&format!("<rev><name>{}</name>", NAMES[*ni]));
                for (si, auths) in subs.iter().enumerate() {
                    s.push_str(&format!("<sub><title>S{ti}{si}</title>"));
                    for &a in auths {
                        s.push_str(&format!("<auts><name>{}</name></auts>", NAMES[a]));
                    }
                    s.push_str("</sub>");
                }
                s.push_str("</rev>");
            }
            s.push_str("</track>");
        }
        s.push_str("</review></collection>");
        s
    }
}

fn corpus() -> impl Strategy<Value = Corpus> {
    let authors = prop::collection::vec(0..NAMES.len(), 1..3);
    let pubs = prop::collection::vec(authors.clone(), 0..3);
    let sub = prop::collection::vec(0..NAMES.len(), 1..3);
    let subs = prop::collection::vec(sub, 1..4);
    let rev = (0..NAMES.len(), subs);
    let revs = prop::collection::vec(rev, 1..3);
    let tracks = prop::collection::vec(revs, 1..3);
    (pubs, tracks).prop_map(|(pubs, tracks)| Corpus { pubs, tracks })
}

/// The paper's constraints, as Datalog denials over the schema.
fn paper_constraints(schema: &RelSchema) -> Vec<Denial> {
    let dtd = paper_dtd();
    let l1 = parse_xpl(
        "<- //rev[name/text() -> R]/sub/auts/name/text() -> A \
         & (A = R | //pub[aut/name/text() -> A & aut/name/text() -> R])",
    )
    .unwrap();
    let l2 = parse_xpl(
        "<- cntd{[R]; //track[rev/name/text() -> R]} >= 2 \
         & cntd{[R]; //rev[name/text() -> R]/sub} > 3",
    )
    .unwrap();
    let mut out = map_denials(&[l1, l2], schema, &dtd).unwrap();
    out.push(parse_denial("<- rev(Ir,_,_,_) & cntd(; sub(_,_,Ir,_)) > 2").unwrap());
    out.push(
        parse_denial("<- pub(Ip,_,_,T) & pub(Jp,_,_,T) & Ip != Jp").unwrap(),
    );
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 120, ..ProptestConfig::default() })]

    #[test]
    fn datalog_and_xquery_agree(c in corpus()) {
        let dtd = paper_dtd();
        let schema = RelSchema::from_dtd(&dtd).unwrap();
        let (doc, _) = parse_document(&c.to_xml()).unwrap();
        dtd.validate(&doc).unwrap();
        let db = shred(&doc, &schema);
        for denial in paper_constraints(&schema) {
            let ground = denial_holds(&db, &denial).unwrap();
            let template = translate_denial(&denial, &schema).unwrap();
            prop_assert!(template.is_closed(), "full checks must have no params");
            let q = parse_query(&template.text)
                .unwrap_or_else(|e| panic!("{}: {e}", template.text));
            let violated = eval_query_bool(&q, &doc)
                .unwrap_or_else(|e| panic!("{}: {e}", template.text));
            prop_assert_eq!(
                ground,
                !violated,
                "disagreement on {}\nquery: {}\ncorpus: {}",
                denial,
                template.text,
                c.to_xml()
            );
        }
    }
}

#[test]
fn agreement_on_known_conflict() {
    // Ann reviews a submission authored by her coauthor Bob.
    let xml = "<collection><dblp>\
        <pub><title>P</title><aut><name>ann</name></aut><aut><name>bob</name></aut></pub>\
        </dblp><review><track><name>T</name>\
        <rev><name>ann</name><sub><title>S</title><auts><name>bob</name></auts></sub></rev>\
        </track></review></collection>";
    let dtd = paper_dtd();
    let schema = RelSchema::from_dtd(&dtd).unwrap();
    let (doc, _) = parse_document(xml).unwrap();
    let db = shred(&doc, &schema);
    let denials = paper_constraints(&schema);
    // The co-authorship denial (second disjunct of Example 1) is violated.
    let coauthor = &denials[1];
    assert!(!denial_holds(&db, coauthor).unwrap(), "{coauthor}");
    let t = translate_denial(coauthor, &schema).unwrap();
    let q = parse_query(&t.text).unwrap();
    assert!(eval_query_bool(&q, &doc).unwrap(), "{}", t.text);
}

//! K-shard multi-tenant traffic for the sharded store.
//!
//! A `xicheck::ShardSet` hosts `K` independent documents behind one
//! compiled constraint set. Real multi-tenant traffic against such a
//! store is *skewed*: a few hot tenants absorb most of the writes while
//! the long tail idles. This module generates exactly that shape — one
//! DBLP-style corpus per shard (each sized differently so cross-shard
//! contamination is byte-observable) and a Zipf-skewed event stream that
//! routes single-statement updates to shards with shard 0 hottest.
//!
//! Everything is deterministic under the seed; the bench harness and the
//! shard difftest both replay identical streams from it.

use crate::{generate, random_batch, skewed, Workload, WorkloadConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Sizing knobs for a K-shard traffic run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardTrafficConfig {
    /// RNG seed; corpora and the event stream are deterministic in it.
    pub seed: u64,
    /// Number of shards (tenant documents).
    pub shards: usize,
    /// Events (routed statements) to draw per [`shard_events`] call.
    pub events: usize,
}

impl ShardTrafficConfig {
    /// A configuration for `shards` tenants with a default event budget
    /// proportional to the shard count.
    pub fn with_shards(shards: usize, seed: u64) -> ShardTrafficConfig {
        ShardTrafficConfig {
            seed,
            shards: shards.max(1),
            events: 32 * shards.max(1),
        }
    }
}

/// Per-shard corpora for one traffic run. All shards share the checker's
/// schema and constraint set (that is the `xicheck::ShardSet` premise);
/// their documents differ in size and content.
#[derive(Debug, Clone)]
pub struct ShardCorpora {
    /// One generated workload per shard, each with a distinct sub-seed
    /// and sizing so no two shards start byte-identical.
    pub workloads: Vec<Workload>,
    /// The configuration that produced them.
    pub config: ShardTrafficConfig,
}

impl ShardCorpora {
    /// The serialized base documents, shard order, as `ShardSet::create`
    /// consumes them.
    pub fn bases(&self) -> Vec<&str> {
        self.workloads.iter().map(|w| w.xml.as_str()).collect()
    }
}

/// One routed event: a single-operation XUpdate statement addressed to a
/// shard.
#[derive(Debug, Clone)]
pub struct ShardEvent {
    /// Target shard id.
    pub shard: usize,
    /// The statement text.
    pub stmt: String,
}

/// Generates one corpus per shard. Shard `i` gets sub-seed `seed + i`
/// and sizing that grows with `i mod 4`, so every shard's document is
/// distinct from its siblings' — a misrouted statement cannot land
/// unnoticed.
pub fn generate_corpora(config: ShardTrafficConfig) -> ShardCorpora {
    let k = config.shards.max(1);
    let mut workloads = Vec::with_capacity(k);
    for i in 0..k {
        let step = i % 4;
        workloads.push(generate(WorkloadConfig {
            seed: config.seed.wrapping_add(i as u64),
            pubs: 4 + 2 * step,
            tracks: 1 + step / 2,
            revs_per_track: 1 + step % 2,
            subs_per_rev: 2,
            name_pool: 12,
        }));
    }
    ShardCorpora {
        workloads,
        config,
    }
}

/// Draws `config.events` routed events with a Zipf-like shard skew:
/// shard 0 is the hottest tenant, the tail is cold. Each event is a
/// single-operation statement drawn against *its* shard's corpus, so
/// replaying the stream per shard reproduces a valid update history.
pub fn shard_events(corpora: &ShardCorpora) -> Vec<ShardEvent> {
    let config = corpora.config;
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5a5a_5a5a_5a5a_5a5a);
    let k = corpora.workloads.len().max(1);
    (0..config.events)
        .map(|_| {
            let shard = skewed(&mut rng, k);
            let stmt = random_batch(&mut rng, &corpora.workloads[shard], 1);
            ShardEvent { shard, stmt }
        })
        .collect()
}

/// Splits an event stream into per-shard statement streams, preserving
/// arrival order within each shard — the order a single-writer shard
/// commits them in.
pub fn per_shard_streams(events: &[ShardEvent], shards: usize) -> Vec<Vec<&str>> {
    let mut streams: Vec<Vec<&str>> = vec![Vec::new(); shards];
    for e in events {
        if let Some(s) = streams.get_mut(e.shard) {
            s.push(&e.stmt);
        }
    }
    streams
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpora_are_deterministic_and_distinct() {
        let cfg = ShardTrafficConfig::with_shards(6, 11);
        let a = generate_corpora(cfg);
        let b = generate_corpora(cfg);
        assert_eq!(a.bases(), b.bases());
        let bases = a.bases();
        for i in 0..bases.len() {
            for j in i + 1..bases.len() {
                assert_ne!(bases[i], bases[j], "shards {i} and {j} start identical");
            }
        }
    }

    #[test]
    fn events_are_skewed_toward_low_shards_and_parse() {
        let corpora = generate_corpora(ShardTrafficConfig {
            seed: 3,
            shards: 8,
            events: 400,
        });
        let events = shard_events(&corpora);
        assert_eq!(events.len(), 400);
        let mut counts = vec![0usize; 8];
        for e in &events {
            counts[e.shard] += 1;
            xic_xml::XUpdateDoc::parse(&e.stmt)
                .unwrap_or_else(|err| panic!("event statement must parse: {err}"));
        }
        let hot: usize = counts[..2].iter().sum();
        let cold: usize = counts[6..].iter().sum();
        assert!(
            hot > cold,
            "hot shards drew {hot} events, cold tail drew {cold}"
        );
        assert!(counts.iter().all(|&c| c > 0), "every shard sees traffic: {counts:?}");
    }

    #[test]
    fn streams_preserve_per_shard_order() {
        let corpora = generate_corpora(ShardTrafficConfig {
            seed: 7,
            shards: 3,
            events: 60,
        });
        let events = shard_events(&corpora);
        let streams = per_shard_streams(&events, 3);
        assert_eq!(streams.iter().map(|s| s.len()).sum::<usize>(), 60);
        let mut replayed: Vec<Vec<&str>> = vec![Vec::new(); 3];
        for e in &events {
            replayed[e.shard].push(e.stmt.as_str());
        }
        assert_eq!(streams, replayed);
    }
}

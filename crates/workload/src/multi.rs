//! Multi-tenant many-constraint workload for the independence analysis.
//!
//! The DBLP-style workload in the crate root has *two* constraints over
//! one shared tree — every update plausibly touches both. The
//! independence analysis (PR 8) becomes interesting when a schema hosts
//! **many** constraints over **disjoint** regions: then any single
//! update can affect only the handful of constraints whose read
//! footprint overlaps its write footprint, and the rest are provably
//! skippable.
//!
//! This module generates exactly that shape: a `db` root with `K`
//! *tenant regions*, each with its own element vocabulary
//! (`region{i}`, `item{i}`, `key{i}`, `val{i}`) so the relational image
//! puts every tenant in its own predicates. Each region carries two
//! constraints (a key-uniqueness join and a capacity aggregate), and the
//! Zipf-skewed statement mix draws updates region-locally — so a stream
//! of updates against `2·regions` constraints should retain ~2 live
//! constraints per statement and skip the rest.
//!
//! Everything is deterministic under the seed.

use crate::skewed;
use rand::rngs::StdRng;
use rand::Rng;
use std::fmt::Write as _;

/// Sizing knobs for the multi-tenant corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiConfig {
    /// RNG seed for the statement mix (the corpus itself is deterministic
    /// in the other fields alone).
    pub seed: u64,
    /// Number of tenant regions. The workload carries `2 * regions`
    /// constraints (one join + one aggregate per region).
    pub regions: usize,
    /// Items initially populated per region. Must stay below
    /// [`MultiConfig::cap`] for the generated corpus to be consistent.
    pub items_per_region: usize,
    /// Per-region item capacity enforced by the aggregate constraint.
    pub cap: usize,
}

impl MultiConfig {
    /// A configuration with `regions` tenants and defaults that keep the
    /// initial corpus consistent and leave appending headroom.
    pub fn with_regions(regions: usize, seed: u64) -> MultiConfig {
        MultiConfig {
            seed,
            regions: regions.max(1),
            items_per_region: 4,
            cap: 64,
        }
    }

    /// Total constraints the workload carries (two per region).
    pub fn total_constraints(&self) -> usize {
        2 * self.regions
    }
}

/// A generated multi-tenant workload: corpus, schema, and constraints.
#[derive(Debug, Clone)]
pub struct MultiWorkload {
    /// The serialized `<db>` document.
    pub xml: String,
    /// The DTD text declaring every region's vocabulary.
    pub dtd: String,
    /// XPathLog constraints, two per region in region order:
    /// key-uniqueness for region `i`, then item capacity for region `i`.
    pub constraints: Vec<String>,
    /// The configuration that produced it.
    pub config: MultiConfig,
}

impl MultiWorkload {
    /// All constraints as one `.`-separated XPathLog program, the form
    /// `Checker::new` consumes.
    pub fn constraints_text(&self) -> String {
        self.constraints.join(" . ")
    }
}

/// Generates a multi-tenant workload from the configuration.
pub fn generate_multi(config: MultiConfig) -> MultiWorkload {
    let k = config.regions.max(1);
    let mut dtd = String::from("<!ELEMENT db (");
    for i in 1..=k {
        if i > 1 {
            dtd.push_str(", ");
        }
        let _ = write!(dtd, "region{i}*");
    }
    dtd.push_str(")>\n");
    for i in 1..=k {
        let _ = write!(
            dtd,
            "<!ELEMENT region{i} (item{i})*>\n<!ELEMENT item{i} (key{i}, val{i})>\n\
             <!ELEMENT key{i} (#PCDATA)>\n<!ELEMENT val{i} (#PCDATA)>\n"
        );
    }

    let mut xml = String::with_capacity(k * config.items_per_region * 64 + 16);
    xml.push_str("<db>");
    for i in 1..=k {
        let _ = write!(xml, "<region{i}>");
        for j in 0..config.items_per_region {
            let _ = write!(
                xml,
                "<item{i}><key{i}>k-{i}-{j}</key{i}><val{i}>v-{i}-{j}</val{i}></item{i}>"
            );
        }
        let _ = write!(xml, "</region{i}>");
    }
    xml.push_str("</db>");

    let mut constraints = Vec::with_capacity(2 * k);
    for i in 1..=k {
        // No two items in region i may share a key (the quickstart's
        // duplicate-name join, restated per tenant).
        constraints.push(format!(
            "<- //item{i}[key{i}/text() -> N] -> P \
             & //item{i}[key{i}/text() -> M] -> Q & N = M & not P = Q"
        ));
        // Region i may hold at most `cap` items (Example 7's review-load
        // aggregate, restated per tenant).
        constraints.push(format!(
            "<- //region{i} -> R & cnt{{R/item{i}}} > {}",
            config.cap
        ));
    }

    MultiWorkload {
        xml,
        dtd,
        constraints,
        config,
    }
}

/// A fresh item fragment for region `i` whose key cannot collide with
/// the generated corpus or any other serial.
fn fresh_item(i: usize, serial: usize) -> String {
    format!(
        "<item{i}><key{i}>fresh-{i}-{serial}</key{i}><val{i}>v-{serial}</val{i}></item{i}>"
    )
}

/// A *legal* append for region `i` (0-based): a new item with a unique
/// key, fine for both of the region's constraints while under capacity.
pub fn legal_multi_insert(region: usize, serial: usize) -> String {
    let i = region + 1;
    format!(
        r#"<xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
  <xupdate:append select="/db/region{i}">{}</xupdate:append>
</xupdate:modifications>"#,
        fresh_item(i, serial)
    )
}

/// An *illegal* append for region `i` (0-based): duplicates the key of
/// the region's first generated item, violating its uniqueness join.
pub fn illegal_multi_insert(region: usize) -> String {
    let i = region + 1;
    format!(
        r#"<xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
  <xupdate:append select="/db/region{i}"><item{i}><key{i}>k-{i}-0</key{i}><val{i}>dup</val{i}></item{i}></xupdate:append>
</xupdate:modifications>"#
    )
}

/// Draws one random single-op statement against a Zipf-skewed region:
/// low-numbered regions are hot, the tail is cold, mirroring real
/// multi-tenant traffic. The mix covers all six `XUpdateOp` kinds and
/// every operation is *nesting-conformance-preserving*, so a checker's
/// DTD-edge trust survives the stream and the write footprints stay
/// precise (see `xicheck::IndependenceIndex`).
pub fn random_multi_statement(rng: &mut StdRng, w: &MultiWorkload) -> String {
    let i = skewed(rng, w.config.regions) + 1;
    let j = rng.gen_range(0..w.config.items_per_region.max(1)) + 1;
    let region_sel = format!("/db/region{i}");
    let item_sel = format!("{region_sel}/item{i}[{j}]");
    let serial = rng.gen_range(0..1_000_000);
    let item = fresh_item(i, serial);
    let op = match rng.gen_range(0..6) {
        0 => format!("<xupdate:append select=\"{region_sel}\">{item}</xupdate:append>"),
        1 => format!("<xupdate:insert-before select=\"{item_sel}\">{item}</xupdate:insert-before>"),
        2 => format!("<xupdate:insert-after select=\"{item_sel}\">{item}</xupdate:insert-after>"),
        3 => format!("<xupdate:remove select=\"{item_sel}\"/>"),
        4 => {
            // Rewrite a key (can create a duplicate in place) or a value
            // (relationally visible but never violating).
            let (sel, text) = if rng.gen_bool(0.5) {
                let dup = rng.gen_range(0..w.config.items_per_region.max(1));
                (format!("{item_sel}/key{i}"), format!("k-{i}-{dup}"))
            } else {
                (format!("{item_sel}/val{i}"), format!("v-{serial}"))
            };
            format!("<xupdate:update select=\"{sel}\">{text}</xupdate:update>")
        }
        _ => {
            // `val → key` is licensed under item{i} (both are declared
            // children), so the rename preserves nesting conformance —
            // and may create a duplicate key the join constraint must
            // catch.
            format!("<xupdate:rename select=\"{item_sel}/val{i}\">key{i}</xupdate:rename>")
        }
    };
    format!(
        "<xupdate:modifications version=\"1.0\" \
         xmlns:xupdate=\"http://www.xmldb.org/xupdate\">{op}</xupdate:modifications>"
    )
}

/// A statement that *breaks* DTD nesting conformance: it renames an item
/// of one region into another region's vocabulary, which no parent
/// licenses. Committing it forces a sound checker to drop its DTD-edge
/// trust and fall back to conservative (check-everything) footprints —
/// differential tests use this to exercise the fallback path.
pub fn hostile_multi_statement(rng: &mut StdRng, w: &MultiWorkload) -> String {
    let i = skewed(rng, w.config.regions) + 1;
    let other = (i % w.config.regions.max(1)) + 1;
    let j = rng.gen_range(0..w.config.items_per_region.max(1)) + 1;
    format!(
        "<xupdate:modifications version=\"1.0\" \
         xmlns:xupdate=\"http://www.xmldb.org/xupdate\">\
         <xupdate:rename select=\"/db/region{i}/item{i}[{j}]\">item{other}</xupdate:rename>\
         </xupdate:modifications>"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn corpus_validates_and_is_deterministic() {
        let cfg = MultiConfig::with_regions(8, 42);
        let a = generate_multi(cfg);
        let b = generate_multi(cfg);
        assert_eq!(a.xml, b.xml);
        assert_eq!(a.constraints, b.constraints);
        assert_eq!(a.constraints.len(), cfg.total_constraints());
        let dtd = xic_xml::Dtd::parse(&a.dtd).unwrap();
        let (doc, _) = xic_xml::parse_document(&a.xml).unwrap();
        dtd.validate(&doc).unwrap();
    }

    #[test]
    fn statements_parse_and_cover_all_op_kinds() {
        use xic_xml::XUpdateOp;
        let w = generate_multi(MultiConfig::with_regions(16, 3));
        let mut rng = StdRng::seed_from_u64(17);
        let mut seen = [false; 6];
        for _ in 0..200 {
            let text = random_multi_statement(&mut rng, &w);
            let stmt = xic_xml::XUpdateDoc::parse(&text)
                .unwrap_or_else(|e| panic!("generated statement must parse: {e}\n{text}"));
            assert_eq!(stmt.ops.len(), 1);
            let k = match &stmt.ops[0] {
                XUpdateOp::InsertBefore { .. } => 0,
                XUpdateOp::InsertAfter { .. } => 1,
                XUpdateOp::Append { .. } => 2,
                XUpdateOp::Remove { .. } => 3,
                XUpdateOp::Update { .. } => 4,
                XUpdateOp::Rename { .. } => 5,
            };
            seen[k] = true;
        }
        assert_eq!(seen, [true; 6], "all six op kinds must appear in the mix");
        let hostile = hostile_multi_statement(&mut rng, &w);
        xic_xml::XUpdateDoc::parse(&hostile).unwrap();
    }

    #[test]
    fn statement_stream_is_region_skewed() {
        let w = generate_multi(MultiConfig::with_regions(64, 9));
        let mut rng = StdRng::seed_from_u64(5);
        let mut hot = 0usize;
        let n = 1000;
        for _ in 0..n {
            let s = random_multi_statement(&mut rng, &w);
            // Region index appears in the select path.
            if (1..=16).any(|i| s.contains(&format!("/db/region{i}/"))
                || s.contains(&format!("/db/region{i}\"")))
            {
                hot += 1;
            }
        }
        assert!(
            hot > n / 2,
            "hot quartile of regions drew only {hot}/{n} statements"
        );
    }

    #[test]
    fn insert_helpers_parse() {
        let legal = legal_multi_insert(0, 7);
        assert!(xic_xml::XUpdateDoc::parse(&legal).unwrap().insertions_only());
        let ill = illegal_multi_insert(3);
        assert!(xic_xml::XUpdateDoc::parse(&ill).unwrap().insertions_only());
    }
}

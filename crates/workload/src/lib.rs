//! Seeded DBLP-style workload generator (Section 7).
//!
//! The paper's datasets were "generated remapping data from the DBLP
//! repository into the schema of our running examples", at sizes from 32
//! to 256 MB. This generator produces the same *shape* synthetically:
//!
//! * a `dblp` publication catalog with a shared author-name pool and
//!   skewed name reuse (frequent authors publish a lot, mirroring DBLP's
//!   long tail);
//! * a `review` tree (tracks → reviewers → submissions → authors) drawing
//!   submission authors from the same pool, so the conflict-of-interest
//!   constraint has real joins to chase.
//!
//! Everything is deterministic under a seed, and documents validate
//! against the paper's combined DTD (`xic_mapping::schema::paper_dtd`).
//!
//! In the system-inventory table of `DESIGN.md` this crate is item 12 (workload generator).

pub mod multi;
pub mod shards;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Workload sizing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadConfig {
    /// RNG seed (all output is deterministic in it).
    pub seed: u64,
    /// Number of publications in `dblp`.
    pub pubs: usize,
    /// Number of review tracks.
    pub tracks: usize,
    /// Reviewers per track.
    pub revs_per_track: usize,
    /// Submissions per reviewer.
    pub subs_per_rev: usize,
    /// Distinct author names in the pool.
    pub name_pool: usize,
}

impl WorkloadConfig {
    /// A configuration sized to approximately `kib` KiB of serialized XML.
    /// Derived empirically: one publication ≈ 90 bytes, one submission ≈
    /// 110 bytes; the corpus splits roughly half catalog, half reviews.
    pub fn sized_kib(kib: usize, seed: u64) -> WorkloadConfig {
        let bytes = kib * 1024;
        let pubs = (bytes / 2) / 90;
        let subs_total = (bytes / 2) / 110;
        // Keep the review tree shallow and wide like a real conference.
        let tracks = (subs_total / 200).clamp(1, 40);
        let revs_per_track = ((subs_total / tracks) / 8).clamp(1, 50);
        let subs_per_rev = (subs_total / (tracks * revs_per_track)).max(1);
        WorkloadConfig {
            seed,
            pubs,
            tracks,
            revs_per_track,
            subs_per_rev,
            name_pool: (pubs / 3).clamp(50, 20_000),
        }
    }

    /// Total submissions implied by the configuration.
    pub fn total_subs(&self) -> usize {
        self.tracks * self.revs_per_track * self.subs_per_rev
    }
}

/// A generated workload: the corpus plus handles for building updates.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The serialized `<collection>` document.
    pub xml: String,
    /// The configuration that produced it.
    pub config: WorkloadConfig,
    /// Names of reviewers, indexed `[track][rev]`.
    pub reviewers: Vec<Vec<String>>,
}

/// Draws a pool index with a power-law skew (index 0 is the most frequent
/// name — the "Ley effect" of DBLP).
pub(crate) fn skewed(rng: &mut StdRng, pool: usize) -> usize {
    let r: f64 = rng.gen::<f64>();
    ((r * r) * pool as f64) as usize % pool.max(1)
}

fn name(i: usize) -> String {
    format!("author{i:05}")
}

/// Generates a workload.
pub fn generate(config: WorkloadConfig) -> Workload {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut xml = String::with_capacity(config.pubs * 96 + config.total_subs() * 120 + 1024);
    // Coauthorship pairs, used below to keep the corpus consistent with
    // the conflict-of-interest constraint's second disjunct.
    let mut coauthors: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
    xml.push_str("<collection><dblp>");
    for p in 0..config.pubs {
        let _ = write!(xml, "<pub><title>Publication {p}</title>");
        let n_auts = 1 + rng.gen_range(0..3);
        let mut seen: Vec<usize> = Vec::new();
        for _ in 0..n_auts {
            let a = skewed(&mut rng, config.name_pool);
            if seen.contains(&a) {
                continue;
            }
            for &b in &seen {
                coauthors.insert((a.min(b), a.max(b)));
            }
            seen.push(a);
            let _ = write!(xml, "<aut><name>{}</name></aut>", name(a));
        }
        xml.push_str("</pub>");
    }
    xml.push_str("</dblp><review>");
    let mut reviewers = Vec::with_capacity(config.tracks);
    for t in 0..config.tracks {
        let _ = write!(xml, "<track><name>Track {t}</name>");
        let mut track_revs = Vec::with_capacity(config.revs_per_track);
        for _ in 0..config.revs_per_track {
            let r = skewed(&mut rng, config.name_pool);
            let rname = name(r);
            let _ = write!(xml, "<rev><name>{rname}</name>");
            for s in 0..config.subs_per_rev {
                let _ = write!(xml, "<sub><title>Submission {t}-{s}</title>");
                let n_auts = 1 + rng.gen_range(0..2);
                for fallback in 0..n_auts {
                    // Submission authors must neither be the reviewer nor a
                    // coauthor of the reviewer, so the generated corpus
                    // starts consistent with the conflict-of-interest
                    // constraint; redraw on conflict, with a guaranteed-
                    // safe out-of-pool name as a last resort.
                    let mut picked = None;
                    for _ in 0..12 {
                        let a = skewed(&mut rng, config.name_pool);
                        let conflicted =
                            a == r || coauthors.contains(&(a.min(r), a.max(r)));
                        if !conflicted {
                            picked = Some(a);
                            break;
                        }
                    }
                    let a = picked.unwrap_or(config.name_pool + fallback);
                    let _ = write!(xml, "<auts><name>{}</name></auts>", name(a));
                }
                xml.push_str("</sub>");
            }
            xml.push_str("</rev>");
            track_revs.push(rname);
        }
        xml.push_str("</track>");
        reviewers.push(track_revs);
    }
    xml.push_str("</review></collection>");
    Workload {
        xml,
        config,
        reviewers,
    }
}

/// A *legal* insertion for the conflict-of-interest constraint: a new
/// submission by a brand-new author (present in no publication), appended
/// to the given reviewer.
pub fn legal_insert(track: usize, rev: usize, serial: usize) -> String {
    format!(
        r#"<xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
  <xupdate:append select="/collection/review/track[{}]/rev[{}]">
    <sub><title>Fresh submission {serial}</title><auts><name>newcomer{serial:05}</name></auts></sub>
  </xupdate:append>
</xupdate:modifications>"#,
        track + 1,
        rev + 1
    )
}

/// An *illegal* insertion: the submission's author is the reviewer
/// him/herself (violates the first disjunct of Example 1).
pub fn illegal_insert(track: usize, rev: usize, reviewer_name: &str) -> String {
    format!(
        r#"<xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
  <xupdate:append select="/collection/review/track[{}]/rev[{}]">
    <sub><title>Conflicted submission</title><auts><name>{reviewer_name}</name></auts></sub>
  </xupdate:append>
</xupdate:modifications>"#,
        track + 1,
        rev + 1
    )
}

// ---------------------------------------------------------------------
// Random statement generation (all six XUpdate operation kinds)
// ---------------------------------------------------------------------

/// Draws a single random XUpdate statement (a 1–3 operation batch) over
/// the workload's review tree. The mix covers **all six** `XUpdateOp`
/// kinds — insert-before, insert-after, append, remove, update, rename —
/// so differential tests exercise the baseline (apply + full check +
/// rollback) paths as well as the optimized insertion path. Deterministic
/// under the caller's RNG.
pub fn random_statement(rng: &mut StdRng, w: &Workload) -> String {
    let ops = 1 + rng.gen_range(0..3);
    random_batch(rng, w, ops)
}

/// A random `<xupdate:modifications>` batch of exactly `ops` operations.
///
/// Selects use positional paths the [`WorkloadConfig`] guarantees to
/// exist in the *initial* document; within a multi-op batch, an earlier
/// `remove` can invalidate a later select, which deliberately exercises
/// the partial-failure rollback path (§7).
pub fn random_batch(rng: &mut StdRng, w: &Workload, ops: usize) -> String {
    let body: String = (0..ops).map(|_| random_op(rng, w)).collect();
    format!(
        "<xupdate:modifications version=\"1.0\" \
         xmlns:xupdate=\"http://www.xmldb.org/xupdate\">{body}</xupdate:modifications>"
    )
}

/// Picks a submission author: the reviewer (guaranteed conflict), a fresh
/// newcomer (guaranteed legal for the conflict constraint), or a pool
/// member (maybe a coauthor — the interesting join case).
fn random_author(rng: &mut StdRng, w: &Workload, track: usize, rev: usize) -> String {
    match rng.gen_range(0..4) {
        0 => w.reviewers[track][rev].clone(),
        1 => format!("newcomer{:05}", rng.gen_range(0..100)),
        _ => name(skewed(rng, w.config.name_pool)),
    }
}

fn random_op(rng: &mut StdRng, w: &Workload) -> String {
    let t = rng.gen_range(0..w.config.tracks);
    let r = rng.gen_range(0..w.config.revs_per_track);
    let s = rng.gen_range(0..w.config.subs_per_rev);
    let rev_sel = format!("/collection/review/track[{}]/rev[{}]", t + 1, r + 1);
    let sub_sel = format!("{rev_sel}/sub[{}]", s + 1);
    let author = random_author(rng, w, t, r);
    let serial = rng.gen_range(0..1000);
    let sub = format!(
        "<sub><title>Generated {serial}</title><auts><name>{author}</name></auts></sub>"
    );
    match rng.gen_range(0..6) {
        0 => format!("<xupdate:append select=\"{rev_sel}\">{sub}</xupdate:append>"),
        1 => format!(
            "<xupdate:insert-before select=\"{sub_sel}\">{sub}</xupdate:insert-before>"
        ),
        2 => format!(
            "<xupdate:insert-after select=\"{sub_sel}\">{sub}</xupdate:insert-after>"
        ),
        3 => {
            // Remove a whole submission, or just one of its author slots.
            if rng.gen_bool(0.5) {
                format!("<xupdate:remove select=\"{sub_sel}\"/>")
            } else {
                format!("<xupdate:remove select=\"{sub_sel}/auts[1]\"/>")
            }
        }
        4 => {
            // Rewriting an author (or reviewer) name can *create* a
            // conflict in place — the mutation class only the baseline
            // strategy handles.
            let (sel, text) = match rng.gen_range(0..3) {
                0 => (format!("{sub_sel}/auts[1]/name"), author),
                1 => (format!("{sub_sel}/title"), format!("Retitled {serial}")),
                _ => (format!("{rev_sel}/name"), author),
            };
            format!("<xupdate:update select=\"{sel}\">{text}</xupdate:update>")
        }
        _ => {
            let new_name = if rng.gen_bool(0.5) { "title" } else { "heading" };
            format!("<xupdate:rename select=\"{sub_sel}/title\">{new_name}</xupdate:rename>")
        }
    }
}

/// The paper's two running constraints in XPathLog, thresholds
/// parameterized so the workload can sit just under them.
pub fn conflict_constraint() -> &'static str {
    "<- //rev[name/text() -> R]/sub/auts/name/text() -> A \
     & (A = R | //pub[aut/name/text() -> A & aut/name/text() -> R])"
}

/// Example 2's conference-workload constraint with configurable bounds.
pub fn workload_constraint(min_tracks: usize, max_subs: usize) -> String {
    format!(
        "<- cntd{{[R]; //track[rev/name/text() -> R]}} >= {min_tracks} \
         & cntd{{[R]; //rev[name/text() -> R]/sub}} > {max_subs}"
    )
}

/// Example 7's per-track review-load constraint.
pub fn review_load_constraint(max_subs: usize) -> String {
    format!("<- //rev -> R & cnt{{R/sub}} > {max_subs}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let cfg = WorkloadConfig::sized_kib(64, 7);
        let a = generate(cfg);
        let b = generate(cfg);
        assert_eq!(a.xml, b.xml);
        let c = generate(WorkloadConfig { seed: 8, ..cfg });
        assert_ne!(a.xml, c.xml);
    }

    #[test]
    fn sized_roughly_right() {
        for kib in [32, 128, 512] {
            let w = generate(WorkloadConfig::sized_kib(kib, 1));
            let actual = w.xml.len();
            let target = kib * 1024;
            assert!(
                actual > target / 2 && actual < target * 2,
                "{kib} KiB target produced {actual} bytes"
            );
        }
    }

    #[test]
    fn validates_against_paper_dtd() {
        let w = generate(WorkloadConfig::sized_kib(32, 3));
        let (doc, _) = xic_xml::parse_document(&w.xml).unwrap();
        let dtd = paper_dtd_local();
        dtd.validate(&doc).unwrap();
        assert_eq!(
            w.reviewers.len(),
            w.config.tracks,
            "reviewer handles per track"
        );
    }

    // The DTD lives in xic-mapping; duplicate the text here to avoid a
    // dependency cycle in the workload crate.
    fn paper_dtd_local() -> xic_xml::Dtd {
        xic_xml::Dtd::parse(
            "<!ELEMENT collection (dblp, review)>\n<!ELEMENT dblp (pub)*>\n\
             <!ELEMENT pub (title, aut+)>\n<!ELEMENT aut (name)>\n\
             <!ELEMENT review (track)+>\n<!ELEMENT track (name,rev+)>\n\
             <!ELEMENT rev (name, sub+)>\n<!ELEMENT sub (title, auts+)>\n\
             <!ELEMENT title (#PCDATA)>\n<!ELEMENT auts (name)>\n\
             <!ELEMENT name (#PCDATA)>",
        )
        .unwrap()
    }

    #[test]
    fn generated_corpus_is_initially_consistent() {
        // The generator avoids self-reviews, so the first disjunct of the
        // conflict constraint holds on a fresh corpus.
        let w = generate(WorkloadConfig::sized_kib(16, 5));
        let (doc, _) = xic_xml::parse_document(&w.xml).unwrap();
        let q = xic_xquery::parse_query(
            "some $lr in //rev satisfies $lr/sub/auts/name/text() = $lr/name/text()",
        )
        .unwrap();
        assert!(!xic_xquery::eval_query_bool(&q, &doc).unwrap());
    }

    #[test]
    fn update_statements_parse() {
        let legal = legal_insert(0, 0, 42);
        let stmt = xic_xml::XUpdateDoc::parse(&legal).unwrap();
        assert!(stmt.insertions_only());
        let ill = illegal_insert(1, 2, "author00001");
        let stmt2 = xic_xml::XUpdateDoc::parse(&ill).unwrap();
        assert!(stmt2.insertions_only());
    }

    #[test]
    fn random_statements_parse_and_cover_all_op_kinds() {
        use xic_xml::XUpdateOp;
        let w = generate(WorkloadConfig::sized_kib(8, 11));
        let mut rng = StdRng::seed_from_u64(99);
        let mut seen = [false; 6];
        for _ in 0..300 {
            let text = random_statement(&mut rng, &w);
            let stmt = xic_xml::XUpdateDoc::parse(&text).unwrap_or_else(|e| {
                panic!("generated statement must parse: {e}\n{text}")
            });
            assert!(!stmt.ops.is_empty() && stmt.ops.len() <= 3);
            for op in &stmt.ops {
                let k = match op {
                    XUpdateOp::InsertBefore { .. } => 0,
                    XUpdateOp::InsertAfter { .. } => 1,
                    XUpdateOp::Append { .. } => 2,
                    XUpdateOp::Remove { .. } => 3,
                    XUpdateOp::Update { .. } => 4,
                    XUpdateOp::Rename { .. } => 5,
                };
                seen[k] = true;
            }
        }
        assert_eq!(seen, [true; 6], "all six op kinds must appear in the mix");
    }

    #[test]
    fn random_statements_deterministic_under_seed() {
        let w = generate(WorkloadConfig::sized_kib(8, 11));
        let a: Vec<String> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..20).map(|_| random_statement(&mut rng, &w)).collect()
        };
        let b: Vec<String> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..20).map(|_| random_statement(&mut rng, &w)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn skew_prefers_low_indexes() {
        let mut rng = StdRng::seed_from_u64(1);
        let draws: Vec<usize> = (0..2000).map(|_| skewed(&mut rng, 100)).collect();
        let low = draws.iter().filter(|&&d| d < 25).count();
        assert!(low > 800, "skew too weak: {low}/2000 in the low quartile");
    }
}

//! The XML ↔ relational mapping of Section 4.
//!
//! Four pieces, all driven by the document DTD:
//!
//! * [`schema`]: derives the relational schema — one predicate per node
//!   type with columns `(Id, Pos, IdParent, …)`, PCDATA-only exactly-once
//!   children compacted into their container's predicate, and
//!   container-only singleton elements (document roots such as `dblp` and
//!   `review`) dropped, exactly as in Section 4.1;
//! * [`shred`](shred()): materializes a document's relational image as a
//!   `xic-datalog` [`Database`](xic_datalog::Database) (used as the
//!   ground-truth semantics in tests, not at runtime);
//! * [`update_map`]: maps an XUpdate insertion statement to a
//!   parameterized update transaction (Section 4.1's
//!   `{sub(id3, 7, id_r, "Taming Web Services"), auts(id4, 2, id3,
//!   "Jack")}`), identifying fresh node-id parameters and the concrete
//!   parameter bindings;
//! * [`constraint_map`]: compiles disjunction-free XPathLog denials into
//!   Datalog denials over that schema (Section 4.2).
//!
//! ## Deviations from the paper (documented in DESIGN.md)
//!
//! * Optional (`?`) PCDATA children are kept as their own predicates
//!   instead of nullable compacted columns: the Datalog substrate has no
//!   nulls, and this keeps every compacted column total.
//! * `Pos` is consistently the 1-based position among *all element
//!   children* (the paper's Section 4.1 example assigns `auts` position 2
//!   after `title`, but then gives the inserted 7th `sub` position 7
//!   rather than 8; we resolve the inconsistency in favour of the
//!   all-element-children reading and derive positional-path offsets from
//!   the content model).
//!
//! In the system-inventory table of `DESIGN.md` this crate is item 8 (XML↔relational mapping).

pub mod constraint_map;
pub mod schema;
pub mod shred;
pub mod update_map;

pub use constraint_map::{map_constraint, map_denials, MapError};
pub use schema::{PredInfo, RelSchema};
pub use shred::shred;
pub use update_map::{map_update, pattern_key, MappedUpdate, UpdateMapError};

//! XUpdate → parameterized update transaction (Section 4.1).
//!
//! The paper's example: inserting a new `sub` after
//! `/review/track[2]/rev[5]/sub[6]` corresponds to adding
//! `{sub(id3, 7, id_r, "Taming Web Services"), auts(id4, 2, id3, "Jack")}`.
//! Here the structure is abstracted into parameters — fresh node ids,
//! the target parent id, the data-dependent position and the PCDATA
//! values — producing exactly the update *pattern* that drives the
//! compile-time simplification (Example 6's
//! `U = {sub(is, ps, ir, t), auts(ia, pa, is, n)}`), together with the
//! concrete parameter bindings for this statement.

use crate::schema::RelSchema;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use xic_datalog::{Atom, Term, Update, Value};
use xic_xml::xupdate::{Fragment, XUpdateDoc, XUpdateOp};
use xic_xml::{Document, NodeId, SelectResolver};

/// A mapped update: the parameterized transaction, this statement's
/// parameter bindings, and which parameters denote fresh node ids.
#[derive(Debug, Clone)]
pub struct MappedUpdate {
    /// The update pattern (arguments are parameters or constants).
    pub update: Update,
    /// Concrete values for every parameter.
    pub bindings: HashMap<String, Value>,
    /// Parameters standing for newly allocated node identifiers.
    pub fresh_params: BTreeSet<String>,
    /// Parameters denoting node identifiers (targets and fresh ids) —
    /// the translator must render them as positional node paths, never as
    /// value literals.
    pub node_params: BTreeSet<String>,
}

/// Update mapping failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateMapError {
    /// The statement contains non-insertion operations; the simplification
    /// framework targets insertions (Section 5), so callers fall back to
    /// full checking.
    NotInsertion,
    /// A select expression matched zero or several nodes.
    Target(String),
    /// The inserted fragment does not fit the schema.
    Schema(String),
}

impl fmt::Display for UpdateMapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateMapError::NotInsertion => {
                f.write_str("only insertion statements can be mapped to update patterns")
            }
            UpdateMapError::Target(m) => write!(f, "target resolution: {m}"),
            UpdateMapError::Schema(m) => write!(f, "fragment/schema mismatch: {m}"),
        }
    }
}

impl std::error::Error for UpdateMapError {}

/// Maps an XUpdate statement against the current document state.
pub fn map_update(
    doc: &Document,
    schema: &RelSchema,
    stmt: &XUpdateDoc,
    resolve: SelectResolver,
) -> Result<MappedUpdate, UpdateMapError> {
    if !stmt.insertions_only() {
        return Err(UpdateMapError::NotInsertion);
    }
    let mut out = MappedUpdate {
        update: Update::default(),
        bindings: HashMap::new(),
        fresh_params: BTreeSet::new(),
        node_params: BTreeSet::new(),
    };
    // Hypothetical fresh ids: strictly greater than every allocated id.
    let mut next_fresh = doc.node_count() as i64;
    let mut param_counter = 0usize;

    for (k, op) in stmt.ops.iter().enumerate() {
        let targets = resolve(doc, op.select()).map_err(UpdateMapError::Target)?;
        let [target] = targets.as_slice() else {
            return Err(UpdateMapError::Target(format!(
                "select {:?} matched {} nodes; patterns require exactly one",
                op.select(),
                targets.len()
            )));
        };
        let (parent, base_pos, content) = match op {
            XUpdateOp::InsertAfter { content, .. } => {
                let parent = doc
                    .node(*target)
                    .parent
                    .ok_or_else(|| UpdateMapError::Target("target has no parent".into()))?;
                let pos = doc
                    .element_position(*target)
                    .ok_or_else(|| UpdateMapError::Target("target is not an element".into()))?;
                (parent, pos + 1, content)
            }
            XUpdateOp::InsertBefore { content, .. } => {
                let parent = doc
                    .node(*target)
                    .parent
                    .ok_or_else(|| UpdateMapError::Target("target has no parent".into()))?;
                let pos = doc
                    .element_position(*target)
                    .ok_or_else(|| UpdateMapError::Target("target is not an element".into()))?;
                (parent, pos, content)
            }
            XUpdateOp::Append { content, child, .. } => {
                let pos = match child {
                    Some(c) => {
                        // Elements among the first `c` children.
                        doc.node(*target).children[..(*c).min(doc.node(*target).children.len())]
                            .iter()
                            .filter(|&&n| doc.name(n).is_some())
                            .count()
                            + 1
                    }
                    None => doc.element_children(*target).len() + 1,
                };
                (*target, pos, content)
            }
            _ => return Err(UpdateMapError::NotInsertion),
        };

        // Target-parent parameter.
        let t_param = format!("t{k}");
        out.bindings
            .insert(t_param.clone(), Value::Int(i64::from(parent.0)));
        out.node_params.insert(t_param.clone());

        let mut pos_cursor = base_pos;
        for frag in content {
            let Fragment::Element { .. } = frag else {
                if let Fragment::Text(t) = frag {
                    if t.trim().is_empty() {
                        continue;
                    }
                }
                return Err(UpdateMapError::Schema(
                    "top-level inserted content must be elements".to_string(),
                ));
            };
            // The root fragment's position is data-dependent: a parameter.
            let p_param = format!("p{param_counter}");
            param_counter += 1;
            out.bindings
                .insert(p_param.clone(), Value::Int(pos_cursor as i64));
            map_fragment(
                frag,
                Term::param(t_param.clone()),
                Term::param(p_param),
                schema,
                &mut out,
                &mut next_fresh,
                &mut param_counter,
            )?;
            pos_cursor += 1;
        }
    }
    Ok(out)
}

/// Recursively maps a fragment element to addition atoms.
fn map_fragment(
    frag: &Fragment,
    parent: Term,
    pos: Term,
    schema: &RelSchema,
    out: &mut MappedUpdate,
    next_fresh: &mut i64,
    param_counter: &mut usize,
) -> Result<(), UpdateMapError> {
    let Fragment::Element { name, children, .. } = frag else {
        unreachable!("callers pass elements only")
    };
    let Some(info) = schema.pred(name) else {
        return Err(UpdateMapError::Schema(format!(
            "inserted element <{name}> does not map to a predicate"
        )));
    };
    // Fresh id parameter.
    let id_param = format!("n{param_counter}");
    *param_counter += 1;
    out.bindings
        .insert(id_param.clone(), Value::Int(*next_fresh));
    *next_fresh += 1;
    out.fresh_params.insert(id_param.clone());
    out.node_params.insert(id_param.clone());

    // Column values from compacted children.
    let mut args: Vec<Term> = vec![Term::param(id_param.clone()), pos, parent];
    for col in &info.cols {
        let text = children
            .iter()
            .find_map(|c| match c {
                Fragment::Element { name: cn, children: cc, .. } if cn == col => {
                    Some(fragment_text(cc))
                }
                _ => None,
            })
            .ok_or_else(|| {
                UpdateMapError::Schema(format!(
                    "<{name}> fragment is missing its <{col}> child"
                ))
            })?;
        let v_param = format!("v{param_counter}");
        *param_counter += 1;
        out.bindings.insert(v_param.clone(), Value::Str(text));
        args.push(Term::param(v_param));
    }
    out.update
        .additions
        .push(Atom::new(name.clone(), args));

    // Recurse into non-compacted element children; their positions inside
    // the fragment are statically known constants.
    let mut elem_pos = 0usize;
    for c in children {
        if let Fragment::Element { name: cn, .. } = c {
            elem_pos += 1;
            if schema.is_compacted(cn) {
                continue;
            }
            map_fragment(
                c,
                Term::param(id_param.clone()),
                Term::int(elem_pos as i64),
                schema,
                out,
                next_fresh,
                param_counter,
            )?;
        }
    }
    Ok(())
}

fn fragment_text(children: &[Fragment]) -> String {
    let mut s = String::new();
    for c in children {
        match c {
            Fragment::Text(t) => s.push_str(t),
            Fragment::Element { children, .. } => s.push_str(&fragment_text(children)),
        }
    }
    s.trim().to_string()
}

/// A canonical key for the update's *shape*: parameters are numbered by
/// first occurrence, constants kept verbatim. Two statements with equal
/// keys are instances of the same pattern and share a compiled check.
pub fn pattern_key(update: &Update) -> String {
    let mut names: HashMap<&str, usize> = HashMap::new();
    let mut out = String::new();
    for a in &update.additions {
        out.push_str(&a.pred);
        out.push('(');
        for (i, t) in a.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match t {
                Term::Param(p) => {
                    let n = names.len();
                    let idx = *names.entry(p.as_str()).or_insert(n);
                    out.push_str(&format!("${idx}"));
                }
                Term::Const(c) => out.push_str(&c.to_string()),
                Term::Var(v) => out.push_str(v), // unreachable for updates
            }
        }
        out.push(')');
    }
    out
}

/// Resolves a positional insertion target for the store's node id: used by
/// the runtime to find the node a pattern parameter denotes.
pub fn node_id_value(id: NodeId) -> Value {
    Value::Int(i64::from(id.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::paper_dtd;
    use xic_xml::parse_document;

    const CORPUS: &str = "<collection><dblp/>\
        <review>\
          <track><name>T1</name>\
            <rev><name>Ann</name>\
              <sub><title>S1</title><auts><name>Bob</name></auts></sub>\
            </rev>\
          </track>\
          <track><name>T2</name>\
            <rev><name>Cat</name>\
              <sub><title>S2</title><auts><name>Dan</name></auts></sub>\
              <sub><title>S3</title><auts><name>Eve</name></auts></sub>\
            </rev>\
          </track>\
        </review></collection>";

    fn resolver(doc: &Document, select: &str) -> Result<Vec<NodeId>, String> {
        let expr = xic_xpath::parse(select).map_err(|e| e.to_string())?;
        let ctx = xic_xpath::Context::root(doc);
        let nodes = xic_xpath::evaluate_nodes(&expr, &ctx).map_err(|e| e.to_string())?;
        Ok(nodes
            .into_iter()
            .filter_map(|n| match n {
                xic_xpath::NodeRef::Node(id) => Some(id),
                xic_xpath::NodeRef::Attr { .. } => None,
            })
            .collect())
    }

    const PAPER_STMT: &str = r#"<xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
      <xupdate:insert-after select="/collection/review/track[2]/rev[1]/sub[2]">
        <xupdate:element name="sub">
          <title>Taming Web Services</title>
          <auts><name>Jack</name></auts>
        </xupdate:element>
      </xupdate:insert-after>
    </xupdate:modifications>"#;

    #[test]
    fn maps_paper_statement() {
        let (doc, _) = parse_document(CORPUS).unwrap();
        let schema = RelSchema::from_dtd(&paper_dtd()).unwrap();
        let stmt = XUpdateDoc::parse(PAPER_STMT).unwrap();
        let m = map_update(&doc, &schema, &stmt, &resolver).unwrap();
        // Shape: {sub($n, $p, $t, $v), auts($n2, 2, $n, $v2)}.
        assert_eq!(m.update.additions.len(), 2);
        let s = m.update.to_string();
        assert!(s.starts_with("{sub($"), "{s}");
        assert!(s.contains("auts($"), "{s}");
        // The nested auts position is the constant 2 (after title).
        let auts = &m.update.additions[1];
        assert_eq!(auts.args[1], Term::int(2));
        // auts' parent is sub's fresh id parameter.
        assert_eq!(auts.args[2], m.update.additions[0].args[0]);
        // Fresh ids: the two new element ids.
        assert_eq!(m.fresh_params.len(), 2);
        // Bindings: position of the new sub is 4 (title, sub, sub, NEW).
        let p = m.update.additions[0].args[1].clone();
        let Term::Param(pname) = p else { panic!("{p:?}") };
        assert_eq!(m.bindings[&pname], Value::Int(4));
        // Value binding carries the title text.
        let v = m.update.additions[0].args[3].clone();
        let Term::Param(vname) = v else { panic!("{v:?}") };
        assert_eq!(m.bindings[&vname], Value::from("Taming Web Services"));
        // Fresh ids are beyond every allocated node id.
        for f in &m.fresh_params {
            assert!(m.bindings[f].as_int().unwrap() >= doc.node_count() as i64);
        }
    }

    #[test]
    fn pattern_keys_group_statements() {
        let (doc, _) = parse_document(CORPUS).unwrap();
        let schema = RelSchema::from_dtd(&paper_dtd()).unwrap();
        let stmt1 = XUpdateDoc::parse(PAPER_STMT).unwrap();
        let stmt2 = XUpdateDoc::parse(
            r#"<xupdate:modifications xmlns:xupdate="x">
              <xupdate:insert-before select="/collection/review/track[1]/rev[1]/sub[1]">
                <sub><title>Other</title><auts><name>Mia</name></auts></sub>
              </xupdate:insert-before>
            </xupdate:modifications>"#,
        )
        .unwrap();
        let m1 = map_update(&doc, &schema, &stmt1, &resolver).unwrap();
        let m2 = map_update(&doc, &schema, &stmt2, &resolver).unwrap();
        assert_eq!(pattern_key(&m1.update), pattern_key(&m2.update));
        // A two-author submission is a different pattern.
        let stmt3 = XUpdateDoc::parse(
            r#"<xupdate:modifications xmlns:xupdate="x">
              <xupdate:insert-before select="/collection/review/track[1]/rev[1]/sub[1]">
                <sub><title>Duo</title><auts><name>A</name></auts><auts><name>B</name></auts></sub>
              </xupdate:insert-before>
            </xupdate:modifications>"#,
        )
        .unwrap();
        let m3 = map_update(&doc, &schema, &stmt3, &resolver).unwrap();
        assert_ne!(pattern_key(&m1.update), pattern_key(&m3.update));
        assert_eq!(m3.update.additions.len(), 3);
    }

    #[test]
    fn append_maps_to_trailing_position() {
        let (doc, _) = parse_document(CORPUS).unwrap();
        let schema = RelSchema::from_dtd(&paper_dtd()).unwrap();
        let stmt = XUpdateDoc::parse(
            r#"<xupdate:modifications xmlns:xupdate="x">
              <xupdate:append select="/collection/review/track[1]/rev[1]">
                <sub><title>New</title><auts><name>Zed</name></auts></sub>
              </xupdate:append>
            </xupdate:modifications>"#,
        )
        .unwrap();
        let m = map_update(&doc, &schema, &stmt, &resolver).unwrap();
        let p = m.update.additions[0].args[1].clone();
        let Term::Param(pname) = p else { panic!() };
        // rev has name + sub: appended sub gets element position 3.
        assert_eq!(m.bindings[&pname], Value::Int(3));
        // The target-parent parameter binds to the rev itself.
        let t = m.update.additions[0].args[2].clone();
        let Term::Param(tname) = t else { panic!() };
        let rev_id = m.bindings[&tname].as_int().unwrap();
        assert_eq!(doc.name(NodeId(u32::try_from(rev_id).unwrap())), Some("rev"));
    }

    #[test]
    fn non_insertions_rejected() {
        let (doc, _) = parse_document(CORPUS).unwrap();
        let schema = RelSchema::from_dtd(&paper_dtd()).unwrap();
        let stmt = XUpdateDoc::parse(
            r#"<xupdate:modifications xmlns:xupdate="x">
              <xupdate:remove select="//sub[1]"/>
            </xupdate:modifications>"#,
        )
        .unwrap();
        assert_eq!(
            map_update(&doc, &schema, &stmt, &resolver).unwrap_err(),
            UpdateMapError::NotInsertion
        );
    }

    #[test]
    fn multi_target_select_rejected() {
        let (doc, _) = parse_document(CORPUS).unwrap();
        let schema = RelSchema::from_dtd(&paper_dtd()).unwrap();
        let stmt = XUpdateDoc::parse(
            r#"<xupdate:modifications xmlns:xupdate="x">
              <xupdate:insert-after select="//sub">
                <sub><title>X</title><auts><name>Y</name></auts></sub>
              </xupdate:insert-after>
            </xupdate:modifications>"#,
        )
        .unwrap();
        assert!(matches!(
            map_update(&doc, &schema, &stmt, &resolver),
            Err(UpdateMapError::Target(_))
        ));
    }

    #[test]
    fn fragment_missing_compacted_child_rejected() {
        let (doc, _) = parse_document(CORPUS).unwrap();
        let schema = RelSchema::from_dtd(&paper_dtd()).unwrap();
        let stmt = XUpdateDoc::parse(
            r#"<xupdate:modifications xmlns:xupdate="x">
              <xupdate:append select="/collection/review/track[1]/rev[1]">
                <sub><auts><name>Zed</name></auts></sub>
              </xupdate:append>
            </xupdate:modifications>"#,
        )
        .unwrap();
        let err = map_update(&doc, &schema, &stmt, &resolver).unwrap_err();
        assert!(matches!(err, UpdateMapError::Schema(m) if m.contains("title")));
    }
}

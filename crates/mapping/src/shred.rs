//! Document shredding: the relational image of an XML document.

use crate::schema::RelSchema;
use xic_datalog::{Database, Value};
use xic_xml::{Document, NodeId, NodeKind};

/// Materializes the relational image of `doc` under `schema`. Used as the
/// ground-truth semantics for testing (the runtime checker queries the XML
/// store directly through XQuery; it never shreds).
///
/// Each predicate element becomes a tuple
/// `(Id, Pos, IdParent, value-of-col0, …)` where `Pos` is the element's
/// 1-based position among its parent's element children.
pub fn shred(doc: &Document, schema: &RelSchema) -> Database {
    let mut db = Database::new();
    let mut stack: Vec<NodeId> = vec![doc.document_node()];
    while let Some(n) = stack.pop() {
        if let NodeKind::Element { name, .. } = &doc.node(n).kind {
            if let Some(info) = schema.pred(name) {
                let parent = doc.node(n).parent.map_or(0, |p| i64::from(p.0));
                let pos = doc.element_position(n).unwrap_or(0);
                let mut tuple: Vec<Value> = vec![
                    Value::Int(i64::from(n.0)),
                    Value::Int(pos as i64),
                    Value::Int(parent),
                ];
                for col in &info.cols {
                    let v = doc
                        .element_children(n)
                        .into_iter()
                        .find(|&c| doc.name(c) == Some(col))
                        .map(|c| doc.text_content(c))
                        .unwrap_or_default();
                    tuple.push(Value::Str(v));
                }
                db.insert(name, tuple);
            }
        }
        stack.extend(doc.node(n).children.iter().copied());
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::paper_dtd;
    use xic_xml::parse_document;

    const CORPUS: &str = "<collection>\
        <dblp>\
          <pub><title>Duckburg tales</title><aut><name>Donald</name></aut>\
               <aut><name>Goofy</name></aut></pub>\
        </dblp>\
        <review>\
          <track><name>DB</name>\
            <rev><name>Donald</name>\
              <sub><title>S1</title><auts><name>Mickey</name></auts></sub>\
            </rev>\
          </track>\
        </review>\
      </collection>";

    #[test]
    fn shreds_paper_corpus() {
        let (doc, _) = parse_document(CORPUS).unwrap();
        let schema = RelSchema::from_dtd(&paper_dtd()).unwrap();
        let db = shred(&doc, &schema);
        assert_eq!(db.relation("pub").unwrap().len(), 1);
        assert_eq!(db.relation("aut").unwrap().len(), 2);
        assert_eq!(db.relation("track").unwrap().len(), 1);
        assert_eq!(db.relation("rev").unwrap().len(), 1);
        assert_eq!(db.relation("sub").unwrap().len(), 1);
        assert_eq!(db.relation("auts").unwrap().len(), 1);
        // Compacted values present.
        let pub_tuple = db.relation("pub").unwrap().iter().next().unwrap().to_vec();
        assert_eq!(pub_tuple[3], Value::from("Duckburg tales"));
        // Structure: aut tuples point at the pub id; positions 1 and 2.
        let pub_id = pub_tuple[0].clone();
        let auts: Vec<Vec<Value>> = db
            .relation("aut")
            .unwrap()
            .iter()
            .map(<[Value]>::to_vec)
            .collect();
        assert!(auts.iter().all(|t| t[2] == pub_id));
        let mut poss: Vec<i64> = auts.iter().map(|t| t[1].as_int().unwrap()).collect();
        poss.sort_unstable();
        // aut follows title: element positions 2 and 3.
        assert_eq!(poss, vec![2, 3]);
    }

    #[test]
    fn shred_then_query_consistency() {
        // The shredded image satisfies the joins the constraints rely on:
        // sub's parent is a rev id, auts' parent is a sub id.
        let (doc, _) = parse_document(CORPUS).unwrap();
        let schema = RelSchema::from_dtd(&paper_dtd()).unwrap();
        let db = shred(&doc, &schema);
        let d = xic_datalog::parse_denial(
            "<- rev(Ir,_,_,\"Donald\") & sub(Is,_,Ir,_) & auts(_,_,Is,\"Mickey\")",
        )
        .unwrap();
        // This binding exists: the denial is violated.
        assert!(!xic_datalog::denial_holds(&db, &d).unwrap());
    }
}

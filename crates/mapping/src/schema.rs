//! DTD → relational schema derivation (Section 4.1).

use std::collections::{BTreeMap, BTreeSet};
use xic_xml::{ContentModel, Dtd};

/// Occurrence bound of a child name within a content model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Occ {
    /// Not present.
    Zero,
    /// Optional (0..1).
    Opt,
    /// Exactly once.
    One,
    /// Possibly repeated.
    Many,
}

impl Occ {
    fn seq(self, other: Occ) -> Occ {
        match (self, other) {
            (Occ::Zero, o) | (o, Occ::Zero) => o,
            _ => Occ::Many,
        }
    }

    fn choice(self, other: Occ) -> Occ {
        match (self, other) {
            (Occ::Zero, Occ::Zero) => Occ::Zero,
            (Occ::Many, _) | (_, Occ::Many) => Occ::Many,
            (Occ::Zero, Occ::One | Occ::Opt) | (Occ::One | Occ::Opt, Occ::Zero) => Occ::Opt,
            (Occ::One, Occ::One) => Occ::One,
            _ => Occ::Opt,
        }
    }

    fn optional(self) -> Occ {
        match self {
            Occ::Zero => Occ::Zero,
            Occ::Many => Occ::Many,
            _ => Occ::Opt,
        }
    }

    fn star(self) -> Occ {
        if self == Occ::Zero {
            Occ::Zero
        } else {
            Occ::Many
        }
    }
}

fn occurrence(model: &ContentModel, name: &str) -> Occ {
    match model {
        ContentModel::Empty | ContentModel::Any | ContentModel::PcData => Occ::Zero,
        ContentModel::Mixed(names) if names.iter().any(|n| n == name) => Occ::Many,
        ContentModel::Mixed(_) => Occ::Zero,
        ContentModel::Name(n) => {
            if n == name {
                Occ::One
            } else {
                Occ::Zero
            }
        }
        ContentModel::Seq(parts) => parts
            .iter()
            .map(|p| occurrence(p, name))
            .fold(Occ::Zero, Occ::seq),
        ContentModel::Choice(parts) => parts
            .iter()
            .map(|p| occurrence(p, name))
            .reduce(Occ::choice)
            .unwrap_or(Occ::Zero),
        ContentModel::Optional(p) => occurrence(p, name).optional(),
        ContentModel::Star(p) => occurrence(p, name).star(),
        ContentModel::Plus(p) => {
            let o = occurrence(p, name);
            if o == Occ::Zero {
                Occ::Zero
            } else {
                Occ::Many
            }
        }
    }
}

/// Names mentioned by a content model, in first-occurrence order.
/// Public within the crate for the constraint mapper's parent lookup.
pub(crate) fn mentioned_names(model: &ContentModel, out: &mut Vec<String>) {
    match model {
        ContentModel::Name(n)
            if !out.iter().any(|o| o == n) => {
                out.push(n.clone());
            }
        ContentModel::Mixed(names) => {
            for n in names {
                if !out.iter().any(|o| o == n) {
                    out.push(n.clone());
                }
            }
        }
        ContentModel::Seq(parts) | ContentModel::Choice(parts) => {
            for p in parts {
                mentioned_names(p, out);
            }
        }
        ContentModel::Optional(p) | ContentModel::Star(p) | ContentModel::Plus(p) => {
            mentioned_names(p, out);
        }
        _ => {}
    }
}

/// One relational predicate: element name plus its compacted columns. The
/// full column list is `(Id, Pos, IdParent, col0, col1, …)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredInfo {
    /// Names of compacted PCDATA children, in content-model order.
    pub cols: Vec<String>,
}

impl PredInfo {
    /// Total arity of the predicate (3 structural columns + data columns).
    pub fn arity(&self) -> usize {
        3 + self.cols.len()
    }

    /// The argument index of a compacted child's value column.
    pub fn col_index(&self, child: &str) -> Option<usize> {
        self.cols.iter().position(|c| c == child).map(|i| i + 3)
    }
}

/// The relational schema derived from a DTD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelSchema {
    /// Predicates by element name.
    preds: BTreeMap<String, PredInfo>,
    /// Elements whose PCDATA is stored in their container's predicate.
    compacted: BTreeSet<String>,
    /// Container-only singleton elements not represented at all (e.g. the
    /// `dblp` / `review` roots).
    dropped: BTreeSet<String>,
    /// The root element name.
    root: String,
}

/// Schema derivation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError(pub String);

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "schema mapping error: {}", self.0)
    }
}

impl std::error::Error for SchemaError {}

impl RelSchema {
    /// Derives the relational schema from a DTD.
    pub fn from_dtd(dtd: &Dtd) -> Result<RelSchema, SchemaError> {
        let names: Vec<&str> = dtd.elements().iter().map(|e| e.name.as_str()).collect();
        if names.is_empty() {
            return Err(SchemaError("empty DTD".to_string()));
        }
        // Root: an element mentioned by no other element's model.
        let mut referenced: BTreeSet<&str> = BTreeSet::new();
        for e in dtd.elements() {
            let mut m = Vec::new();
            mentioned_names(&e.model, &mut m);
            for n in m {
                if let Some(&s) = names.iter().find(|&&x| x == n) {
                    referenced.insert(s);
                }
            }
        }
        let roots: Vec<&str> = names
            .iter()
            .copied()
            .filter(|n| !referenced.contains(n))
            .collect();
        let root = match roots.as_slice() {
            [r] => (*r).to_string(),
            [] => return Err(SchemaError("cyclic DTD: no root element".to_string())),
            several => {
                return Err(SchemaError(format!(
                    "ambiguous root: {}",
                    several.join(", ")
                )))
            }
        };

        // Parent → children occurrence table.
        let parents_of = |child: &str| -> Vec<(&str, Occ)> {
            dtd.elements()
                .iter()
                .filter_map(|e| {
                    let o = occurrence(&e.model, child);
                    if o == Occ::Zero {
                        None
                    } else {
                        Some((e.name.as_str(), o))
                    }
                })
                .collect()
        };

        // Compacted: PCDATA-only elements occurring exactly once in every
        // parent that mentions them.
        let mut compacted: BTreeSet<String> = BTreeSet::new();
        for e in dtd.elements() {
            if e.model != ContentModel::PcData {
                continue;
            }
            let ps = parents_of(&e.name);
            if !ps.is_empty() && ps.iter().all(|(_, o)| *o == Occ::One) {
                compacted.insert(e.name.clone());
            }
        }

        // Singleton container-only elements (reachable from the root
        // through exactly-once edges, with no compacted columns) are
        // dropped.
        let has_cols = |name: &str| -> bool {
            dtd.element(name).is_some_and(|decl| {
                let mut m = Vec::new();
                mentioned_names(&decl.model, &mut m);
                m.iter().any(|c| compacted.contains(c))
            })
        };
        let mut dropped: BTreeSet<String> = BTreeSet::new();
        let mut frontier = vec![root.clone()];
        while let Some(cand) = frontier.pop() {
            if compacted.contains(&cand) || has_cols(&cand) || dropped.contains(&cand) {
                continue;
            }
            // Must occur only under already-dropped parents (or be root).
            let ps = parents_of(&cand);
            let singleton = ps
                .iter()
                .all(|(p, o)| *o == Occ::One && dropped.contains(*p));
            if cand == root || singleton {
                dropped.insert(cand.clone());
                if let Some(decl) = dtd.element(&cand) {
                    let mut m = Vec::new();
                    mentioned_names(&decl.model, &mut m);
                    frontier.extend(m);
                }
            }
        }

        // Everything else is a predicate.
        let mut preds = BTreeMap::new();
        for e in dtd.elements() {
            if compacted.contains(&e.name) || dropped.contains(&e.name) {
                continue;
            }
            let mut m = Vec::new();
            mentioned_names(&e.model, &mut m);
            let cols: Vec<String> = m.into_iter().filter(|c| compacted.contains(c)).collect();
            preds.insert(e.name.clone(), PredInfo { cols });
        }
        Ok(RelSchema {
            preds,
            compacted,
            dropped,
            root,
        })
    }

    /// The predicate for an element name, if it is mapped to one.
    pub fn pred(&self, element: &str) -> Option<&PredInfo> {
        self.preds.get(element)
    }

    /// All predicates, sorted by name.
    pub fn preds(&self) -> impl Iterator<Item = (&str, &PredInfo)> {
        self.preds.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// True if the element's PCDATA is compacted into its container.
    pub fn is_compacted(&self, element: &str) -> bool {
        self.compacted.contains(element)
    }

    /// True if the element is a dropped singleton container.
    pub fn is_dropped(&self, element: &str) -> bool {
        self.dropped.contains(element)
    }

    /// The root element name.
    pub fn root(&self) -> &str {
        &self.root
    }

    /// The number of element children guaranteed to precede the first
    /// `child` inside `parent` (used to map `child[n]` positional
    /// predicates to the `Pos` column: `Pos = offset + n`). `None` when
    /// the prefix has no fixed size.
    pub fn position_offset(&self, dtd: &Dtd, parent: &str, child: &str) -> Option<i64> {
        let decl = dtd.element(parent)?;
        fixed_prefix(&decl.model, child).map(|n| n as i64)
    }
}

/// Counts the elements guaranteed before the first `child` in `model`,
/// returning `None` when the prefix size is not fixed or the child is
/// absent.
fn fixed_prefix(model: &ContentModel, child: &str) -> Option<usize> {
    match model {
        ContentModel::Name(n) => {
            if n == child {
                Some(0)
            } else {
                None
            }
        }
        ContentModel::Seq(parts) => {
            let mut before = 0usize;
            for p in parts {
                if occurrence(p, child) != Occ::Zero {
                    return fixed_prefix(p, child).map(|k| before + k);
                }
                // The part must have a fixed width to keep counting.
                before += fixed_width(p)?;
            }
            None
        }
        ContentModel::Plus(p) | ContentModel::Star(p) | ContentModel::Optional(p) => {
            // The first iteration starts at offset 0 within the particle.
            match &**p {
                ContentModel::Name(n) if n == child => Some(0),
                inner => fixed_prefix(inner, child),
            }
        }
        ContentModel::Choice(parts) => {
            // Usable only if every alternative gives the same offset.
            let offsets: Vec<Option<usize>> =
                parts.iter().map(|p| fixed_prefix(p, child)).collect();
            let first = offsets.first().copied().flatten()?;
            offsets
                .iter()
                .all(|o| *o == Some(first))
                .then_some(first)
        }
        _ => None,
    }
}

/// The exact number of elements a model always produces, if fixed.
fn fixed_width(model: &ContentModel) -> Option<usize> {
    match model {
        ContentModel::Name(_) => Some(1),
        ContentModel::Seq(parts) => parts.iter().map(fixed_width).sum(),
        ContentModel::Choice(parts) => {
            let ws: Vec<Option<usize>> = parts.iter().map(fixed_width).collect();
            let first = ws.first().copied().flatten()?;
            ws.iter().all(|w| *w == Some(first)).then_some(first)
        }
        _ => None,
    }
}

/// The two DTDs of Section 3.2, combined under a synthetic `collection`
/// root so that one store can hold both documents (the paper's constraints
/// join across them).
pub fn paper_dtd() -> Dtd {
    Dtd::parse(
        "<!ELEMENT collection (dblp, review)>\n\
         <!ELEMENT dblp (pub)*>\n\
         <!ELEMENT pub (title, aut+)>\n\
         <!ELEMENT aut (name)>\n\
         <!ELEMENT review (track)+>\n\
         <!ELEMENT track (name,rev+)>\n\
         <!ELEMENT rev (name, sub+)>\n\
         <!ELEMENT sub (title, auts+)>\n\
         <!ELEMENT title (#PCDATA)>\n\
         <!ELEMENT auts (name)>\n\
         <!ELEMENT name (#PCDATA)>",
    )
    .expect("paper DTD is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_schema_matches_section_4_1() {
        let schema = RelSchema::from_dtd(&paper_dtd()).unwrap();
        // Six predicates: pub, aut, track, rev, sub, auts.
        let preds: Vec<&str> = schema.preds().map(|(n, _)| n).collect();
        assert_eq!(preds, vec!["aut", "auts", "pub", "rev", "sub", "track"]);
        assert_eq!(schema.pred("pub").unwrap().cols, vec!["title"]);
        assert_eq!(schema.pred("aut").unwrap().cols, vec!["name"]);
        assert_eq!(schema.pred("track").unwrap().cols, vec!["name"]);
        assert_eq!(schema.pred("rev").unwrap().cols, vec!["name"]);
        assert_eq!(schema.pred("sub").unwrap().cols, vec!["title"]);
        assert_eq!(schema.pred("auts").unwrap().cols, vec!["name"]);
        assert_eq!(schema.pred("sub").unwrap().arity(), 4);
        // name/title compacted; collection/dblp/review dropped.
        assert!(schema.is_compacted("name"));
        assert!(schema.is_compacted("title"));
        assert!(schema.is_dropped("dblp"));
        assert!(schema.is_dropped("review"));
        assert!(schema.is_dropped("collection"));
        assert_eq!(schema.root(), "collection");
    }

    #[test]
    fn repeated_pcdata_child_stays_predicate() {
        // keywords can repeat: must not be compacted.
        let dtd = Dtd::parse(
            "<!ELEMENT doc (item)*>\n<!ELEMENT item (kw+, label)>\n\
             <!ELEMENT kw (#PCDATA)>\n<!ELEMENT label (#PCDATA)>",
        )
        .unwrap();
        let s = RelSchema::from_dtd(&dtd).unwrap();
        assert!(s.pred("kw").is_some());
        assert!(s.is_compacted("label"));
        assert_eq!(s.pred("item").unwrap().cols, vec!["label"]);
    }

    #[test]
    fn optional_pcdata_child_stays_predicate() {
        let dtd = Dtd::parse(
            "<!ELEMENT doc (item)*>\n<!ELEMENT item (note?)>\n<!ELEMENT note (#PCDATA)>",
        )
        .unwrap();
        let s = RelSchema::from_dtd(&dtd).unwrap();
        assert!(s.pred("note").is_some(), "no nullable columns");
        assert!(s.pred("item").unwrap().cols.is_empty());
    }

    #[test]
    fn position_offsets() {
        let dtd = paper_dtd();
        let s = RelSchema::from_dtd(&dtd).unwrap();
        // track = (name, rev+): rev[n] is element child n+1.
        assert_eq!(s.position_offset(&dtd, "track", "rev"), Some(1));
        assert_eq!(s.position_offset(&dtd, "review", "track"), Some(0));
        assert_eq!(s.position_offset(&dtd, "rev", "sub"), Some(1));
        assert_eq!(s.position_offset(&dtd, "pub", "aut"), Some(1));
        assert_eq!(s.position_offset(&dtd, "pub", "title"), Some(0));
        assert_eq!(s.position_offset(&dtd, "track", "zzz"), None);
    }

    #[test]
    fn ambiguous_root_rejected() {
        let dtd = Dtd::parse("<!ELEMENT a (#PCDATA)>\n<!ELEMENT b (#PCDATA)>").unwrap();
        assert!(RelSchema::from_dtd(&dtd).is_err());
    }

    #[test]
    fn choice_children_not_compacted() {
        let dtd = Dtd::parse(
            "<!ELEMENT doc (item)*>\n<!ELEMENT item (a | b)>\n\
             <!ELEMENT a (#PCDATA)>\n<!ELEMENT b (#PCDATA)>",
        )
        .unwrap();
        let s = RelSchema::from_dtd(&dtd).unwrap();
        assert!(s.pred("a").is_some());
        assert!(s.pred("b").is_some());
    }

    #[test]
    fn nested_singleton_containers_dropped() {
        let dtd = Dtd::parse(
            "<!ELEMENT root (wrap)>\n<!ELEMENT wrap (item*)>\n\
             <!ELEMENT item (label)>\n<!ELEMENT label (#PCDATA)>",
        )
        .unwrap();
        let s = RelSchema::from_dtd(&dtd).unwrap();
        assert!(s.is_dropped("root"));
        assert!(s.is_dropped("wrap"));
        assert!(s.pred("item").is_some());
    }
}

//! XPathLog → Datalog compilation (Section 4.2).
//!
//! Path expressions "generate chains of conditions over the predicates
//! corresponding to the node types traversed": each step onto a predicate
//! element emits an atom whose third argument (parent id) joins with the
//! enclosing element's first argument (id); steps onto compacted PCDATA
//! children resolve to the container atom's value column.

use crate::schema::RelSchema;
use std::collections::{HashMap, HashSet};
use std::fmt;
use xic_datalog::{Aggregate, Atom, Denial, Literal, Term};
use xic_simplify::{reduce, Reduced};
use xic_xml::Dtd;
use xic_xpathlog::{
    normalize, AggFunc, LDenial, LFormula, LOperand, LPath, LStart, LStep, LTest, NormalDenial,
};

/// Constraint mapping failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// A comparison or negation uses a variable never bound by a path.
    UnboundVar(String),
    /// The construct has no sound relational translation under this
    /// schema.
    Unsupported(String),
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::UnboundVar(v) => write!(f, "variable {v} is never bound by a path"),
            MapError::Unsupported(m) => write!(f, "unsupported construct: {m}"),
        }
    }
}

impl std::error::Error for MapError {}

/// Maps a list of XPathLog denials to Datalog denials (normalizing
/// disjunctions away first, then reducing each result). Trivially
/// satisfied denials are dropped.
pub fn map_denials(
    denials: &[LDenial],
    schema: &RelSchema,
    dtd: &Dtd,
) -> Result<Vec<Denial>, MapError> {
    let mut out = Vec::new();
    for d in denials {
        for nd in normalize(d) {
            if let Some(mapped) = map_constraint(&nd, schema, dtd)? {
                out.push(mapped);
            }
        }
    }
    Ok(out)
}

/// Maps one disjunction-free denial. Returns `None` when the body reduces
/// to an unsatisfiable condition (the denial always holds).
pub fn map_constraint(
    nd: &NormalDenial,
    schema: &RelSchema,
    dtd: &Dtd,
) -> Result<Option<Denial>, MapError> {
    let mut m = Mapper {
        schema,
        dtd,
        gen: 0,
        env: HashMap::new(),
        placeholders: HashSet::new(),
        literals: Vec::new(),
    };
    // Binding-producing conjuncts first (conjunction is commutative), so
    // comparisons and negations see every variable.
    let (paths, aggs, comps, nots) = partition(nd)?;
    for p in &paths {
        m.formula(p, &Ctx::Unanchored)?;
    }
    for a in &aggs {
        m.formula(a, &Ctx::Unanchored)?;
    }
    for c in &comps {
        m.formula(c, &Ctx::Unanchored)?;
    }
    for n in &nots {
        m.formula(n, &Ctx::Unanchored)?;
    }
    let placeholders = m.placeholders.clone();
    match reduce(&Denial::new(m.literals)) {
        Reduced::Denial(d) => Ok(Some(prune_implied_atoms(d, &placeholders, schema, dtd))),
        Reduced::TriviallySatisfied => Ok(None),
    }
}

/// Drops atoms whose existence is implied by their children's atoms — the
/// paper's Example 3 omits the `pub` atom because an `aut`'s parent is
/// always a `pub`. An atom `p(I, P, Par, C…)` is removable when `P`,
/// `Par` and every `C` are placeholders used nowhere else, and every other
/// occurrence of `I` is the parent column of an atom whose element can
/// only occur inside `p` according to the DTD (and there is at least one
/// such child atom).
fn prune_implied_atoms(
    denial: Denial,
    placeholders: &HashSet<String>,
    schema: &RelSchema,
    dtd: &Dtd,
) -> Denial {
    // Occurrence counts of every variable across the whole denial
    // (aggregates included).
    let mut occurrences: HashMap<String, usize> = HashMap::new();
    let count_atom = |a: &Atom, occ: &mut HashMap<String, usize>| {
        for t in &a.args {
            if let Term::Var(v) = t {
                *occ.entry(v.clone()).or_insert(0) += 1;
            }
        }
    };
    for l in &denial.body {
        match l {
            Literal::Pos(a) | Literal::Neg(a) => count_atom(a, &mut occurrences),
            Literal::Comp(x, _, y) => {
                for t in [x, y] {
                    if let Term::Var(v) = t {
                        *occurrences.entry(v.clone()).or_insert(0) += 1;
                    }
                }
            }
            Literal::Agg(agg, _, t) => {
                for a in &agg.pattern {
                    count_atom(a, &mut occurrences);
                }
                for term in agg.term.iter().chain(std::iter::once(t)) {
                    if let Term::Var(v) = term {
                        *occurrences.entry(v.clone()).or_insert(0) += 1;
                    }
                }
            }
        }
    }
    let unused_placeholder = |t: &Term| match t {
        Term::Var(v) => placeholders.contains(v) && occurrences.get(v) == Some(&1),
        _ => false,
    };
    // `child` can only occur inside `parent` elements.
    let unique_parent = |child: &str, parent: &str| -> bool {
        let mut parents = Vec::new();
        for e in dtd.elements() {
            let mut m = Vec::new();
            crate::schema::mentioned_names(&e.model, &mut m);
            if m.iter().any(|x| x == child) {
                parents.push(e.name.clone());
            }
        }
        parents.len() == 1 && parents[0] == parent
    };

    let mut keep: Vec<bool> = vec![true; denial.body.len()];
    for (i, l) in denial.body.iter().enumerate() {
        let Literal::Pos(a) = l else { continue };
        if a.args.len() < 3 || schema.pred(&a.pred).is_none() {
            continue;
        }
        let Term::Var(id) = &a.args[0] else { continue };
        if !a.args[1..].iter().all(unused_placeholder) {
            continue;
        }
        // Every other occurrence of the id must be as the parent column of
        // a kept positive atom whose element has this atom's predicate as
        // its unique parent.
        let total = occurrences.get(id).copied().unwrap_or(0);
        let mut explained = 1usize; // this atom's own id column
        let mut has_child = false;
        for (j, other) in denial.body.iter().enumerate() {
            if j == i {
                continue;
            }
            if let Literal::Pos(b) = other {
                for (k, t) in b.args.iter().enumerate() {
                    if t.var_name() == Some(id) {
                        if k == 2 && unique_parent(&b.pred, &a.pred) {
                            explained += 1;
                            has_child = true;
                        } else {
                            explained = usize::MAX;
                        }
                    }
                }
            } else if other.vars().iter().any(|v| v == id) {
                explained = usize::MAX;
            }
            if explained == usize::MAX {
                break;
            }
        }
        if has_child && explained == total {
            keep[i] = false;
        }
    }
    Denial::new(
        denial
            .body
            .into_iter()
            .zip(keep)
            .filter_map(|(l, k)| k.then_some(l))
            .collect(),
    )
}

#[allow(clippy::type_complexity)]
fn partition(
    nd: &NormalDenial,
) -> Result<
    (
        Vec<&LFormula>,
        Vec<&LFormula>,
        Vec<&LFormula>,
        Vec<&LFormula>,
    ),
    MapError,
> {
    let mut paths = Vec::new();
    let mut aggs = Vec::new();
    let mut comps = Vec::new();
    let mut nots = Vec::new();
    for c in &nd.conjuncts {
        match c {
            LFormula::Path(_) => paths.push(c),
            LFormula::Agg(..) => aggs.push(c),
            LFormula::Comp(..) => comps.push(c),
            LFormula::Not(_) => nots.push(c),
            LFormula::And(_) | LFormula::Or(_) => {
                return Err(MapError::Unsupported(
                    "denial is not in disjunction-free normal form".to_string(),
                ))
            }
            LFormula::Position(_) => {
                return Err(MapError::Unsupported(
                    "positional qualifier outside a step".to_string(),
                ))
            }
        }
    }
    Ok((paths, aggs, comps, nots))
}

/// What a translated variable denotes.
#[derive(Debug, Clone)]
enum Binding {
    /// A node id together with its predicate.
    Node { term: Term, pred: String },
    /// A PCDATA value.
    Value(Term),
}

impl Binding {
    fn term(&self) -> &Term {
        match self {
            Binding::Node { term, .. } | Binding::Value(term) => term,
        }
    }
}

/// Navigation context while walking a path.
#[derive(Debug, Clone)]
enum Ctx {
    /// Below an unconstrained ancestor (document root / after `//`).
    Unanchored,
    /// A dropped container element (e.g. `review`): structurally present
    /// but not represented relationally.
    Dropped(String),
    /// A predicate node: its id term, predicate name and the index of its
    /// atom in the literal list.
    Node {
        id: Term,
        pred: String,
        atom_idx: usize,
    },
}

/// The result of translating a path.
#[derive(Debug, Clone)]
enum PathVal {
    /// Ends on a predicate element.
    Node {
        id: Term,
        pred: String,
        atom_idx: usize,
    },
    /// Ends on a compacted child element (awaiting `text()`).
    Field { atom_idx: usize, col: usize },
    /// Ends on a text value.
    Value(Term),
    /// Ends inside dropped structure (pure existence, no data).
    Dropped,
}

struct Mapper<'a> {
    schema: &'a RelSchema,
    dtd: &'a Dtd,
    gen: u64,
    env: HashMap<String, Binding>,
    /// Variable names that are anonymous placeholders (replaceable).
    placeholders: HashSet<String>,
    literals: Vec<Literal>,
}

impl Mapper<'_> {
    fn fresh(&mut self) -> String {
        let n = self.gen;
        self.gen += 1;
        let name = format!("_m{n}");
        self.placeholders.insert(name.clone());
        name
    }

    fn operand(&self, op: &LOperand) -> Result<Term, MapError> {
        match op {
            LOperand::Var(v) => self
                .env
                .get(v)
                .map(|b| b.term().clone())
                .ok_or_else(|| MapError::UnboundVar(v.clone())),
            LOperand::Str(s) => Ok(Term::str(s.clone())),
            LOperand::Int(i) => Ok(Term::int(*i)),
        }
    }

    fn formula(&mut self, f: &LFormula, ctx: &Ctx) -> Result<(), MapError> {
        match f {
            LFormula::Path(p) => {
                self.path(p, ctx)?;
                Ok(())
            }
            LFormula::Comp(a, op, b) => {
                let ta = self.operand(a)?;
                let tb = self.operand(b)?;
                self.literals.push(Literal::Comp(ta, *op, tb));
                Ok(())
            }
            LFormula::And(parts) => {
                for p in parts {
                    self.formula(p, ctx)?;
                }
                Ok(())
            }
            LFormula::Or(_) => Err(MapError::Unsupported(
                "disjunction must be normalized away before mapping".to_string(),
            )),
            LFormula::Not(inner) => self.negated(inner, ctx),
            LFormula::Agg(agg, op, t) => {
                let threshold = self.operand(t)?;
                let lit = self.aggregate(agg)?;
                self.literals.push(Literal::Agg(lit, *op, threshold));
                Ok(())
            }
            LFormula::Position(_) => Err(MapError::Unsupported(
                "positional qualifier outside a step".to_string(),
            )),
        }
    }

    fn negated(&mut self, inner: &LFormula, ctx: &Ctx) -> Result<(), MapError> {
        match inner {
            LFormula::Comp(a, op, b) => {
                let ta = self.operand(a)?;
                let tb = self.operand(b)?;
                self.literals.push(Literal::Comp(ta, op.negate(), tb));
                Ok(())
            }
            LFormula::Path(p) => {
                // A negated existential is expressible only as a single
                // safe negated atom.
                let before = self.literals.len();
                let saved_env = self.env.clone();
                self.path(p, ctx)?;
                let added: Vec<Literal> = self.literals.split_off(before);
                self.env = saved_env;
                match added.as_slice() {
                    [Literal::Pos(atom)] => {
                        // Safety: every variable must be bound elsewhere
                        // or be a placeholder… placeholders make the
                        // negation unsafe (¬∃ over a column), reject them.
                        for v in atom.vars() {
                            if self.placeholders.contains(&v) {
                                return Err(MapError::Unsupported(
                                    "negated path with unconstrained columns (¬∃) is not \
                                     expressible as a safe negated atom"
                                        .to_string(),
                                ));
                            }
                        }
                        self.literals.push(Literal::Neg(atom.clone()));
                        Ok(())
                    }
                    _ => Err(MapError::Unsupported(
                        "negated paths must map to exactly one atom".to_string(),
                    )),
                }
            }
            other => Err(MapError::Unsupported(format!(
                "negation of {other} is not supported"
            ))),
        }
    }

    fn aggregate(&mut self, agg: &xic_xpathlog::LAgg) -> Result<Aggregate, MapError> {
        // Translate the aggregate path in a scope that sees every outer
        // binding (outer variables are correlated) plus the declared group
        // variables; bindings *introduced* inside the aggregate and not in
        // the group list are local and renamed apart afterwards.
        let outer_env = self.env.clone();
        for g in &agg.group {
            if !outer_env.contains_key(g) {
                // Shared fresh variable: register in the outer scope so a
                // second aggregate over the same group joins on it
                // (Example 2's R).
                self.env
                    .insert(g.clone(), Binding::Value(Term::var(g.clone())));
            }
        }
        let before = self.literals.len();
        let result = self.path(&agg.path, &Ctx::Unanchored);
        let local_final = self.env.clone();
        // Restore the outer scope (keeping newly registered group vars).
        self.env.retain(|name, _| {
            outer_env.contains_key(name) || agg.group.contains(name)
        });
        let added: Vec<Literal> = self.literals.split_off(before);
        let val = result?;
        // Rename aggregate-introduced non-group variables apart so they
        // never collide with outer variables of the same name.
        let mut rename = xic_datalog::Subst::new();
        for (name, b) in &local_final {
            if agg.group.contains(name) || outer_env.contains_key(name) {
                continue;
            }
            if let Term::Var(v) = b.term() {
                rename.bind(v, &Term::var(format!("{v}__ag{}", self.gen)));
                self.gen += 1;
            }
        }
        let mut pattern = Vec::new();
        for l in added {
            match rename.apply_literal(&l) {
                Literal::Pos(a) => pattern.push(a),
                other => {
                    return Err(MapError::Unsupported(format!(
                        "aggregate paths must map to atoms only, found {other}"
                    )))
                }
            }
        }
        let counted: Option<Term> = match (&agg.func, &val) {
            (AggFunc::Cnt, _) => None,
            (_, PathVal::Node { id, .. }) => Some(rename.apply_term(id)),
            (_, PathVal::Field { atom_idx: _, col: _ }) => {
                return Err(MapError::Unsupported(
                    "aggregate over a compacted element requires text()".to_string(),
                ))
            }
            (_, PathVal::Value(t)) => Some(rename.apply_term(t)),
            (_, PathVal::Dropped) => {
                return Err(MapError::Unsupported(
                    "aggregate over dropped structure".to_string(),
                ))
            }
        };
        Ok(Aggregate::new(agg.func, counted, pattern))
    }

    /// Translates a path (absolute, variable-rooted, or relative to
    /// `rel_ctx`), emitting atoms and bindings. Handles the
    /// compacted-child → `text()` transitions.
    fn path(&mut self, p: &LPath, rel_ctx: &Ctx) -> Result<PathVal, MapError> {
        self.walk_path(p, rel_ctx)
    }

    fn step(&mut self, ctx: &Ctx, step: &LStep) -> Result<PathVal, MapError> {
        match &step.test {
            LTest::Attr(_) => Err(MapError::Unsupported(
                "attributes are not part of the relational mapping (the paper's DTDs are \
                 attribute-free)"
                    .to_string(),
            )),
            LTest::Text => {
                // Only valid right after a compacted child step; the field
                // slot becomes the value.
                Err(MapError::Unsupported(
                    "text() outside a compacted-child step".to_string(),
                ))
            }
            LTest::Elem(name) => self.elem_step(ctx, step, name),
        }
    }

    fn elem_step(&mut self, ctx: &Ctx, step: &LStep, name: &str) -> Result<PathVal, MapError> {
        if self.schema.is_dropped(name) {
            if step.binding.is_some() || !step.qualifiers.is_empty() {
                return Err(MapError::Unsupported(format!(
                    "container element <{name}> has no relational representation; bindings \
                     and qualifiers on it are not expressible"
                )));
            }
            return Ok(PathVal::Dropped);
        }
        if self.schema.is_compacted(name) {
            let Ctx::Node { id: _, pred, atom_idx } = ctx else {
                return Err(MapError::Unsupported(format!(
                    "compacted element <{name}> reached without a concrete container"
                )));
            };
            if *atom_idx == usize::MAX {
                return Err(MapError::Unsupported(format!(
                    "compacted child <{name}> of a variable-rooted node cannot be re-read; \
                     bind it where the node is first selected"
                )));
            }
            let col = self
                .schema
                .pred(pred)
                .and_then(|i| i.col_index(name))
                .ok_or_else(|| {
                    MapError::Unsupported(format!("<{name}> is not a column of {pred}"))
                })?;
            if step.descendant {
                return Err(MapError::Unsupported(
                    "descendant step onto a compacted child".to_string(),
                ));
            }
            if !step.qualifiers.is_empty() {
                return Err(MapError::Unsupported(
                    "qualifiers on compacted children are not supported".to_string(),
                ));
            }
            if let Some(v) = &step.binding {
                // Binding the element node itself: in the relational model
                // the compacted node has no identity; bind the value, which
                // is what every sensible constraint means.
                let slot = PathVal::Field {
                    atom_idx: *atom_idx,
                    col,
                };
                let term = self.field_bind(*atom_idx, col, v)?;
                let _ = slot;
                return Ok(PathVal::Value(term));
            }
            return Ok(PathVal::Field {
                atom_idx: *atom_idx,
                col,
            });
        }
        // A predicate element.
        let Some(info) = self.schema.pred(name) else {
            return Err(MapError::Unsupported(format!(
                "element <{name}> is not declared in the schema"
            )));
        };
        if step.descendant && matches!(ctx, Ctx::Node { .. }) {
            return Err(MapError::Unsupported(
                "descendant steps below a bound node lose the ancestor link in the \
                 relational mapping; use child steps"
                    .to_string(),
            ));
        }
        let parent_term = match ctx {
            Ctx::Node { id, .. } => id.clone(),
            Ctx::Unanchored | Ctx::Dropped(_) => Term::var(self.fresh()),
        };
        let id_term = match &step.binding {
            Some(v) => self.bind_node_var(v, name)?,
            None => Term::var(self.fresh()),
        };
        let mut args = vec![id_term.clone(), Term::var(self.fresh()), parent_term];
        for _ in &info.cols {
            args.push(Term::var(self.fresh()));
        }
        let atom_idx = self.literals.len();
        self.literals
            .push(Literal::Pos(Atom::new(name.to_string(), args)));

        // Qualifiers.
        let node_ctx = Ctx::Node {
            id: id_term.clone(),
            pred: name.to_string(),
            atom_idx,
        };
        for q in &step.qualifiers {
            match q {
                LFormula::Position(op) => {
                    let pos_term = self.position_term(ctx, name, op)?;
                    self.set_or_eq(atom_idx, 1, pos_term)?;
                }
                other => {
                    self.qualifier(other, &node_ctx)?;
                }
            }
        }
        Ok(PathVal::Node {
            id: id_term,
            pred: name.to_string(),
            atom_idx,
        })
    }

    /// Translates a qualifier formula: paths are relative to `node_ctx`;
    /// text() resolution is handled by rewriting `name/text()` pairs here.
    fn qualifier(&mut self, f: &LFormula, node_ctx: &Ctx) -> Result<(), MapError> {
        match f {
            LFormula::Path(p) => {
                self.walk_path(p, node_ctx)?;
                Ok(())
            }
            LFormula::And(parts) => {
                for p in parts {
                    self.qualifier(p, node_ctx)?;
                }
                Ok(())
            }
            LFormula::Comp(a, op, b) => {
                let ta = self.operand(a)?;
                let tb = self.operand(b)?;
                self.literals.push(Literal::Comp(ta, *op, tb));
                Ok(())
            }
            LFormula::Not(inner) => self.negated(inner, node_ctx),
            other => self.formula(other, node_ctx),
        }
    }

    /// Walks a path step by step so `Field` → `text()` transitions work.
    fn walk_path(&mut self, p: &LPath, node_ctx: &Ctx) -> Result<PathVal, MapError> {
        let mut ctx = match &p.start {
            LStart::Rel => node_ctx.clone(),
            LStart::Root => Ctx::Unanchored,
            LStart::Var(v) => match self.env.get(v) {
                Some(Binding::Node { term, pred }) => Ctx::Node {
                    id: term.clone(),
                    pred: pred.clone(),
                    atom_idx: usize::MAX,
                },
                Some(Binding::Value(_)) => {
                    return Err(MapError::Unsupported(format!(
                        "cannot navigate from value variable {v}"
                    )))
                }
                None => return Err(MapError::UnboundVar(v.clone())),
            },
        };
        let mut val: Option<PathVal> = match &ctx {
            Ctx::Node { id, pred, atom_idx } if p.steps.is_empty() => Some(PathVal::Node {
                id: id.clone(),
                pred: pred.clone(),
                atom_idx: *atom_idx,
            }),
            _ => None,
        };
        for step in &p.steps {
            // text() after a compacted field.
            if step.test == LTest::Text {
                let Some(PathVal::Field { atom_idx, col }) = &val else {
                    return Err(MapError::Unsupported(
                        "text() is only supported on compacted PCDATA children".to_string(),
                    ));
                };
                let term = match &step.binding {
                    Some(v) => self.field_bind(*atom_idx, *col, v)?,
                    None => self.field_term(*atom_idx, *col),
                };
                val = Some(PathVal::Value(term));
                continue;
            }
            let v = self.step(&ctx, step)?;
            ctx = match &v {
                PathVal::Node { id, pred, atom_idx } => Ctx::Node {
                    id: id.clone(),
                    pred: pred.clone(),
                    atom_idx: *atom_idx,
                },
                PathVal::Dropped => match &step.test {
                    LTest::Elem(n) => Ctx::Dropped(n.clone()),
                    _ => Ctx::Unanchored,
                },
                _ => ctx,
            };
            val = Some(v);
        }
        val.ok_or_else(|| MapError::Unsupported("empty path".to_string()))
    }

    /// Computes the `Pos` column value for a positional qualifier `[n]`.
    fn position_term(&mut self, parent_ctx: &Ctx, name: &str, op: &LOperand) -> Result<Term, MapError> {
        match op {
            LOperand::Int(n) => {
                let parent_name: String = match parent_ctx {
                    Ctx::Node { pred, .. } => pred.clone(),
                    Ctx::Dropped(p) => p.clone(),
                    Ctx::Unanchored => {
                        // Unique parent from the DTD, if any.
                        let parents: Vec<String> = self
                            .dtd
                            .elements()
                            .iter()
                            .filter(|e| {
                                let mut m = Vec::new();
                                crate::schema::mentioned_names(&e.model, &mut m);
                                m.iter().any(|x| x == name)
                            })
                            .map(|e| e.name.clone())
                            .collect();
                        match parents.as_slice() {
                            [p] => p.clone(),
                            _ => {
                                return Err(MapError::Unsupported(format!(
                                    "positional qualifier on <{name}> with ambiguous parent"
                                )))
                            }
                        }
                    }
                };
                let offset = self
                    .schema
                    .position_offset(self.dtd, &parent_name, name)
                    .ok_or_else(|| {
                        MapError::Unsupported(format!(
                            "cannot derive a fixed position offset for <{name}> in \
                             <{parent_name}>"
                        ))
                    })?;
                Ok(Term::int(offset + n))
            }
            LOperand::Var(v) => {
                // position() -> V style: the variable denotes the Pos
                // column directly (Section 4.2).
                match self.env.get(v) {
                    Some(b) => Ok(b.term().clone()),
                    None => {
                        let t = Term::var(v.clone());
                        self.env.insert(v.clone(), Binding::Value(t.clone()));
                        Ok(t)
                    }
                }
            }
            LOperand::Str(s) => Err(MapError::Unsupported(format!(
                "string {s:?} as positional qualifier"
            ))),
        }
    }

    fn bind_node_var(&mut self, v: &str, pred: &str) -> Result<Term, MapError> {
        if let Some(existing) = self.env.get(v) {
            return Ok(existing.term().clone());
        }
        let t = Term::var(v.to_string());
        self.env.insert(
            v.to_string(),
            Binding::Node {
                term: t.clone(),
                pred: pred.to_string(),
            },
        );
        Ok(t)
    }

    fn field_term(&self, atom_idx: usize, col: usize) -> Term {
        match &self.literals[atom_idx] {
            Literal::Pos(a) => a.args[col].clone(),
            other => unreachable!("field on non-atom literal {other}"),
        }
    }

    /// Binds variable `v` to the field; replaces the placeholder column
    /// variable when still untouched, otherwise emits an equality.
    fn field_bind(&mut self, atom_idx: usize, col: usize, v: &str) -> Result<Term, MapError> {
        let current = self.field_term(atom_idx, col);
        if let Some(existing) = self.env.get(v).map(|b| b.term().clone()) {
            // Join with an already-bound variable.
            self.set_or_eq(atom_idx, col, existing.clone())?;
            return Ok(existing);
        }
        let term = Term::var(v.to_string());
        match &current {
            Term::Var(name) if self.placeholders.contains(name) => {
                self.replace_arg(atom_idx, col, term.clone());
            }
            _ => self
                .literals
                .push(Literal::Comp(current, xic_datalog::CompOp::Eq, term.clone())),
        }
        self.env
            .insert(v.to_string(), Binding::Value(term.clone()));
        Ok(term)
    }

    fn set_or_eq(&mut self, atom_idx: usize, col: usize, term: Term) -> Result<(), MapError> {
        let current = self.field_term(atom_idx, col);
        match &current {
            Term::Var(name) if self.placeholders.contains(name) => {
                self.replace_arg(atom_idx, col, term);
            }
            _ => self
                .literals
                .push(Literal::Comp(current, xic_datalog::CompOp::Eq, term)),
        }
        Ok(())
    }

    fn replace_arg(&mut self, atom_idx: usize, col: usize, term: Term) {
        if let Literal::Pos(a) = &mut self.literals[atom_idx] {
            a.args[col] = term;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::paper_dtd;
    use xic_simplify::variants;
    use xic_xpathlog::parse_denial as parse_l;

    fn map_one(src: &str) -> Vec<Denial> {
        let dtd = paper_dtd();
        let schema = RelSchema::from_dtd(&dtd).unwrap();
        let d = parse_l(src).unwrap();
        map_denials(&[d], &schema, &dtd).unwrap()
    }

    #[test]
    fn paper_example_3_conflict_of_interest() {
        let out = map_one(
            "<- //rev[name/text() -> R]/sub/auts/name/text() -> A \
             & (A = R | //pub[aut/name/text() -> A & aut/name/text() -> R])",
        );
        assert_eq!(out.len(), 2, "{out:?}");
        let want1 =
            xic_datalog::parse_denial("<- rev(Ir,_,_,R) & sub(Is,_,Ir,_) & auts(_,_,Is,R)")
                .unwrap();
        let want2 = xic_datalog::parse_denial(
            "<- rev(Ir,_,_,R) & sub(Is,_,Ir,_) & auts(_,_,Is,A) & aut(_,_,Ip,A) & aut(_,_,Ip,R)",
        )
        .unwrap();
        assert!(
            out.iter().any(|d| variants(d, &want1)),
            "missing {want1}\ngot {out:#?}"
        );
        assert!(
            out.iter().any(|d| variants(d, &want2)),
            "missing {want2}\ngot {out:#?}"
        );
    }

    #[test]
    fn duckburg_example() {
        let out = map_one(
            "<- //pub[title/text() -> T & T = \"Duckburg tales\"]/aut/name/text() -> N \
             & N = \"Goofy\"",
        );
        assert_eq!(out.len(), 1);
        let want = xic_datalog::parse_denial(
            "<- pub(Ip, _, _, \"Duckburg tales\") & aut(_, _, Ip, \"Goofy\")",
        )
        .unwrap();
        assert!(variants(&out[0], &want), "got {}", out[0]);
    }

    #[test]
    fn paper_example_2_aggregates() {
        let out = map_one(
            "<- cntd{[R]; //track[rev/name/text() -> R]} >= 3 \
             & cntd{[R]; //rev[name/text() -> R]/sub} > 10",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        let d = &out[0];
        assert_eq!(d.body.len(), 2, "{d}");
        // Both aggregates share the group variable R.
        let s = d.to_string();
        assert!(s.contains("cntd("), "{s}");
        let want = xic_datalog::parse_denial(
            "<- cntd(It; track(It,_,_,_), rev(_,_,It,R)) >= 3 \
             & cntd(Is; rev(Ir,_,_,R), sub(Is,_,Ir,_)) > 10",
        )
        .unwrap();
        assert!(variants(d, &want), "got {d}\nwant {want}");
    }

    #[test]
    fn example_7_max_reviews_per_track() {
        let out = map_one("<- //rev -> R & cnt{R/sub} > 4");
        assert_eq!(out.len(), 1);
        let want =
            xic_datalog::parse_denial("<- rev(Ir,_,_,_) & cnt(; sub(_,_,Ir,_)) > 4").unwrap();
        assert!(variants(&out[0], &want), "got {}", out[0]);
    }

    #[test]
    fn positional_qualifiers_use_offsets() {
        // /collection/review/track[2]/rev[5]: track = (name, rev+) means
        // rev[5] is element child 6; review = (track)+ keeps track[2] at 2.
        let out = map_one(
            "<- /collection/review/track[2]/rev[5]/name/text() -> N & N = \"Goofy\"",
        );
        assert_eq!(out.len(), 1);
        let want = xic_datalog::parse_denial(
            "<- track(It, 2, _, _) & rev(_, 6, It, \"Goofy\")",
        )
        .unwrap();
        assert!(variants(&out[0], &want), "got {}", out[0]);
    }

    #[test]
    fn negated_comparison() {
        let out = map_one(
            "<- //pub[title/text() -> T]/aut/name/text() -> N & not T = N",
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].to_string().contains("!="), "{}", out[0]);
    }

    #[test]
    fn unbound_variable_rejected() {
        let dtd = paper_dtd();
        let schema = RelSchema::from_dtd(&dtd).unwrap();
        let d = parse_l("<- //pub[title/text() -> T] & T = Z").unwrap();
        assert_eq!(
            map_denials(&[d], &schema, &dtd).unwrap_err(),
            MapError::UnboundVar("Z".to_string())
        );
    }

    #[test]
    fn attributes_unsupported() {
        let dtd = paper_dtd();
        let schema = RelSchema::from_dtd(&dtd).unwrap();
        let d = parse_l("<- //pub/@year -> Y & Y = \"2006\"").unwrap();
        assert!(matches!(
            map_denials(&[d], &schema, &dtd),
            Err(MapError::Unsupported(_))
        ));
    }

    #[test]
    fn variable_rooted_continuation() {
        let out = map_one(
            "<- //rev[name/text() -> R] -> V & V/sub/title/text() -> T & T = \"X\"",
        );
        assert_eq!(out.len(), 1);
        let want = xic_datalog::parse_denial(
            "<- rev(V, _, _, R) & sub(_, _, V, \"X\")",
        )
        .unwrap();
        assert!(variants(&out[0], &want), "got {}", out[0]);
    }

    #[test]
    fn trivially_satisfied_constraint_dropped() {
        let out = map_one("<- //pub[title/text() -> T] & T != T");
        assert!(out.is_empty(), "{out:?}");
    }
}

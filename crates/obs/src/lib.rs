//! Zero-dependency observability for the XML integrity checker:
//! hierarchical **phase timers**, monotonic **counters**, and a
//! JSON-serializable [`Snapshot`] of both.
//!
//! This crate sits below every other `xic-*` crate (it depends on nothing
//! but `std`), so the XPath/XQuery evaluators, the simplifier, and the
//! [`Checker`] façade can all report into one shared, thread-local sink.
//! See `DESIGN.md` § "System inventory" for where it fits in the overall
//! architecture.
//!
//! # Design
//!
//! Instrumentation must cost next to nothing when it is not being read:
//!
//! * **Counters** are a fixed, enum-indexed array of [`Cell<u64>`] in
//!   thread-local storage — one predictable-index add per event, no
//!   hashing, no locking, no allocation.
//! * **Phase timers** take an [`Instant`] only at phase *boundaries*
//!   (guard creation and drop), never per item. Nested guards produce
//!   hierarchical slash-joined paths: if the checker opens `"compile"`
//!   and the simplifier then opens `"after"`, the inner span is recorded
//!   as `compile/after`.
//!
//! State is per-thread. Benchmarks and the [`Checker`] run
//! single-threaded, so a thread's snapshot is the whole story; tests that
//! run in parallel each see their own clean sink.
//!
//! # Example
//!
//! ```
//! use xic_obs as obs;
//!
//! obs::reset();
//! {
//!     let _outer = obs::phase("compile");
//!     let _inner = obs::phase("optimize");
//!     obs::incr(obs::Counter::DenialsSubsumed);
//! }
//! let snap = obs::snapshot();
//! assert_eq!(snap.counter(obs::Counter::DenialsSubsumed), 1);
//! assert_eq!(snap.phase("compile/optimize").unwrap().calls, 1);
//! let json = snap.to_json();
//! assert_eq!(obs::Snapshot::from_json(&json).unwrap(), snap);
//! ```
//!
//! [`Checker`]: ../xicheck/struct.Checker.html

use std::cell::{Cell, RefCell};
use std::time::Instant;

pub mod json;

/// The monotonic event counters tracked across the system.
///
/// Each variant indexes a fixed slot in the thread-local counter array;
/// adding a variant here is all that is needed to start counting a new
/// event kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// `Checker::try_update` found the constraint pattern already compiled.
    PatternCacheHit,
    /// `Checker::try_update` had to compile the pattern from scratch.
    PatternCacheMiss,
    /// `Document::elements_named` answered from the element-name index.
    NameIndexHit,
    /// `Document::elements_named` fell back to a full tree scan.
    NameIndexMiss,
    /// Nodes considered by XPath step evaluation (axis candidates).
    XpathNodesVisited,
    /// Bindings iterated by XQuery FLWOR / quantifier evaluation.
    XqueryBindingsVisited,
    /// Denial clauses produced by the `After` unfolding phase.
    ClausesExpanded,
    /// Denial clauses remaining after the `Optimize` phase.
    ClausesSurviving,
    /// Denials pruned by θ-subsumption during `Optimize`.
    DenialsSubsumed,
    /// Differential-fuzzing cases executed by `xic-difftest`.
    DifftestCase,
    /// Oracle discrepancies detected by `xic-difftest`.
    DifftestDiscrepancy,
    /// Successful greedy shrink steps taken while minimizing a reproducer.
    DifftestShrinkStep,
    /// `insert-before` operations in the generated statement mix.
    DifftestOpInsertBefore,
    /// `insert-after` operations in the generated statement mix.
    DifftestOpInsertAfter,
    /// `append` operations in the generated statement mix.
    DifftestOpAppend,
    /// `remove` operations in the generated statement mix.
    DifftestOpRemove,
    /// `update` operations in the generated statement mix.
    DifftestOpUpdate,
    /// `rename` operations in the generated statement mix.
    DifftestOpRename,
    /// The document-order rank cache was (re)built from scratch.
    OrderCacheRebuild,
    /// A document-order sort/dedup answered from cached preorder ranks.
    DocOrderFastSort,
    /// A document-order sort/dedup fell back to path-key recomputation
    /// (cache disabled, or the set contained detached nodes).
    DocOrderPathSort,
    /// `Checker::check_full` fanned constraints out across threads.
    CheckFullParallel,
    /// Records appended to the write-ahead journal (commit + abort).
    JournalAppend,
    /// `fsync` calls issued by the journal (0 when sync is disabled).
    JournalFsync,
    /// `Checker::recover` replays completed from a journal.
    Recovery,
    /// Optimized checks that ran out of `EvalBudget` steps and degraded
    /// to the materialized baseline pass.
    BudgetExhausted,
    /// Panics caught by the checker's `catch_unwind` containment.
    PanicContained,
    /// Atomic checkpoint snapshots durably written (tmp + fsync + rename
    /// + directory fsync all completed).
    CheckpointWritten,
    /// Journal rotations completed: a fresh segment keyed to a new
    /// checkpoint's base checksum started accepting records.
    Rotation,
    /// Recovery attempts that skipped an invalid (corrupt, mismatched or
    /// unreplayable) generation and fell back to an older snapshot/journal
    /// pair.
    RecoveryGenerationFallback,
    /// Journal append/fsync attempts retried after a transient
    /// (`Interrupted`-class) failure.
    JournalRetry,
    /// Group-commit batches flushed by the service writer thread (one
    /// shared fsync per batch; see DESIGN.md row 19).
    GroupCommitBatch,
    /// Statements carried inside group-commit batches (the mean batch
    /// size is this over `group_commit_batches`).
    GroupCommitStatement,
    /// Read snapshots published by the service writer (one per committed
    /// batch, not one per committed statement).
    SnapshotPublish,
    /// Read snapshots handed out to concurrent readers.
    SnapshotRead,
    /// Generated queries cross-checked by the three-way engine oracle
    /// (interpreter vs compiled IR vs naive reference).
    DifftestThreeWayQuery,
    /// Constraints skipped by the static independence analysis: their
    /// read footprint provably misses the statement's write footprint,
    /// so the check cannot change verdict and is not evaluated.
    ChecksSkippedStatic,
    /// Constraints retained (evaluated) after the static independence
    /// analysis — the live subset, plus every constraint whenever the
    /// analysis falls back to "all live".
    ChecksRetainedStatic,
    /// Submissions refused at admission because the service's bounded
    /// queue was full (load shedding; the client should back off).
    RequestShed,
    /// Requests that exceeded their deadline — expired in the queue,
    /// timed out waiting for the ack, or exhausted their deadline's
    /// evaluation budget mid-check.
    RequestTimedOut,
    /// Service transitions into read-only degraded mode (the batch fsync
    /// stayed failed after its bounded retries).
    ServiceDegraded,
    /// Batch-fsync attempts retried by the service after a failure,
    /// before either succeeding or declaring the service degraded.
    FsyncRetry,
}

/// All counters, in snapshot order.
pub const ALL_COUNTERS: [Counter; 42] = [
    Counter::PatternCacheHit,
    Counter::PatternCacheMiss,
    Counter::NameIndexHit,
    Counter::NameIndexMiss,
    Counter::XpathNodesVisited,
    Counter::XqueryBindingsVisited,
    Counter::ClausesExpanded,
    Counter::ClausesSurviving,
    Counter::DenialsSubsumed,
    Counter::DifftestCase,
    Counter::DifftestDiscrepancy,
    Counter::DifftestShrinkStep,
    Counter::DifftestOpInsertBefore,
    Counter::DifftestOpInsertAfter,
    Counter::DifftestOpAppend,
    Counter::DifftestOpRemove,
    Counter::DifftestOpUpdate,
    Counter::DifftestOpRename,
    Counter::OrderCacheRebuild,
    Counter::DocOrderFastSort,
    Counter::DocOrderPathSort,
    Counter::CheckFullParallel,
    Counter::JournalAppend,
    Counter::JournalFsync,
    Counter::Recovery,
    Counter::BudgetExhausted,
    Counter::PanicContained,
    Counter::CheckpointWritten,
    Counter::Rotation,
    Counter::RecoveryGenerationFallback,
    Counter::JournalRetry,
    Counter::GroupCommitBatch,
    Counter::GroupCommitStatement,
    Counter::SnapshotPublish,
    Counter::SnapshotRead,
    Counter::DifftestThreeWayQuery,
    Counter::ChecksSkippedStatic,
    Counter::ChecksRetainedStatic,
    Counter::RequestShed,
    Counter::RequestTimedOut,
    Counter::ServiceDegraded,
    Counter::FsyncRetry,
];

const N_COUNTERS: usize = ALL_COUNTERS.len();

impl Counter {
    /// The stable snake_case name used in snapshots and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Counter::PatternCacheHit => "pattern_cache_hit",
            Counter::PatternCacheMiss => "pattern_cache_miss",
            Counter::NameIndexHit => "name_index_hit",
            Counter::NameIndexMiss => "name_index_miss",
            Counter::XpathNodesVisited => "xpath_nodes_visited",
            Counter::XqueryBindingsVisited => "xquery_bindings_visited",
            Counter::ClausesExpanded => "clauses_expanded",
            Counter::ClausesSurviving => "clauses_surviving",
            Counter::DenialsSubsumed => "denials_subsumed",
            Counter::DifftestCase => "difftest_case",
            Counter::DifftestDiscrepancy => "difftest_discrepancy",
            Counter::DifftestShrinkStep => "difftest_shrink_step",
            Counter::DifftestOpInsertBefore => "difftest_op_insert_before",
            Counter::DifftestOpInsertAfter => "difftest_op_insert_after",
            Counter::DifftestOpAppend => "difftest_op_append",
            Counter::DifftestOpRemove => "difftest_op_remove",
            Counter::DifftestOpUpdate => "difftest_op_update",
            Counter::DifftestOpRename => "difftest_op_rename",
            Counter::OrderCacheRebuild => "order_cache_rebuild",
            Counter::DocOrderFastSort => "doc_order_fast_sort",
            Counter::DocOrderPathSort => "doc_order_path_sort",
            Counter::CheckFullParallel => "check_full_parallel",
            Counter::JournalAppend => "journal_appends",
            Counter::JournalFsync => "journal_fsyncs",
            Counter::Recovery => "recoveries",
            Counter::BudgetExhausted => "budget_exhausted",
            Counter::PanicContained => "panics_contained",
            Counter::CheckpointWritten => "checkpoints_written",
            Counter::Rotation => "rotations",
            Counter::RecoveryGenerationFallback => "recovery_generation_fallbacks",
            Counter::JournalRetry => "journal_retries",
            Counter::GroupCommitBatch => "group_commit_batches",
            Counter::GroupCommitStatement => "group_commit_statements",
            Counter::SnapshotPublish => "snapshot_publishes",
            Counter::SnapshotRead => "snapshot_reads",
            Counter::DifftestThreeWayQuery => "three_way_queries",
            Counter::ChecksSkippedStatic => "checks_skipped_static",
            Counter::ChecksRetainedStatic => "checks_retained_static",
            Counter::RequestShed => "requests_shed",
            Counter::RequestTimedOut => "requests_timed_out",
            Counter::ServiceDegraded => "service_degraded",
            Counter::FsyncRetry => "fsync_retries",
        }
    }

    /// The counter with the given snapshot name, if any.
    pub fn from_name(name: &str) -> Option<Counter> {
        ALL_COUNTERS.iter().copied().find(|c| c.name() == name)
    }
}

/// Accumulated time for one hierarchical phase path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStat {
    /// Slash-joined path, e.g. `compile/optimize` or `check/full`.
    pub path: String,
    /// How many spans were recorded under this path.
    pub calls: u64,
    /// Total wall-clock nanoseconds across those spans.
    pub total_ns: u64,
}

impl PhaseStat {
    /// Total time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_ns as f64 / 1e6
    }
}

struct Sink {
    counters: [Cell<u64>; N_COUNTERS],
    // (path segment, start) for each currently open phase.
    stack: RefCell<Vec<&'static str>>,
    // Accumulated (path, calls, total_ns); linear scan is fine — the
    // system has on the order of ten distinct phase paths.
    phases: RefCell<Vec<PhaseStat>>,
}

thread_local! {
    static SINK: Sink = const {
        Sink {
            counters: [const { Cell::new(0) }; N_COUNTERS],
            stack: RefCell::new(Vec::new()),
            phases: RefCell::new(Vec::new()),
        }
    };
}

/// Adds 1 to `counter` on this thread.
#[inline]
pub fn incr(counter: Counter) {
    add(counter, 1);
}

/// Adds `n` to `counter` on this thread.
#[inline]
pub fn add(counter: Counter, n: u64) {
    SINK.with(|s| {
        let cell = &s.counters[counter as usize];
        cell.set(cell.get().wrapping_add(n));
    });
}

/// Current value of `counter` on this thread.
pub fn counter(counter: Counter) -> u64 {
    SINK.with(|s| s.counters[counter as usize].get())
}

/// Opens a timed phase; the span ends (and is recorded) when the returned
/// guard drops. Guards nest: inner phases record under
/// `outer/inner/...` paths.
#[must_use = "the phase is timed until this guard is dropped"]
pub fn phase(name: &'static str) -> PhaseGuard {
    SINK.with(|s| s.stack.borrow_mut().push(name));
    PhaseGuard {
        start: Instant::now(),
    }
}

/// Times a phase while in scope; created by [`phase`].
pub struct PhaseGuard {
    start: Instant,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        let elapsed_ns = self.start.elapsed().as_nanos() as u64;
        SINK.with(|s| {
            let path = {
                let mut stack = s.stack.borrow_mut();
                let path = stack.join("/");
                stack.pop();
                path
            };
            let mut phases = s.phases.borrow_mut();
            match phases.iter_mut().find(|p| p.path == path) {
                Some(p) => {
                    p.calls += 1;
                    p.total_ns += elapsed_ns;
                }
                None => phases.push(PhaseStat {
                    path,
                    calls: 1,
                    total_ns: elapsed_ns,
                }),
            }
        });
    }
}

/// Clears all counters and phase accumulators on this thread (open phase
/// guards keep working; their spans land in the fresh accumulator).
pub fn reset() {
    SINK.with(|s| {
        for c in &s.counters {
            c.set(0);
        }
        s.phases.borrow_mut().clear();
    });
}

/// Folds a snapshot's counters and phase accumulators into *this*
/// thread's sink — the aggregation primitive for fan-out work. The
/// parallel full check uses it to merge each worker thread's counters
/// back into the coordinating thread, so a subsequent [`snapshot`] sees
/// the whole fan-out as if it had run locally. Counter names unknown to
/// this build (snapshots from a newer binary) are ignored.
pub fn merge(snap: &Snapshot) {
    for (name, v) in &snap.counters {
        if let Some(c) = Counter::from_name(name) {
            add(c, *v);
        }
    }
    SINK.with(|s| {
        let mut phases = s.phases.borrow_mut();
        for p in &snap.phases {
            match phases.iter_mut().find(|q| q.path == p.path) {
                Some(q) => {
                    q.calls += p.calls;
                    q.total_ns += p.total_ns;
                }
                None => phases.push(p.clone()),
            }
        }
    });
}

/// A point-in-time copy of this thread's counters and phase timings.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` for every counter, in [`ALL_COUNTERS`] order.
    pub counters: Vec<(String, u64)>,
    /// Accumulated phase timings, in first-recorded order.
    pub phases: Vec<PhaseStat>,
}

/// Takes a [`Snapshot`] of this thread's observability state.
pub fn snapshot() -> Snapshot {
    SINK.with(|s| Snapshot {
        counters: ALL_COUNTERS
            .iter()
            .map(|&c| (c.name().to_string(), s.counters[c as usize].get()))
            .collect(),
        phases: s.phases.borrow().clone(),
    })
}

impl Snapshot {
    /// The captured value of `counter` (0 if the snapshot predates it).
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == counter.name())
            .map_or(0, |(_, v)| *v)
    }

    /// The captured stats for a phase path, if any span was recorded.
    pub fn phase(&self, path: &str) -> Option<&PhaseStat> {
        self.phases.iter().find(|p| p.path == path)
    }

    /// Serializes to a JSON object with `"counters"` and `"phases"` keys.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// The snapshot as a [`json::Value`] tree (for embedding in larger
    /// documents such as bench reports).
    pub fn to_json_value(&self) -> json::Value {
        json::Value::Object(vec![
            (
                "counters".to_string(),
                json::Value::Object(
                    self.counters
                        .iter()
                        .map(|(n, v)| (n.clone(), json::Value::Number(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "phases".to_string(),
                json::Value::Array(
                    self.phases
                        .iter()
                        .map(|p| {
                            json::Value::Object(vec![
                                ("path".to_string(), json::Value::String(p.path.clone())),
                                ("calls".to_string(), json::Value::Number(p.calls as f64)),
                                (
                                    "total_ns".to_string(),
                                    json::Value::Number(p.total_ns as f64),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a snapshot previously produced by [`Snapshot::to_json`].
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        Snapshot::from_json_value(&json::parse(text)?)
    }

    /// Reads a snapshot out of a parsed [`json::Value`].
    pub fn from_json_value(v: &json::Value) -> Result<Snapshot, String> {
        let counters = v
            .get("counters")
            .and_then(json::Value::as_object)
            .ok_or("snapshot missing \"counters\" object")?
            .iter()
            .map(|(n, v)| {
                v.as_u64()
                    .map(|v| (n.clone(), v))
                    .ok_or_else(|| format!("counter {n:?} is not an integer"))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let phases = v
            .get("phases")
            .and_then(json::Value::as_array)
            .ok_or("snapshot missing \"phases\" array")?
            .iter()
            .map(|p| {
                let path = p
                    .get("path")
                    .and_then(json::Value::as_str)
                    .ok_or("phase missing \"path\"")?;
                let calls = p
                    .get("calls")
                    .and_then(json::Value::as_u64)
                    .ok_or("phase missing \"calls\"")?;
                let total_ns = p
                    .get("total_ns")
                    .and_then(json::Value::as_u64)
                    .ok_or("phase missing \"total_ns\"")?;
                Ok(PhaseStat {
                    path: path.to_string(),
                    calls,
                    total_ns,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Snapshot { counters, phases })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn counters_accumulate_and_reset() {
        reset();
        incr(Counter::PatternCacheHit);
        add(Counter::XpathNodesVisited, 41);
        incr(Counter::XpathNodesVisited);
        assert_eq!(counter(Counter::PatternCacheHit), 1);
        assert_eq!(counter(Counter::XpathNodesVisited), 42);
        assert_eq!(counter(Counter::PatternCacheMiss), 0);
        reset();
        assert_eq!(counter(Counter::XpathNodesVisited), 0);
    }

    #[test]
    fn phase_guards_nest_into_hierarchical_paths() {
        reset();
        {
            let _compile = phase("compile");
            thread::sleep(Duration::from_millis(1));
            {
                let _after = phase("after");
                thread::sleep(Duration::from_millis(1));
            }
            {
                let _opt = phase("optimize");
            }
        }
        {
            let _compile = phase("compile");
        }
        let snap = snapshot();
        let compile = snap.phase("compile").expect("compile recorded");
        assert_eq!(compile.calls, 2);
        let after = snap.phase("after/compile");
        assert!(after.is_none(), "inner phase must nest under outer");
        let after = snap.phase("compile/after").expect("nested path recorded");
        assert_eq!(after.calls, 1);
        assert!(snap.phase("compile/optimize").is_some());
        // The outer span covers the inner one.
        assert!(compile.total_ns >= after.total_ns);
    }

    #[test]
    fn counters_are_per_thread() {
        reset();
        incr(Counter::NameIndexHit);
        let other = thread::spawn(|| counter(Counter::NameIndexHit))
            .join()
            .unwrap();
        assert_eq!(other, 0);
        assert_eq!(counter(Counter::NameIndexHit), 1);
    }

    #[test]
    fn snapshot_json_round_trips() {
        reset();
        add(Counter::ClausesExpanded, 12);
        add(Counter::ClausesSurviving, 5);
        add(Counter::DenialsSubsumed, 7);
        {
            let _check = phase("check");
            let _full = phase("full");
        }
        let snap = snapshot();
        let text = snap.to_json();
        let back = Snapshot::from_json(&text).expect("round-trip parse");
        assert_eq!(back, snap);
        assert_eq!(back.counter(Counter::ClausesExpanded), 12);
        assert_eq!(back.phase("check/full").unwrap().calls, 1);
    }

    #[test]
    fn merge_folds_worker_snapshots_into_local_sink() {
        reset();
        incr(Counter::XpathNodesVisited);
        {
            let _check = phase("check");
        }
        let worker = thread::spawn(|| {
            add(Counter::XpathNodesVisited, 9);
            {
                let _check = phase("check");
            }
            {
                let _other = phase("worker_only");
            }
            snapshot()
        })
        .join()
        .unwrap();
        merge(&worker);
        let snap = snapshot();
        assert_eq!(snap.counter(Counter::XpathNodesVisited), 10);
        assert_eq!(snap.phase("check").unwrap().calls, 2);
        assert_eq!(snap.phase("worker_only").unwrap().calls, 1);
    }

    #[test]
    fn counter_names_are_bijective() {
        for c in ALL_COUNTERS {
            assert_eq!(Counter::from_name(c.name()), Some(c));
        }
        assert_eq!(Counter::from_name("no_such_counter"), None);
    }
}

//! A minimal JSON reader/writer used for [`Snapshot`](crate::Snapshot)
//! round-trips and the benchmark report (`BENCH_PR3.json`).
//!
//! Objects preserve insertion order (they are `Vec<(String, Value)>`),
//! which keeps emitted reports stable and diff-friendly. Numbers are
//! stored as `f64`; integers up to 2^53 round-trip exactly, which covers
//! every counter and nanosecond total the system produces in practice.

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers render without a decimal point).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }

    /// The array's elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= (1u64 << 53) as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Renders compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders JSON indented by `indent` spaces per level.
    pub fn render_pretty(&self, indent: usize) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(indent), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => (
                "\n",
                " ".repeat(w * depth),
                " ".repeat(w * (depth + 1)),
            ),
            None => ("", String::new(), String::new()),
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Value::String(s) => write_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes: Vec<char> = text.chars().collect();
    let mut p = Parser { chars: &bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(format!("trailing characters at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    chars: &'a [char],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<char, String> {
        let c = self.peek().ok_or("unexpected end of input")?;
        self.pos += 1;
        Ok(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        let got = self.bump()?;
        if got == c {
            Ok(())
        } else {
            Err(format!("expected {c:?} at offset {}, got {got:?}", self.pos - 1))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        for c in word.chars() {
            self.expect(c)?;
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek().ok_or("unexpected end of input")? {
            'n' => self.literal("null", Value::Null),
            't' => self.literal("true", Value::Bool(true)),
            'f' => self.literal("false", Value::Bool(false)),
            '"' => Ok(Value::String(self.string()?)),
            '[' => self.array(),
            '{' => self.object(),
            c if c == '-' || c.is_ascii_digit() => self.number(),
            c => Err(format!("unexpected {c:?} at offset {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut s = String::new();
        loop {
            match self.bump()? {
                '"' => return Ok(s),
                '\\' => match self.bump()? {
                    '"' => s.push('"'),
                    '\\' => s.push('\\'),
                    '/' => s.push('/'),
                    'n' => s.push('\n'),
                    'r' => s.push('\r'),
                    't' => s.push('\t'),
                    'b' => s.push('\u{8}'),
                    'f' => s.push('\u{c}'),
                    'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump()?;
                            code = code * 16
                                + d.to_digit(16)
                                    .ok_or_else(|| format!("bad \\u escape digit {d:?}"))?;
                        }
                        s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    e => return Err(format!("unknown escape \\{e}")),
                },
                c => s.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
        {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                ',' => continue,
                ']' => return Ok(Value::Array(items)),
                c => return Err(format!("expected ',' or ']', got {c:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect('{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.bump()? {
                ',' => continue,
                '}' => return Ok(Value::Object(members)),
                c => return Err(format!("expected ',' or '}}', got {c:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_nested_documents() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::String("fig1a".to_string())),
            (
                "rows".to_string(),
                Value::Array(vec![
                    Value::Number(32.0),
                    Value::Number(2.5),
                    Value::Bool(true),
                    Value::Null,
                ]),
            ),
            ("empty".to_string(), Value::Object(vec![])),
        ]);
        for text in [v.render(), v.render_pretty(2)] {
            assert_eq!(parse(&text).unwrap(), v, "source: {text}");
        }
    }

    #[test]
    fn escapes_round_trip() {
        let v = Value::String("a\"b\\c\nd\te\u{1}".to_string());
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Value::Number(128.0).render(), "128");
        assert_eq!(Value::Number(2.5).render(), "2.5");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn object_order_is_preserved() {
        let text = r#"{"z": 1, "a": 2}"#;
        let v = parse(text).unwrap();
        let keys: Vec<&str> = v.as_object().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["z", "a"]);
    }
}

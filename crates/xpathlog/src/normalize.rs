//! Normalization to disjunction-free form.
//!
//! "A default rewriting allows one to reduce to such normal form any denial
//! expressed with disjunctions" (Section 4.2, footnote 3): negation is
//! pushed to the leaves and the body is distributed into disjunctive
//! normal form; each disjunct becomes its own denial, since
//! `← A ∨ B ≡ (← A) ∧ (← B)`.

use crate::ast::{LDenial, LFormula};

/// A disjunction-free denial: a flat conjunction of leaf formulas (paths,
/// comparisons, aggregates, and negated leaves).
#[derive(Debug, Clone, PartialEq)]
pub struct NormalDenial {
    /// Conjuncts; never `And`/`Or`, and `Not` only wraps leaves.
    pub conjuncts: Vec<LFormula>,
}

impl std::fmt::Display for NormalDenial {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "<-")?;
        for (i, c) in self.conjuncts.iter().enumerate() {
            if i > 0 {
                write!(f, " &")?;
            }
            write!(f, " {c}")?;
        }
        Ok(())
    }
}

/// Rewrites an XPathLog denial into a set of disjunction-free denials.
pub fn normalize(denial: &LDenial) -> Vec<NormalDenial> {
    let nnf = push_not(&denial.body, false);
    dnf(&nnf)
        .into_iter()
        .map(|conjuncts| NormalDenial { conjuncts })
        .collect()
}

/// Negation normal form: pushes `not` down to leaves, flipping
/// comparisons into their complements on the way.
fn push_not(f: &LFormula, negated: bool) -> LFormula {
    match f {
        LFormula::Not(inner) => push_not(inner, !negated),
        LFormula::And(parts) => {
            let rewritten: Vec<LFormula> = parts.iter().map(|p| push_not(p, negated)).collect();
            if negated {
                LFormula::Or(rewritten)
            } else {
                LFormula::And(rewritten)
            }
        }
        LFormula::Or(parts) => {
            let rewritten: Vec<LFormula> = parts.iter().map(|p| push_not(p, negated)).collect();
            if negated {
                LFormula::And(rewritten)
            } else {
                LFormula::Or(rewritten)
            }
        }
        LFormula::Comp(a, op, b) if negated => {
            LFormula::Comp(a.clone(), op.negate(), b.clone())
        }
        LFormula::Agg(agg, op, t) if negated => {
            LFormula::Agg(agg.clone(), op.negate(), t.clone())
        }
        leaf => {
            if negated {
                LFormula::Not(Box::new(leaf.clone()))
            } else {
                leaf.clone()
            }
        }
    }
}

/// Distributes an NNF formula into a list of conjunct lists.
fn dnf(f: &LFormula) -> Vec<Vec<LFormula>> {
    match f {
        LFormula::And(parts) => {
            let mut acc: Vec<Vec<LFormula>> = vec![Vec::new()];
            for p in parts {
                let branches = dnf(p);
                let mut next = Vec::with_capacity(acc.len() * branches.len());
                for a in &acc {
                    for b in &branches {
                        let mut merged = a.clone();
                        merged.extend(b.iter().cloned());
                        next.push(merged);
                    }
                }
                acc = next;
            }
            acc
        }
        LFormula::Or(parts) => parts.iter().flat_map(dnf).collect(),
        leaf => vec![vec![leaf.clone()]],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_denial;

    fn norm(src: &str) -> Vec<String> {
        normalize(&parse_denial(src).unwrap())
            .iter()
            .map(std::string::ToString::to_string)
            .collect()
    }

    #[test]
    fn example_1_splits_into_two() {
        // The paper: "the XPathLog constraint of example 1 is translated
        // into a couple of Datalog denials (due to the presence of a
        // disjunction)".
        let out = norm(
            "<- //rev[name/text() -> R]/sub/auts/name/text() -> A \
             & (A = R | //pub[aut/name/text() -> A & aut/name/text() -> R])",
        );
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out[0].contains("A = R"), "{out:?}");
        assert!(out[1].contains("//pub"), "{out:?}");
    }

    #[test]
    fn no_disjunction_stays_single() {
        let out = norm("<- //a -> X & X = \"1\"");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], "<- //a -> X & X = \"1\"");
    }

    #[test]
    fn nested_distribution() {
        let out = norm("<- (//a -> X | //b -> X) & (X = \"1\" | X = \"2\")");
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn negated_comparison_flips() {
        let out = norm("<- //a -> X & not X = \"1\"");
        assert_eq!(out.len(), 1);
        assert!(out[0].contains("X != \"1\""), "{out:?}");
    }

    #[test]
    fn negated_disjunction_de_morgan() {
        let out = norm("<- //a -> X & not (X = \"1\" | X = \"2\")");
        assert_eq!(out.len(), 1);
        assert!(
            out[0].contains("X != \"1\"") && out[0].contains("X != \"2\""),
            "{out:?}"
        );
    }

    #[test]
    fn negated_conjunction_splits() {
        let out = norm("<- //a -> X & not (X = \"1\" & X = \"2\")");
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn negated_path_stays_negated_leaf() {
        let out = norm("<- //a -> X & not //b");
        assert_eq!(out.len(), 1);
        assert!(out[0].contains("not //b"), "{out:?}");
    }

    #[test]
    fn negated_aggregate_flips_comparison() {
        let out = norm("<- //a -> X & not cnt{//b} > 3");
        assert_eq!(out.len(), 1);
        assert!(out[0].contains("cnt{//b} <= 3"), "{out:?}");
    }

    #[test]
    fn double_negation_cancels() {
        let out = norm("<- not not //a -> X & X = \"1\"");
        assert_eq!(out.len(), 1);
        assert!(!out[0].contains("not"), "{out:?}");
    }
}

//! XPathLog abstract syntax.

use std::fmt;
use xic_datalog::{AggFunc, CompOp};

/// A node test in an XPathLog step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LTest {
    /// Element name.
    Elem(String),
    /// `text()` — selects the text content of the enclosing element.
    Text,
    /// `@name` — attribute.
    Attr(String),
}

impl fmt::Display for LTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LTest::Elem(n) => f.write_str(n),
            LTest::Text => f.write_str("text()"),
            LTest::Attr(n) => write!(f, "@{n}"),
        }
    }
}

/// One step: node test, optional variable binding (`-> V`), qualifiers.
#[derive(Debug, Clone, PartialEq)]
pub struct LStep {
    /// True when this step was reached via `//` (descendant), false for
    /// `/` (child).
    pub descendant: bool,
    /// The node test.
    pub test: LTest,
    /// `-> Var` binding of the selected node/value.
    pub binding: Option<String>,
    /// Qualifiers (`[…]`), conjunctively.
    pub qualifiers: Vec<LFormula>,
}

impl fmt::Display for LStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.test)?;
        if let Some(b) = &self.binding {
            write!(f, " -> {b}")?;
        }
        for q in &self.qualifiers {
            write!(f, "[{q}]")?;
        }
        Ok(())
    }
}

/// Where a path starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LStart {
    /// Document root (`/…` or `//…`).
    Root,
    /// A previously bound node variable.
    Var(String),
    /// The enclosing step's node (relative paths inside qualifiers).
    Rel,
}

/// An XPathLog path expression.
#[derive(Debug, Clone, PartialEq)]
pub struct LPath {
    /// Starting point.
    pub start: LStart,
    /// Steps in order.
    pub steps: Vec<LStep>,
}

impl fmt::Display for LPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.start {
            LStart::Root | LStart::Rel => {}
            LStart::Var(v) => write!(f, "{v}")?,
        }
        for (i, s) in self.steps.iter().enumerate() {
            let sep = if s.descendant { "//" } else { "/" };
            // A relative path's first step needs no leading slash.
            if i == 0 && self.start == LStart::Rel && !s.descendant {
                write!(f, "{s}")?;
            } else {
                write!(f, "{sep}{s}")?;
            }
        }
        Ok(())
    }
}

/// A comparison operand.
#[derive(Debug, Clone, PartialEq)]
pub enum LOperand {
    /// Variable.
    Var(String),
    /// String constant.
    Str(String),
    /// Integer constant.
    Int(i64),
}

impl fmt::Display for LOperand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LOperand::Var(v) => f.write_str(v),
            LOperand::Str(s) => write!(f, "{s:?}"),
            LOperand::Int(i) => write!(f, "{i}"),
        }
    }
}

/// An aggregate expression `func{[G1,…]; path}` (Section 3.1: the group-by
/// variables are listed explicitly; the aggregated value, when present, is
/// the binding of the path's last step).
#[derive(Debug, Clone, PartialEq)]
pub struct LAgg {
    /// The aggregate function (`Cnt`, `Cnt_D`, `Sum`, …).
    pub func: AggFunc,
    /// Group-by variables.
    pub group: Vec<String>,
    /// The counted/aggregated path.
    pub path: LPath,
}

impl fmt::Display for LAgg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{{", self.func)?;
        if !self.group.is_empty() {
            write!(f, "[{}]; ", self.group.join(", "))?;
        }
        write!(f, "{}}}", self.path)
    }
}

/// An XPathLog formula.
#[derive(Debug, Clone, PartialEq)]
pub enum LFormula {
    /// An existential path condition (with bindings).
    Path(LPath),
    /// A comparison.
    Comp(LOperand, CompOp, LOperand),
    /// Conjunction.
    And(Vec<LFormula>),
    /// Disjunction.
    Or(Vec<LFormula>),
    /// Negation.
    Not(Box<LFormula>),
    /// Aggregate comparison.
    Agg(LAgg, CompOp, LOperand),
    /// A positional qualifier `[n]` or `[position() -> P]` binding/fixing
    /// the step's position; only meaningful inside step qualifiers.
    Position(LOperand),
}

impl fmt::Display for LFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LFormula::Path(p) => write!(f, "{p}"),
            LFormula::Comp(a, op, b) => write!(f, "{a} {op} {b}"),
            LFormula::And(fs) => {
                for (i, x) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    write_atomic(f, x)?;
                }
                Ok(())
            }
            LFormula::Or(fs) => {
                for (i, x) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write_atomic(f, x)?;
                }
                Ok(())
            }
            LFormula::Not(x) => {
                write!(f, "not ")?;
                write_atomic(f, x)
            }
            LFormula::Agg(agg, op, t) => write!(f, "{agg} {op} {t}"),
            LFormula::Position(p) => write!(f, "position() = {p}"),
        }
    }
}

fn write_atomic(f: &mut fmt::Formatter<'_>, x: &LFormula) -> fmt::Result {
    if matches!(x, LFormula::And(_) | LFormula::Or(_)) {
        write!(f, "({x})")
    } else {
        write!(f, "{x}")
    }
}

/// An XPathLog denial: `<- body`.
#[derive(Debug, Clone, PartialEq)]
pub struct LDenial {
    /// The body formula; the constraint holds iff it is unsatisfiable.
    pub body: LFormula,
}

impl fmt::Display for LDenial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<- {}", self.body)
    }
}

impl LDenial {
    /// All variables bound by path bindings in the body, in first-binding
    /// order.
    pub fn bound_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        collect_bound(&self.body, &mut out);
        out
    }
}

fn collect_bound(f: &LFormula, out: &mut Vec<String>) {
    match f {
        LFormula::Path(p) => collect_path(p, out),
        LFormula::And(fs) | LFormula::Or(fs) => {
            for x in fs {
                collect_bound(x, out);
            }
        }
        LFormula::Not(x) => collect_bound(x, out),
        LFormula::Agg(a, _, _) => collect_path(&a.path, out),
        LFormula::Comp(..) | LFormula::Position(_) => {}
    }
}

fn collect_path(p: &LPath, out: &mut Vec<String>) {
    for s in &p.steps {
        if let Some(b) = &s.binding {
            if !out.iter().any(|o| o == b) {
                out.push(b.clone());
            }
        }
        for q in &s.qualifiers {
            collect_bound(q, out);
        }
    }
}

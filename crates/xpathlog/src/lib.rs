//! XPathLog: the declarative constraint language of Section 3.
//!
//! XPathLog \[18\] extends XPath with variable bindings (`→ Var`, written
//! `-> Var` in this ASCII syntax) and embeds it in first-order logic;
//! integrity constraints are *denials* — headless clauses whose body must
//! never be satisfiable.
//!
//! The concrete syntax accepted here mirrors the paper's examples:
//!
//! ```text
//! <- //rev[name/text() -> R]/sub/auts/name/text() -> A
//!    & (A = R | //pub[aut/name/text() -> A & aut/name/text() -> R])
//! ```
//!
//! and for aggregates (Example 2):
//!
//! ```text
//! <- cntd{[R]; //track[rev/name/text() -> R]} >= 3
//!  & cntd{[R]; //rev[name/text() -> R]/sub} > 10
//! ```
//!
//! [`normalize`](normalize()) rewrites a denial into disjunction-free normal form (one
//! denial per disjunct, negation pushed to the leaves) — the form the
//! relational mapping of Section 4 consumes (see `xic-mapping`).
//!
//! In the system-inventory table of `DESIGN.md` this crate is item 7 (XPathLog front-end).

pub mod ast;
pub mod normalize;
pub mod parser;

pub use ast::{LAgg, LDenial, LFormula, LOperand, LPath, LStart, LStep, LTest};
pub use normalize::{normalize, NormalDenial};
pub use parser::{parse_denial, parse_denials, XPathLogError};

pub use xic_datalog::{AggFunc, CompOp};

//! Parser for the ASCII XPathLog syntax.

use crate::ast::{LAgg, LDenial, LFormula, LOperand, LPath, LStart, LStep, LTest};
use std::fmt;
use xic_datalog::{AggFunc, CompOp};

/// XPathLog parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XPathLogError {
    /// Byte offset.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for XPathLogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XPathLog parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for XPathLogError {}

/// Parses one denial.
pub fn parse_denial(input: &str) -> Result<LDenial, XPathLogError> {
    let mut p = P::new(input);
    let d = p.denial()?;
    p.skip_ws();
    p.eat(".");
    p.expect_eof()?;
    Ok(d)
}

/// Parses a `.`-separated list of denials.
pub fn parse_denials(input: &str) -> Result<Vec<LDenial>, XPathLogError> {
    let mut p = P::new(input);
    let mut out = Vec::new();
    loop {
        p.skip_ws();
        if p.at_eof() {
            break;
        }
        out.push(p.denial()?);
        p.skip_ws();
        if !p.eat(".") {
            break;
        }
    }
    p.expect_eof()?;
    Ok(out)
}

struct P<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> P<'a> {
    fn new(input: &'a str) -> Self {
        P { input, pos: 0 }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn at_eof(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn err<T>(&self, m: impl Into<String>) -> Result<T, XPathLogError> {
        Err(XPathLogError {
            offset: self.pos,
            message: m.into(),
        })
    }

    fn skip_ws(&mut self) {
        while self
            .rest()
            .chars()
            .next()
            .is_some_and(char::is_whitespace)
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), XPathLogError> {
        self.skip_ws();
        if self.eat(s) {
            Ok(())
        } else {
            self.err(format!("expected {s:?}"))
        }
    }

    fn expect_eof(&mut self) -> Result<(), XPathLogError> {
        self.skip_ws();
        if self.at_eof() {
            Ok(())
        } else {
            self.err("unexpected trailing input")
        }
    }

    fn ident(&mut self) -> Option<String> {
        let rest = self.rest();
        let mut end = 0;
        for (i, c) in rest.char_indices() {
            let ok = if i == 0 {
                c.is_alphabetic() || c == '_'
            } else {
                c.is_alphanumeric() || matches!(c, '_' | '-')
            };
            if ok {
                end = i + c.len_utf8();
            } else {
                break;
            }
        }
        if end == 0 {
            None
        } else {
            let s = rest[..end].to_string();
            self.pos += end;
            Some(s)
        }
    }

    fn denial(&mut self) -> Result<LDenial, XPathLogError> {
        self.expect("<-")?;
        let body = self.disjunction()?;
        Ok(LDenial { body })
    }

    fn disjunction(&mut self) -> Result<LFormula, XPathLogError> {
        let mut parts = vec![self.conjunction()?];
        loop {
            self.skip_ws();
            if self.eat("|") {
                parts.push(self.conjunction()?);
            } else {
                break;
            }
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            LFormula::Or(parts)
        })
    }

    fn conjunction(&mut self) -> Result<LFormula, XPathLogError> {
        let mut parts = vec![self.unary()?];
        loop {
            self.skip_ws();
            if self.eat("&") {
                parts.push(self.unary()?);
            } else {
                break;
            }
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            LFormula::And(parts)
        })
    }

    fn unary(&mut self) -> Result<LFormula, XPathLogError> {
        self.skip_ws();
        if self.rest().starts_with("not")
            && !self
                .rest()["not".len()..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            self.pos += 3;
            let inner = self.unary()?;
            return Ok(LFormula::Not(Box::new(inner)));
        }
        if self.eat("(") {
            let inner = self.disjunction()?;
            self.expect(")")?;
            return Ok(inner);
        }
        self.atom()
    }

    /// An atomic formula: aggregate, comparison, or path.
    fn atom(&mut self) -> Result<LFormula, XPathLogError> {
        self.skip_ws();
        // Aggregate: func '{' …
        let save = self.pos;
        if let Some(id) = self.ident() {
            let func = match id.to_ascii_lowercase().as_str() {
                "cnt" => Some(AggFunc::Cnt),
                "cntd" | "cnt_d" => Some(AggFunc::CntD),
                "sum" | "sumd" | "sum_d" => Some(AggFunc::Sum),
                "max" => Some(AggFunc::Max),
                "min" => Some(AggFunc::Min),
                _ => None,
            };
            if let Some(func) = func {
                self.skip_ws();
                if self.eat("{") {
                    return self.aggregate(func);
                }
            }
            self.pos = save;
        }
        // Path or comparison. Paths start with '/', '//', or a variable
        // (uppercase ident); comparisons start with a variable or literal.
        if self.rest().starts_with('/') {
            let path = self.path(LStart::Root)?;
            return Ok(LFormula::Path(path));
        }
        let lhs = self.operand()?;
        self.skip_ws();
        // Variable followed by '/': a path rooted at the variable.
        if let LOperand::Var(v) = &lhs {
            if self.rest().starts_with('/') {
                let path = self.path(LStart::Var(v.clone()))?;
                return Ok(LFormula::Path(path));
            }
        }
        let op = self
            .comp_op()
            .ok_or(())
            .or_else(|()| self.err("expected a comparison operator"))?;
        let rhs = self.operand()?;
        Ok(LFormula::Comp(lhs, op, rhs))
    }

    fn aggregate(&mut self, func: AggFunc) -> Result<LFormula, XPathLogError> {
        self.skip_ws();
        let mut group = Vec::new();
        if self.eat("[") {
            loop {
                self.skip_ws();
                let Some(v) = self.ident() else {
                    return self.err("expected a group-by variable");
                };
                group.push(v);
                self.skip_ws();
                if !self.eat(",") {
                    break;
                }
            }
            self.expect("]")?;
            self.expect(";")?;
        }
        self.skip_ws();
        let path = if self.rest().starts_with('/') {
            self.path(LStart::Root)?
        } else {
            let Some(v) = self.ident() else {
                return self.err("expected a path in aggregate");
            };
            self.path(LStart::Var(v))?
        };
        self.expect("}")?;
        self.skip_ws();
        let Some(op) = self.comp_op() else {
            return self.err("expected comparison after aggregate");
        };
        let rhs = self.operand()?;
        Ok(LFormula::Agg(LAgg { func, group, path }, op, rhs))
    }

    fn comp_op(&mut self) -> Option<CompOp> {
        self.skip_ws();
        for (tok, op) in [
            ("!=", CompOp::Ne),
            ("<=", CompOp::Le),
            (">=", CompOp::Ge),
            ("=", CompOp::Eq),
            ("<", CompOp::Lt),
            (">", CompOp::Gt),
        ] {
            if self.eat(tok) {
                return Some(op);
            }
        }
        None
    }

    fn operand(&mut self) -> Result<LOperand, XPathLogError> {
        self.skip_ws();
        let Some(c) = self.rest().chars().next() else {
            return self.err("expected an operand");
        };
        match c {
            '"' => {
                self.pos += 1;
                let mut s = String::new();
                loop {
                    let Some(c) = self.rest().chars().next() else {
                        return self.err("unterminated string literal");
                    };
                    self.pos += c.len_utf8();
                    match c {
                        '"' => break,
                        '\\' => {
                            let Some(e) = self.rest().chars().next() else {
                                return self.err("dangling escape");
                            };
                            self.pos += e.len_utf8();
                            s.push(e);
                        }
                        other => s.push(other),
                    }
                }
                Ok(LOperand::Str(s))
            }
            '-' | '0'..='9' => {
                let neg = c == '-';
                if neg {
                    self.pos += 1;
                }
                let start = self.pos;
                while self
                    .rest()
                    .chars()
                    .next()
                    .is_some_and(|d| d.is_ascii_digit())
                {
                    self.pos += 1;
                }
                if start == self.pos {
                    return self.err("expected digits");
                }
                let n: i64 = self.input[start..self.pos]
                    .parse()
                    .map_err(|_| XPathLogError {
                        offset: start,
                        message: "integer out of range".into(),
                    })?;
                Ok(LOperand::Int(if neg { -n } else { n }))
            }
            c if c.is_alphabetic() || c == '_' => {
                let id = self.ident().expect("checked");
                Ok(LOperand::Var(id))
            }
            other => self.err(format!("unexpected {other:?} in operand")),
        }
    }

    /// Parses `(/|//)step…` (the leading separator must be present when
    /// `start` is `Root` or `Var`).
    fn path(&mut self, start: LStart) -> Result<LPath, XPathLogError> {
        let mut steps = Vec::new();
        loop {
            self.skip_ws();
            let descendant = if self.eat("//") {
                true
            } else if self.eat("/") {
                false
            } else {
                break;
            };
            steps.push(self.step(descendant)?);
        }
        if steps.is_empty() {
            return self.err("expected at least one path step");
        }
        Ok(LPath { start, steps })
    }

    /// A relative path inside a qualifier (no leading slash on the first
    /// step).
    fn rel_path(&mut self) -> Result<LPath, XPathLogError> {
        let descendant = self.eat("//");
        if !descendant {
            let _ = self.eat("/");
        }
        let first = self.step(descendant)?;
        let mut steps = vec![first];
        loop {
            self.skip_ws();
            let descendant = if self.eat("//") {
                true
            } else if self.eat("/") {
                false
            } else {
                break;
            };
            steps.push(self.step(descendant)?);
        }
        Ok(LPath {
            start: LStart::Rel,
            steps,
        })
    }

    fn step(&mut self, descendant: bool) -> Result<LStep, XPathLogError> {
        self.skip_ws();
        let test = if self.eat("@") {
            let Some(n) = self.ident() else {
                return self.err("expected attribute name after @");
            };
            LTest::Attr(n)
        } else {
            let Some(n) = self.ident() else {
                return self.err("expected a step name");
            };
            if n == "text" && self.rest().starts_with("()") {
                self.pos += 2;
                LTest::Text
            } else {
                LTest::Elem(n)
            }
        };
        let mut step = LStep {
            descendant,
            test,
            binding: None,
            qualifiers: Vec::new(),
        };
        // `[qualifier]*` and `-> Var` in either order (the paper allows
        // qualifiers on both sides of the binding).
        loop {
            self.skip_ws();
            if self.eat("->") {
                self.skip_ws();
                let Some(v) = self.ident() else {
                    return self.err("expected a variable after ->");
                };
                if step.binding.is_some() {
                    return self.err("duplicate binding on step");
                }
                step.binding = Some(v);
            } else if self.eat("[") {
                step.qualifiers.push(self.qualifier()?);
                self.expect("]")?;
            } else {
                break;
            }
        }
        Ok(step)
    }

    /// The content of a `[…]` qualifier: a number (positional), or a
    /// formula whose paths are relative to the current step.
    fn qualifier(&mut self) -> Result<LFormula, XPathLogError> {
        self.skip_ws();
        // Pure positional: [2]
        if self
            .rest()
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_digit())
        {
            let op = self.operand()?;
            return Ok(LFormula::Position(op));
        }
        if self.rest().starts_with("position()") {
            self.pos += "position()".len();
            self.expect("=")?;
            let op = self.operand()?;
            return Ok(LFormula::Position(op));
        }
        self.qual_disjunction()
    }

    fn qual_disjunction(&mut self) -> Result<LFormula, XPathLogError> {
        let mut parts = vec![self.qual_conjunction()?];
        loop {
            self.skip_ws();
            if self.eat("|") {
                parts.push(self.qual_conjunction()?);
            } else {
                break;
            }
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one")
        } else {
            LFormula::Or(parts)
        })
    }

    fn qual_conjunction(&mut self) -> Result<LFormula, XPathLogError> {
        let mut parts = vec![self.qual_unary()?];
        loop {
            self.skip_ws();
            if self.eat("&") {
                parts.push(self.qual_unary()?);
            } else {
                break;
            }
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one")
        } else {
            LFormula::And(parts)
        })
    }

    fn qual_unary(&mut self) -> Result<LFormula, XPathLogError> {
        self.skip_ws();
        if self.rest().starts_with("not")
            && !self.rest()["not".len()..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            self.pos += 3;
            return Ok(LFormula::Not(Box::new(self.qual_unary()?)));
        }
        if self.eat("(") {
            let inner = self.qual_disjunction()?;
            self.expect(")")?;
            return Ok(inner);
        }
        // Absolute path inside a qualifier.
        if self.rest().starts_with('/') {
            return Ok(LFormula::Path(self.path(LStart::Root)?));
        }
        // Relative path vs comparison: look ahead. An identifier followed
        // by '/', '->', '[' or end-of-qualifier is a relative path;
        // otherwise a comparison operand.
        let save = self.pos;
        if self.rest().starts_with('@') {
            return Ok(LFormula::Path(self.rel_path()?));
        }
        if let Some(_id) = self.ident() {
            self.skip_ws();
            let next_is_pathish = self.rest().starts_with('/')
                || self.rest().starts_with("->")
                || self.rest().starts_with('[')
                || self.rest().starts_with(']')
                || self.rest().starts_with("()");
            self.pos = save;
            if next_is_pathish {
                return Ok(LFormula::Path(self.rel_path()?));
            }
        } else {
            self.pos = save;
        }
        let lhs = self.operand()?;
        let Some(op) = self.comp_op() else {
            return self.err("expected comparison in qualifier");
        };
        let rhs = self.operand()?;
        Ok(LFormula::Comp(lhs, op, rhs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_1() {
        let d = parse_denial(
            "<- //rev[name/text() -> R]/sub/auts/name/text() -> A \
             & (A = R | //pub[aut/name/text() -> A & aut/name/text() -> R])",
        )
        .unwrap();
        match &d.body {
            LFormula::And(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[0], LFormula::Path(_)));
                assert!(matches!(parts[1], LFormula::Or(_)));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(d.bound_vars(), vec!["R", "A"]);
    }

    #[test]
    fn paper_example_2_aggregates() {
        let d = parse_denial(
            "<- cntd{[R]; //track[rev/name/text() -> R]} >= 3 \
             & cntd{[R]; //rev[name/text() -> R]/sub} > 10",
        )
        .unwrap();
        match &d.body {
            LFormula::And(parts) => {
                let LFormula::Agg(a1, CompOp::Ge, LOperand::Int(3)) = &parts[0] else {
                    panic!("{:?}", parts[0]);
                };
                assert_eq!(a1.func, AggFunc::CntD);
                assert_eq!(a1.group, vec!["R"]);
                let LFormula::Agg(a2, CompOp::Gt, LOperand::Int(10)) = &parts[1] else {
                    panic!("{:?}", parts[1]);
                };
                assert_eq!(a2.path.steps.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn duckburg_example() {
        let d = parse_denial(
            "<- //pub[title/text() -> T & T = \"Duckburg tales\"]/aut/name/text() -> N \
             & N = \"Goofy\"",
        )
        .unwrap();
        let s = d.to_string();
        assert!(s.contains("Duckburg tales"), "{s}");
    }

    #[test]
    fn positional_qualifiers() {
        let d = parse_denial("<- /review/track[2]/rev[5]/name/text() -> N & N = \"x\"").unwrap();
        match &d.body {
            LFormula::And(parts) => match &parts[0] {
                LFormula::Path(p) => {
                    assert_eq!(p.steps[1].qualifiers.len(), 1);
                    assert!(matches!(
                        p.steps[1].qualifiers[0],
                        LFormula::Position(LOperand::Int(2))
                    ));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
        let d2 = parse_denial("<- //rev[position() = 3] -> R & R = R").unwrap();
        let _ = d2;
    }

    #[test]
    fn variable_rooted_paths() {
        let d = parse_denial("<- //rev -> R & R/sub/title/text() -> T & T = \"x\"").unwrap();
        match &d.body {
            LFormula::And(parts) => {
                assert!(matches!(&parts[1], LFormula::Path(p) if p.start == LStart::Var("R".into())));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn negation_and_parens() {
        let d = parse_denial("<- //a -> X & not (X = \"1\" | X = \"2\")").unwrap();
        match &d.body {
            LFormula::And(parts) => assert!(matches!(&parts[1], LFormula::Not(_))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn attributes() {
        let d = parse_denial("<- //pub/@year -> Y & Y = \"2006\"").unwrap();
        match &d.body {
            LFormula::And(parts) => match &parts[0] {
                LFormula::Path(p) => {
                    assert!(matches!(p.steps[1].test, LTest::Attr(ref a) if a == "year"));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn multiple_denials() {
        let ds = parse_denials(
            "<- //a -> X & X = \"1\". <- //b -> Y & Y = \"2\".",
        )
        .unwrap();
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn display_roundtrips() {
        let src = "<- //rev[name/text() -> R]/sub/auts/name/text() -> A & (A = R | //pub[aut/name/text() -> A & aut/name/text() -> R])";
        let d = parse_denial(src).unwrap();
        let d2 = parse_denial(&d.to_string()).unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn errors() {
        assert!(parse_denial("//a").is_err(), "missing <-");
        assert!(parse_denial("<- //a ->").is_err());
        assert!(parse_denial("<- cntd{[R]; //a} ").is_err(), "missing comparison");
        assert!(parse_denial("<- //a[").is_err());
        assert!(parse_denial("<- X").is_err(), "bare operand");
        assert!(parse_denial("<- \"unterminated").is_err());
    }
}

//! XQuery abstract syntax. XPath sub-expressions are embedded verbatim as
//! leaves, sharing `xic-xpath`'s AST.

use std::fmt;
use xic_xpath::{BinOp, Expr as XPathExpr};

/// A FLWOR clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Clause {
    /// `for $var in expr`
    For {
        /// Bound variable.
        var: String,
        /// The sequence iterated over.
        source: XQuery,
    },
    /// `let $var := expr`
    Let {
        /// Bound variable.
        var: String,
        /// The bound value.
        value: XQuery,
    },
    /// `where expr`
    Where(XQuery),
}

/// An XQuery expression.
#[derive(Debug, Clone, PartialEq)]
pub enum XQuery {
    /// An embedded XPath expression (paths, literals, arithmetic,
    /// comparisons, core function calls over simple operands).
    XPath(XPathExpr),
    /// `(e1, e2, …)` — sequence construction; `()` is the empty sequence.
    Sequence(Vec<XQuery>),
    /// FLWOR expression: clauses then `return`.
    Flwor {
        /// `for`/`let`/`where` clauses, in order.
        clauses: Vec<Clause>,
        /// The `return` expression.
        ret: Box<XQuery>,
    },
    /// `some/every $x in …, … satisfies …`
    Quantified {
        /// True for `some`, false for `every`.
        some: bool,
        /// Variable bindings.
        binds: Vec<(String, XQuery)>,
        /// The test.
        satisfies: Box<XQuery>,
    },
    /// `if (cond) then e1 else e2`
    If {
        /// Condition (effective boolean value).
        cond: Box<XQuery>,
        /// Then branch.
        then: Box<XQuery>,
        /// Else branch.
        els: Box<XQuery>,
    },
    /// Element constructor: `<name/>` or `element name { content }`.
    Construct {
        /// Element name.
        name: String,
        /// Content expressions (concatenated).
        content: Vec<XQuery>,
    },
    /// An XQuery-level function call whose arguments may be full XQuery
    /// expressions (`exists`, `empty`, `count`, `not`, …).
    Call(String, Vec<XQuery>),
    /// Binary operation between XQuery operands (needed when either side
    /// is a FLWOR/quantified/constructed expression).
    Binary(Box<XQuery>, BinOp, Box<XQuery>),
}

impl fmt::Display for XQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XQuery::XPath(e) => write!(f, "{e}"),
            XQuery::Sequence(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            XQuery::Flwor { clauses, ret } => {
                for (i, c) in clauses.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    match c {
                        Clause::For { var, source } => write!(f, "for ${var} in {source}")?,
                        Clause::Let { var, value } => write!(f, "let ${var} := {value}")?,
                        Clause::Where(e) => write!(f, "where {e}")?,
                    }
                }
                write!(f, " return {ret}")
            }
            XQuery::Quantified {
                some,
                binds,
                satisfies,
            } => {
                write!(f, "{}", if *some { "some" } else { "every" })?;
                for (i, (v, e)) in binds.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, " ${v} in {e}")?;
                }
                write!(f, " satisfies {satisfies}")
            }
            XQuery::If { cond, then, els } => {
                write!(f, "if ({cond}) then {then} else {els}")
            }
            XQuery::Construct { name, content } => {
                if content.is_empty() {
                    write!(f, "<{name}/>")
                } else {
                    write!(f, "element {name} {{ ")?;
                    for (i, c) in content.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{c}")?;
                    }
                    write!(f, " }}")
                }
            }
            XQuery::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            XQuery::Binary(a, op, b) => write!(f, "{a} {op} {b}"),
        }
    }
}

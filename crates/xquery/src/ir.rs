//! Compiled XQuery: slot-bound FLWOR/quantifier evaluation over the
//! flat XPath IR.
//!
//! [`XProgram::compile`] lowers an [`XQuery`] tree into a flat node
//! arena whose embedded XPath leaves all share one
//! [`xic_xpath::ir::Program`] (one name pool, one slot table). Lexical
//! scoping is resolved at compile time: every `for`/`let`/quantifier
//! binder gets a dense slot, and each XPath leaf records which slots are
//! visible at its position, so evaluation never builds (or clones) a
//! name-keyed environment — the interpreter's dominant per-binding cost.
//!
//! Sequence → XPath-value conversion happens once per *binding* instead
//! of once per variable per embedded XPath evaluation; a conversion
//! failure is remembered on the slot and raised, with the interpreter's
//! exact message, as soon as any XPath leaf with that slot in scope is
//! evaluated — preserving the interpreter's eager whole-environment
//! conversion semantics.
//!
//! The existential FLWOR and quantifier drivers run on an explicit
//! backtracking frame stack (clause index + live item iterator) rather
//! than recursing per clause, with the same item order, short-circuit
//! behavior, `XqueryBindingsVisited` counts and budget charges as
//! [`crate::eval`]. The materializing evaluator remains structurally
//! recursive (depth bounded by the query text, never by the data) and is
//! the parity baseline the difftest three-way oracle compares against.

use crate::ast::{Clause, XQuery};
use crate::eval::{mentions_var, node_to_constructed, XQueryError};
use crate::item::{
    effective_boolean, sequence_to_xvalue, xvalue_to_sequence, Constructed, ConstructedChild,
    Item, Sequence,
};
use xic_xml::{Document, Symbol};
use xic_xpath::ir::{self, Builder, ExprId, Scope, SlotId};
use xic_xpath::{BinOp, NodeRef, XValue};

/// Index of a node in [`XProgram::insts`].
pub type XId = u32;

/// Pre-resolved XQuery-level function discriminant.
#[derive(Debug, Clone, PartialEq)]
pub enum XCall {
    /// `exists(seq)`
    Exists,
    /// `distinct-values(seq)`
    DistinctValues,
    /// `max(seq)`
    Max,
    /// `min(seq)`
    Min,
    /// `empty(seq)`
    Empty,
    /// `count(seq)`
    Count,
    /// `not(v)`
    Not,
    /// `boolean(v)`
    Boolean,
    /// `string(seq)`
    String,
    /// Unsupported at the XQuery level; errors when evaluated, exactly
    /// like the interpreter.
    Unknown(Box<str>),
}

impl XCall {
    fn display_name(&self) -> &str {
        match self {
            XCall::Exists => "exists",
            XCall::DistinctValues => "distinct-values",
            XCall::Max => "max",
            XCall::Min => "min",
            XCall::Empty => "empty",
            XCall::Count => "count",
            XCall::Not => "not",
            XCall::Boolean => "boolean",
            XCall::String => "string",
            XCall::Unknown(n) => n,
        }
    }

    fn from_name(name: &str) -> XCall {
        match name {
            "exists" => XCall::Exists,
            "distinct-values" => XCall::DistinctValues,
            "max" => XCall::Max,
            "min" => XCall::Min,
            "empty" => XCall::Empty,
            "count" => XCall::Count,
            "not" => XCall::Not,
            "boolean" => XCall::Boolean,
            "string" => XCall::String,
            other => XCall::Unknown(other.into()),
        }
    }
}

/// One compiled FLWOR clause.
#[derive(Debug, Clone, PartialEq)]
pub enum XClause {
    /// `for $slot in source`
    For {
        /// Binding slot.
        slot: SlotId,
        /// Source expression.
        source: XId,
    },
    /// `let $slot := value`
    Let {
        /// Binding slot.
        slot: SlotId,
        /// Value expression.
        value: XId,
    },
    /// `where cond`
    Where(XId),
}

/// One compiled quantifier binding.
#[derive(Debug, Clone, PartialEq)]
pub struct QBind {
    /// Binding slot.
    pub slot: SlotId,
    /// Source expression.
    pub source: XId,
    /// True if the source is loop-invariant w.r.t. earlier binders and
    /// may be evaluated once up front (decided at compile time from the
    /// AST, mirroring the interpreter's hoist analysis; index 0 is never
    /// hoisted because it is evaluated exactly once anyway).
    pub hoistable: bool,
}

/// One flat XQuery node.
#[derive(Debug, Clone, PartialEq)]
pub enum XInst {
    /// An embedded XPath leaf. `scope` lists the slots lexically visible
    /// here (innermost binding per name), checked for conversion errors
    /// before evaluation.
    XPath {
        /// Root of the compiled expression in the shared XPath arena.
        expr: ExprId,
        /// Slots in scope at this leaf.
        scope: Box<[SlotId]>,
    },
    /// `(e1, e2, …)`
    Sequence(Box<[XId]>),
    /// FLWOR expression.
    Flwor {
        /// Clauses in order.
        clauses: Box<[XClause]>,
        /// Return expression.
        ret: XId,
    },
    /// `some`/`every` quantifier.
    Quantified {
        /// True for `some`, false for `every`.
        some: bool,
        /// Bindings in order.
        binds: Box<[QBind]>,
        /// The satisfies condition.
        satisfies: XId,
    },
    /// Conditional.
    If {
        /// Condition.
        cond: XId,
        /// Then branch.
        then: XId,
        /// Else branch.
        els: XId,
    },
    /// Element constructor.
    Construct {
        /// Element name.
        name: String,
        /// Content expressions.
        content: Box<[XId]>,
    },
    /// XQuery-level function call.
    Call(XCall, Box<[XId]>),
    /// Binary operation.
    Binary(XId, BinOp, XId),
}

/// A compiled XQuery: flat node arena over one shared XPath program.
#[derive(Debug, Clone)]
pub struct XProgram {
    /// The shared XPath program (arena, name pool, slot table).
    pub xp: ir::Program,
    /// Flat XQuery node arena.
    pub insts: Vec<XInst>,
    /// Root node.
    pub root: XId,
    /// Number of leading slots reserved for caller-supplied parameters.
    pub num_params: usize,
}

impl XProgram {
    /// Compiles a query with no parameters.
    pub fn compile(q: &XQuery) -> XProgram {
        XProgram::compile_with_params(q, &[])
    }

    /// Compiles a query whose variables `params` are supplied by the
    /// caller at evaluation time: `params[i]` is bound to slot `i`.
    pub fn compile_with_params(q: &XQuery, params: &[String]) -> XProgram {
        let mut c = Compiler {
            xp: Builder::new(),
            insts: Vec::new(),
            scope: Vec::new(),
        };
        for p in params {
            let slot = c.xp.fresh_slot(p);
            c.scope.push((p.clone(), slot));
        }
        let root = c.add(q);
        XProgram {
            xp: c.xp.finish(),
            insts: c.insts,
            root,
            num_params: params.len(),
        }
    }

    /// Existential evaluation (the checker's mode): parity with
    /// [`crate::eval_query_exists`].
    pub fn eval_exists(&self, doc: &Document, params: &[XValue]) -> Result<bool, XQueryError> {
        let mut st = self.state(doc, params);
        eval_ebv(self.root, &mut st)
    }

    /// Materializing boolean evaluation: parity with
    /// [`crate::eval_query_bool`].
    pub fn eval_bool(&self, doc: &Document, params: &[XValue]) -> Result<bool, XQueryError> {
        Ok(effective_boolean(&self.eval_seq(doc, params)?))
    }

    /// Materializing evaluation: parity with [`crate::eval_query`].
    pub fn eval_seq(&self, doc: &Document, params: &[XValue]) -> Result<Sequence, XQueryError> {
        let mut st = self.state(doc, params);
        eval(self.root, &mut st)
    }

    fn state<'p, 'd>(&'p self, doc: &'d Document, params: &[XValue]) -> St<'p, 'd> {
        assert_eq!(
            params.len(),
            self.num_params,
            "compiled query takes {} parameter(s)",
            self.num_params
        );
        let n = self.xp.num_slots();
        let mut st = St {
            prog: self,
            doc,
            xvals: vec![None; n],
            conv: vec![None; n],
            resolved: self.xp.resolve(doc),
        };
        for (i, v) in params.iter().enumerate() {
            st.xvals[i] = Some(v.clone());
        }
        st
    }
}

struct Compiler {
    xp: Builder,
    insts: Vec<XInst>,
    /// Lexical binder stack (name, slot); innermost last.
    scope: Vec<(String, SlotId)>,
}

impl Compiler {
    fn push(&mut self, inst: XInst) -> XId {
        let id = u32::try_from(self.insts.len()).expect("xquery arena fits u32");
        self.insts.push(inst);
        id
    }

    /// The slots visible here: innermost binding per distinct name.
    fn visible_slots(&self) -> Box<[SlotId]> {
        let mut out: Vec<SlotId> = Vec::with_capacity(self.scope.len());
        for (i, (name, slot)) in self.scope.iter().enumerate() {
            let shadowed = self.scope[i + 1..].iter().any(|(n, _)| n == name);
            if !shadowed {
                out.push(*slot);
            }
        }
        out.into_boxed_slice()
    }

    fn add(&mut self, q: &XQuery) -> XId {
        match q {
            XQuery::XPath(e) => {
                let scope_list = self.visible_slots();
                // The borrow checker won't let the closure capture
                // `self.scope` while `self.xp` is mutably borrowed, so
                // snapshot the (small) binder stack.
                let snapshot = self.scope.clone();
                let expr = self.xp.add_expr(e, &|name| {
                    snapshot
                        .iter()
                        .rev()
                        .find(|(n, _)| n == name)
                        .map(|&(_, s)| s)
                });
                self.push(XInst::XPath {
                    expr,
                    scope: scope_list,
                })
            }
            XQuery::Sequence(items) => {
                let ids = items.iter().map(|i| self.add(i)).collect();
                self.push(XInst::Sequence(ids))
            }
            XQuery::Flwor { clauses, ret } => {
                let depth = self.scope.len();
                let compiled: Vec<XClause> = clauses
                    .iter()
                    .map(|c| match c {
                        Clause::For { var, source } => {
                            let source = self.add(source);
                            let slot = self.xp.fresh_slot(var);
                            self.scope.push((var.clone(), slot));
                            XClause::For { slot, source }
                        }
                        Clause::Let { var, value } => {
                            let value = self.add(value);
                            let slot = self.xp.fresh_slot(var);
                            self.scope.push((var.clone(), slot));
                            XClause::Let { slot, value }
                        }
                        Clause::Where(cond) => XClause::Where(self.add(cond)),
                    })
                    .collect();
                let ret = self.add(ret);
                self.scope.truncate(depth);
                self.push(XInst::Flwor {
                    clauses: compiled.into_boxed_slice(),
                    ret,
                })
            }
            XQuery::Quantified {
                some,
                binds,
                satisfies,
            } => {
                let depth = self.scope.len();
                let compiled: Vec<QBind> = binds
                    .iter()
                    .enumerate()
                    .map(|(i, (var, src))| {
                        let depends = binds[..i].iter().any(|(v, _)| mentions_var(src, v));
                        let source = self.add(src);
                        let slot = self.xp.fresh_slot(var);
                        self.scope.push((var.clone(), slot));
                        QBind {
                            slot,
                            source,
                            hoistable: i > 0 && !depends,
                        }
                    })
                    .collect();
                let satisfies = self.add(satisfies);
                self.scope.truncate(depth);
                self.push(XInst::Quantified {
                    some: *some,
                    binds: compiled.into_boxed_slice(),
                    satisfies,
                })
            }
            XQuery::If { cond, then, els } => {
                let cond = self.add(cond);
                let then = self.add(then);
                let els = self.add(els);
                self.push(XInst::If { cond, then, els })
            }
            XQuery::Construct { name, content } => {
                let content = content.iter().map(|c| self.add(c)).collect();
                self.push(XInst::Construct {
                    name: name.clone(),
                    content,
                })
            }
            XQuery::Call(name, args) => {
                let args = args.iter().map(|a| self.add(a)).collect();
                self.push(XInst::Call(XCall::from_name(name), args))
            }
            XQuery::Binary(a, op, b) => {
                let a = self.add(a);
                let b = self.add(b);
                self.push(XInst::Binary(a, *op, b))
            }
        }
    }
}

/// Evaluation state: slot values plus the per-evaluation resolved name
/// pool. Binding a slot converts its sequence to an XPath value once;
/// conversion failures are remembered and raised at the first XPath leaf
/// that has the slot in scope.
struct St<'p, 'd> {
    prog: &'p XProgram,
    doc: &'d Document,
    xvals: Vec<Option<XValue>>,
    conv: Vec<Option<String>>,
    resolved: Vec<Option<Symbol>>,
}

impl<'p, 'd> St<'p, 'd> {
    fn inst(&self, id: XId) -> &'p XInst {
        &self.prog.insts[id as usize]
    }

    fn bind(&mut self, slot: SlotId, seq: Sequence) {
        match sequence_to_xvalue(&seq) {
            Ok(v) => {
                self.xvals[slot as usize] = Some(v);
                self.conv[slot as usize] = None;
            }
            Err(m) => {
                self.xvals[slot as usize] = None;
                self.conv[slot as usize] = Some(m);
            }
        }
    }

    /// Raises the interpreter's eager environment-conversion error for
    /// any in-scope slot whose last binding had no XPath equivalent.
    fn check_scope(&self, scope: &[SlotId]) -> Result<(), XQueryError> {
        for &s in scope {
            if let Some(m) = &self.conv[s as usize] {
                return Err(XQueryError::Type(format!(
                    "variable ${}: {m}",
                    self.prog.xp.var_names[s as usize]
                )));
            }
        }
        Ok(())
    }

    fn xp_scope(&self) -> Scope<'p, 'd, '_> {
        Scope {
            prog: &self.prog.xp,
            doc: self.doc,
            item: NodeRef::Node(self.doc.document_node()),
            position: 1,
            size: 1,
            slots: &self.xvals,
            resolved: &self.resolved,
        }
    }
}

#[inline]
fn charge_budget() -> Result<(), XQueryError> {
    xic_xpath::budget::charge(1)
        .map_err(|_| XQueryError::XPath(xic_xpath::EvalError::BudgetExhausted))
}

/// Lazy effective-boolean-value evaluation, mirroring the interpreter's
/// `eval_ebv`.
fn eval_ebv(id: XId, st: &mut St) -> Result<bool, XQueryError> {
    match st.inst(id) {
        XInst::XPath { expr, scope } => {
            st.check_scope(scope)?;
            Ok(ir::eval_exists(*expr, &st.xp_scope())?)
        }
        XInst::Quantified {
            some,
            binds,
            satisfies,
        } => eval_quantified(binds, *satisfies, st, *some, true),
        XInst::If { cond, then, els } => {
            if eval_ebv(*cond, st)? {
                eval_ebv(*then, st)
            } else {
                eval_ebv(*els, st)
            }
        }
        XInst::Binary(a, BinOp::Or, b) => Ok(eval_ebv(*a, st)? || eval_ebv(*b, st)?),
        XInst::Binary(a, BinOp::And, b) => Ok(eval_ebv(*a, st)? && eval_ebv(*b, st)?),
        XInst::Call(op, args) if args.len() == 1 => match op {
            XCall::Exists => eval_nonempty(args[0], st),
            XCall::Empty => Ok(!eval_nonempty(args[0], st)?),
            XCall::Not => Ok(!eval_ebv(args[0], st)?),
            XCall::Boolean => eval_ebv(args[0], st),
            _ => Ok(effective_boolean(&eval(id, st)?)),
        },
        _ => Ok(effective_boolean(&eval(id, st)?)),
    }
}

/// Lazy sequence-nonemptiness, mirroring the interpreter's
/// `eval_nonempty`.
fn eval_nonempty(id: XId, st: &mut St) -> Result<bool, XQueryError> {
    match st.inst(id) {
        XInst::XPath { expr, scope } => {
            st.check_scope(scope)?;
            Ok(ir::eval_nonempty(*expr, &st.xp_scope())?)
        }
        XInst::Sequence(items) => {
            for &i in items.iter() {
                if eval_nonempty(i, st)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        XInst::Flwor { clauses, ret } => flwor_exists(clauses, *ret, st),
        XInst::If { cond, then, els } => {
            if eval_ebv(*cond, st)? {
                eval_nonempty(*then, st)
            } else {
                eval_nonempty(*els, st)
            }
        }
        XInst::Construct { .. } => Ok(true),
        _ => Ok(!eval(id, st)?.is_empty()),
    }
}

/// Existential FLWOR on an explicit backtracking stack: true iff the
/// iteration would emit at least one item. One frame per `for` clause
/// holds its clause index and live item iterator; `let` bindings are
/// (re)established on each descent, so no unbinding is needed on
/// backtrack. Item order, binding counts and budget charges match the
/// interpreter's recursive `flwor_nonempty` exactly.
fn flwor_exists(clauses: &[XClause], ret: XId, st: &mut St) -> Result<bool, XQueryError> {
    let mut frames: Vec<(usize, std::vec::IntoIter<Item>)> = Vec::new();
    let mut idx = 0;
    let mut descending = true;
    loop {
        if descending {
            let Some(clause) = clauses.get(idx) else {
                if eval_nonempty(ret, st)? {
                    return Ok(true);
                }
                descending = false;
                continue;
            };
            match clause {
                XClause::Let { slot, value } => {
                    let seq = eval(*value, st)?;
                    st.bind(*slot, seq);
                    idx += 1;
                }
                XClause::Where(cond) => {
                    if eval_ebv(*cond, st)? {
                        idx += 1;
                    } else {
                        descending = false;
                    }
                }
                XClause::For { source, .. } => {
                    let seq = eval(*source, st)?;
                    frames.push((idx, seq.into_iter()));
                    descending = false; // the backtrack arm pulls the first item
                }
            }
        } else {
            let Some((fidx, iter)) = frames.last_mut() else {
                return Ok(false);
            };
            match iter.next() {
                Some(item) => {
                    xic_obs::incr(xic_obs::Counter::XqueryBindingsVisited);
                    charge_budget()?;
                    let XClause::For { slot, .. } = clauses[*fidx] else {
                        unreachable!("frames are pushed for For clauses only");
                    };
                    idx = *fidx + 1;
                    st.bind(slot, vec![item]);
                    descending = true;
                }
                None => {
                    frames.pop();
                }
            }
        }
    }
}

/// Materializing FLWOR on the same backtracking stack, collecting every
/// emitted item (the interpreter's `eval_flwor`).
fn flwor_collect(
    clauses: &[XClause],
    ret: XId,
    st: &mut St,
    out: &mut Sequence,
) -> Result<(), XQueryError> {
    let mut frames: Vec<(usize, std::vec::IntoIter<Item>)> = Vec::new();
    let mut idx = 0;
    let mut descending = true;
    loop {
        if descending {
            let Some(clause) = clauses.get(idx) else {
                out.extend(eval(ret, st)?);
                descending = false;
                continue;
            };
            match clause {
                XClause::Let { slot, value } => {
                    let seq = eval(*value, st)?;
                    st.bind(*slot, seq);
                    idx += 1;
                }
                XClause::Where(cond) => {
                    if effective_boolean(&eval(*cond, st)?) {
                        idx += 1;
                    } else {
                        descending = false;
                    }
                }
                XClause::For { source, .. } => {
                    let seq = eval(*source, st)?;
                    frames.push((idx, seq.into_iter()));
                    descending = false;
                }
            }
        } else {
            let Some((fidx, iter)) = frames.last_mut() else {
                return Ok(());
            };
            match iter.next() {
                Some(item) => {
                    xic_obs::incr(xic_obs::Counter::XqueryBindingsVisited);
                    charge_budget()?;
                    let XClause::For { slot, .. } = clauses[*fidx] else {
                        unreachable!("frames are pushed for For clauses only");
                    };
                    idx = *fidx + 1;
                    st.bind(slot, vec![item]);
                    descending = true;
                }
                None => {
                    frames.pop();
                }
            }
        }
    }
}

/// Quantifier evaluation on an explicit frame stack. Hoistable sources
/// (loop-invariant, decided at compile time) are evaluated once up
/// front, in binding order, exactly like the interpreter's hoist pass.
/// `lazy` selects existential consumption of the satisfies condition.
fn eval_quantified(
    binds: &[QBind],
    satisfies: XId,
    st: &mut St,
    some: bool,
    lazy: bool,
) -> Result<bool, XQueryError> {
    let hoisted: Vec<Option<Sequence>> = binds
        .iter()
        .map(|b| {
            if b.hoistable {
                eval(b.source, st).map(Some)
            } else {
                Ok(None)
            }
        })
        .collect::<Result<_, _>>()?;
    let mut frames: Vec<std::vec::IntoIter<Item>> = Vec::new();
    let mut descending = true;
    loop {
        if descending {
            let idx = frames.len();
            if idx == binds.len() {
                let v = if lazy {
                    eval_ebv(satisfies, st)?
                } else {
                    effective_boolean(&eval(satisfies, st)?)
                };
                if v == some {
                    // `some`: a witness suffices; `every`: a
                    // counterexample kills.
                    return Ok(some);
                }
                descending = false;
                continue;
            }
            let items = match &hoisted[idx] {
                Some(seq) => seq.clone(),
                None => eval(binds[idx].source, st)?,
            };
            frames.push(items.into_iter());
            descending = false;
        } else {
            let Some(iter) = frames.last_mut() else {
                return Ok(!some);
            };
            match iter.next() {
                Some(item) => {
                    xic_obs::incr(xic_obs::Counter::XqueryBindingsVisited);
                    charge_budget()?;
                    let slot = binds[frames.len() - 1].slot;
                    st.bind(slot, vec![item]);
                    descending = true;
                }
                None => {
                    frames.pop();
                }
            }
        }
    }
}

/// Materializing evaluation, mirroring the interpreter's `eval`.
fn eval(id: XId, st: &mut St) -> Result<Sequence, XQueryError> {
    match st.inst(id) {
        XInst::XPath { expr, scope } => {
            st.check_scope(scope)?;
            let v = ir::eval_operand(*expr, &st.xp_scope())?;
            Ok(xvalue_to_sequence(v))
        }
        XInst::Sequence(items) => {
            let mut out = Vec::new();
            for &i in items.iter() {
                out.extend(eval(i, st)?);
            }
            Ok(out)
        }
        XInst::Flwor { clauses, ret } => {
            let mut out = Vec::new();
            flwor_collect(clauses, *ret, st, &mut out)?;
            Ok(out)
        }
        XInst::Quantified {
            some,
            binds,
            satisfies,
        } => {
            let r = eval_quantified(binds, *satisfies, st, *some, false)?;
            Ok(vec![Item::Bool(r)])
        }
        XInst::If { cond, then, els } => {
            if effective_boolean(&eval(*cond, st)?) {
                eval(*then, st)
            } else {
                eval(*els, st)
            }
        }
        XInst::Construct { name, content } => {
            let mut children = Vec::new();
            for &c in content.iter() {
                for item in eval(c, st)? {
                    children.push(match item {
                        Item::Node(n) => node_to_constructed(st.doc, &n),
                        Item::Elem(e) => ConstructedChild::Elem(*e),
                        atomic => ConstructedChild::Text(atomic.string_value(st.doc)),
                    });
                }
            }
            Ok(vec![Item::Elem(Box::new(Constructed {
                name: name.clone(),
                attrs: Vec::new(),
                children,
            }))])
        }
        XInst::Call(op, args) => eval_call(op, args, st),
        XInst::Binary(a, op, b) => eval_binary(*a, *op, *b, st),
    }
}

fn eval_call(op: &XCall, args: &[XId], st: &mut St) -> Result<Sequence, XQueryError> {
    let name = op.display_name();
    let one = |args: &[XId], st: &mut St| -> Result<Sequence, XQueryError> {
        if args.len() == 1 {
            eval(args[0], st)
        } else {
            Err(XQueryError::Type(format!(
                "{name}() expects 1 argument, got {}",
                args.len()
            )))
        }
    };
    match op {
        XCall::Exists => Ok(vec![Item::Bool(!one(args, st)?.is_empty())]),
        XCall::DistinctValues => {
            let seq = one(args, st)?;
            let mut seen = std::collections::HashSet::new();
            let mut out = Vec::new();
            for item in seq {
                let s = item.string_value(st.doc);
                if seen.insert(s.clone()) {
                    out.push(Item::Str(s));
                }
            }
            Ok(out)
        }
        XCall::Max | XCall::Min => {
            let seq = one(args, st)?;
            let mut best: Option<f64> = None;
            for item in seq {
                let v = item
                    .string_value(st.doc)
                    .trim()
                    .parse::<f64>()
                    .unwrap_or(f64::NAN);
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        if (matches!(op, XCall::Max)) == (v > b) {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.map(Item::Num).into_iter().collect())
        }
        XCall::Empty => Ok(vec![Item::Bool(one(args, st)?.is_empty())]),
        XCall::Count => Ok(vec![Item::Num(one(args, st)?.len() as f64)]),
        XCall::Not => Ok(vec![Item::Bool(!effective_boolean(&one(args, st)?))]),
        XCall::Boolean => Ok(vec![Item::Bool(effective_boolean(&one(args, st)?))]),
        XCall::String => {
            let seq = one(args, st)?;
            Ok(vec![Item::Str(
                seq.first()
                    .map(|i| i.string_value(st.doc))
                    .unwrap_or_default(),
            )])
        }
        XCall::Unknown(other) => Err(XQueryError::Type(format!(
            "unsupported XQuery-level function {other}()"
        ))),
    }
}

fn eval_binary(a: XId, op: BinOp, b: XId, st: &mut St) -> Result<Sequence, XQueryError> {
    match op {
        BinOp::Or => {
            let l = effective_boolean(&eval(a, st)?);
            if l {
                return Ok(vec![Item::Bool(true)]);
            }
            let r = effective_boolean(&eval(b, st)?);
            return Ok(vec![Item::Bool(r)]);
        }
        BinOp::And => {
            let l = effective_boolean(&eval(a, st)?);
            if !l {
                return Ok(vec![Item::Bool(false)]);
            }
            let r = effective_boolean(&eval(b, st)?);
            return Ok(vec![Item::Bool(r)]);
        }
        _ => {}
    }
    let va = sequence_to_xvalue(&eval(a, st)?).map_err(XQueryError::Type)?;
    let vb = sequence_to_xvalue(&eval(b, st)?).map_err(XQueryError::Type)?;
    match op {
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => Ok(vec![
            Item::Bool(xic_xpath::compare_values(&va, op, &vb, st.doc)),
        ]),
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
            let x = va.to_num(st.doc);
            let y = vb.to_num(st.doc);
            let r = match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
                BinOp::Mod => x % y,
                _ => unreachable!(),
            };
            Ok(vec![Item::Num(r)])
        }
        BinOp::Union => match (va, vb) {
            (XValue::Nodes(mut x), XValue::Nodes(y)) => {
                x.extend(y);
                xic_xpath::dedupe_doc_order(st.doc, &mut x);
                Ok(x.into_iter().map(Item::Node).collect())
            }
            _ => Err(XQueryError::Type("union of non-node-sets".to_string())),
        },
        BinOp::Or | BinOp::And => unreachable!("handled above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_query, eval_query_bool, eval_query_exists};
    use crate::parser::parse_query;
    use xic_xml::parse_document;

    const DOC: &str = "<review>\
        <track><name>DB</name>\
          <rev><name>Ann</name>\
            <sub><title>S1</title><auts><name>Bob</name></auts></sub>\
            <sub><title>S2</title><auts><name>Ann</name></auts></sub>\
          </rev>\
          <rev><name>Dan</name>\
            <sub><title>S3</title><auts><name>Eve</name></auts></sub>\
            <sub><title>S4</title><auts><name>Flo</name></auts></sub>\
            <sub><title>S5</title><auts><name>Gus</name></auts></sub>\
            <sub><title>S6</title><auts><name>Hal</name></auts></sub>\
            <sub><title>S7</title><auts><name>Ivy</name></auts></sub>\
          </rev>\
        </track>\
      </review>";

    const QUERIES: &[&str] = &[
        "some $lr in //rev satisfies $lr/sub/auts/name/text() = $lr/name/text()",
        "some $lr in //rev[name/text() = 'Dan'] satisfies \
         $lr/sub/auts/name/text() = $lr/name/text()",
        "exists(for $lr in //rev let $d := $lr/sub where count($d) > 4 return <idle/>)",
        "exists(for $lr in //rev let $d := $lr/sub where count($d) > 5 return <idle/>)",
        "every $s in //sub satisfies count($s/auts) = 1",
        "every $r in //rev satisfies count($r/sub) > 3",
        "not(exists(for $z in //zzz return $z))",
        "empty(//zzz)",
        "exists(//rev | //track)",
        "if (count(//rev) = 2) then 'yes' else ''",
        "boolean((for $x in //track return $x/name))",
        "exists(('', ''))",
        "boolean('')",
        "count((1, 2, 3)) + 1",
        "2 >= 3 or count(//sub) = 7",
        "some $a in //rev, $b in //rev satisfies $a/name/text() = $b/name/text()",
        "some $h in //auts, $r in //rev satisfies $h/name/text() = $r/name/text()",
        "for $s in //sub return $s/title/text()",
        "for $s in //sub where $s/auts/name = 'Eve' return $s",
        "for $a in //rev, $b in //rev return <idle/>",
        "for $r in //rev let $titles := $r/sub/title return count($titles)",
        "(for $x in //track return $x/name) | //rev/name",
        "element wrap { //track/name }",
        "some $Ir in //rev, $H in //aut \
         satisfies $H/name/text() = $Ir/name/text() \
         and $H/../aut/name/text() = $Ir/sub/auts/name/text()",
    ];

    /// Compiled evaluation must agree with the interpreter on every mode:
    /// materialized sequence, materialized boolean, existential boolean.
    #[test]
    fn compiled_agrees_with_interpreter() {
        let (doc, _) = parse_document(DOC).unwrap();
        for query in QUERIES {
            let q = parse_query(query).unwrap_or_else(|e| panic!("{query}: {e}"));
            let prog = XProgram::compile(&q);
            let seq_i = eval_query(&q, &doc).unwrap_or_else(|e| panic!("{query}: {e}"));
            let seq_c = prog.eval_seq(&doc, &[]).unwrap_or_else(|e| panic!("{query}: {e}"));
            assert_eq!(seq_c, seq_i, "sequence differs on {query}");
            assert_eq!(
                prog.eval_bool(&doc, &[]).unwrap(),
                eval_query_bool(&q, &doc).unwrap(),
                "materialized boolean differs on {query}"
            );
            assert_eq!(
                prog.eval_exists(&doc, &[]).unwrap(),
                eval_query_exists(&q, &doc).unwrap(),
                "existential answer differs on {query}"
            );
        }
    }

    /// The compiled existential driver must short-circuit at the same
    /// binding as the interpreter (same obs counter value), and the
    /// materializing driver must enumerate the same bindings.
    #[test]
    fn binding_counters_match_interpreter() {
        let (doc, _) = parse_document(DOC).unwrap();
        for query in QUERIES {
            let q = parse_query(query).unwrap();
            let prog = XProgram::compile(&q);
            xic_obs::reset();
            let _ = eval_query_exists(&q, &doc).unwrap();
            let interp = xic_obs::counter(xic_obs::Counter::XqueryBindingsVisited);
            xic_obs::reset();
            let _ = prog.eval_exists(&doc, &[]).unwrap();
            let compiled = xic_obs::counter(xic_obs::Counter::XqueryBindingsVisited);
            assert_eq!(compiled, interp, "existential binding count on {query}");
            xic_obs::reset();
            let _ = eval_query(&q, &doc).unwrap();
            let interp_full = xic_obs::counter(xic_obs::Counter::XqueryBindingsVisited);
            xic_obs::reset();
            let _ = prog.eval_seq(&doc, &[]).unwrap();
            let compiled_full = xic_obs::counter(xic_obs::Counter::XqueryBindingsVisited);
            assert_eq!(
                compiled_full, interp_full,
                "materializing binding count on {query}"
            );
        }
    }

    #[test]
    fn parameters_bind_leading_slots() {
        let (doc, _) = parse_document(DOC).unwrap();
        // The paper's per-update residual shape: check one concrete rev.
        let q = parse_query(
            "some $lr in $xic_p_rev satisfies \
             $lr/sub/auts/name/text() = $lr/name/text()",
        )
        .unwrap();
        let prog = XProgram::compile_with_params(&q, &["xic_p_rev".to_string()]);
        let revs = {
            let all = parse_query("for $r in //rev return $r").unwrap();
            eval_query(&all, &doc).unwrap()
        };
        let node = |item: &Item| match item {
            Item::Node(n) => n.clone(),
            other => panic!("{other:?}"),
        };
        // Ann (first rev) self-reviews S2; Dan (second rev) does not.
        let ann = XValue::Nodes(vec![node(&revs[0])]);
        let dan = XValue::Nodes(vec![node(&revs[1])]);
        assert!(prog.eval_exists(&doc, &[ann]).unwrap());
        assert!(!prog.eval_exists(&doc, &[dan]).unwrap());
    }

    #[test]
    fn shadowed_binders_resolve_innermost() {
        let (doc, _) = parse_document(DOC).unwrap();
        let query = "for $x in //rev return (for $x in $x/sub return $x/title/text())";
        let q = parse_query(query).unwrap();
        let prog = XProgram::compile(&q);
        assert_eq!(
            prog.eval_seq(&doc, &[]).unwrap(),
            eval_query(&q, &doc).unwrap()
        );
    }

    #[test]
    fn type_errors_match_interpreter() {
        let (doc, _) = parse_document("<r/>").unwrap();
        for query in [
            "('a', 'b') = 'a'",
            "1 | 2",
            "frob(//x)",
            "exists(//x, //y)",
            "for $v in (for $a in ('a','b') return $a) return exists($v)",
        ] {
            let q = parse_query(query).unwrap();
            let prog = XProgram::compile(&q);
            let i = eval_query(&q, &doc);
            let c = prog.eval_seq(&doc, &[]);
            match (i, c) {
                (Err(ie), Err(ce)) => {
                    assert_eq!(ce.to_string(), ie.to_string(), "error differs on {query}")
                }
                (i, c) => assert_eq!(c, i, "result differs on {query}"),
            }
        }
    }

    #[test]
    fn conversion_error_raised_even_for_unused_variable() {
        // The interpreter converts every in-scope variable eagerly when
        // entering an XPath leaf; the compiled engine must preserve that.
        let (doc, _) = parse_document(DOC).unwrap();
        let query = "for $bad in exists((let $m := ('a','b') return 1)) return $bad";
        if let Ok(q) = parse_query(query) {
            let prog = XProgram::compile(&q);
            assert_eq!(
                prog.eval_seq(&doc, &[]).is_err(),
                eval_query(&q, &doc).is_err()
            );
        }
        // Direct form: a multi-atomic let in scope of an unrelated path.
        let query2 = "some $r in //rev satisfies \
            exists(for $m in ('a', 'b') let $two := ('x', 'y') where //track return $m)";
        let q2 = parse_query(query2).unwrap();
        let prog2 = XProgram::compile(&q2);
        let i = eval_query_exists(&q2, &doc);
        let c = prog2.eval_exists(&doc, &[]);
        match (i, c) {
            (Err(ie), Err(ce)) => assert_eq!(ce.to_string(), ie.to_string()),
            (i, c) => assert_eq!(c, i),
        }
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let (doc, _) = parse_document(DOC).unwrap();
        let q = parse_query(
            "some $a in //rev, $b in //sub satisfies $a/name/text() = $b/auts/name/text()",
        )
        .unwrap();
        let prog = XProgram::compile(&q);
        let guard = xic_xpath::budget::arm(xic_xpath::EvalBudget::new(2));
        let err = prog.eval_exists(&doc, &[]).unwrap_err();
        drop(guard);
        assert!(err.is_budget_exhausted());
    }
}

//! The XQuery item/sequence model and conversions to the XPath value
//! model.

use xic_xml::Document;
use xic_xpath::{NodeRef, XValue};

/// A constructed element (output of an element constructor). Constructed
/// nodes live outside the queried document: they are results, never query
/// targets, so a simple owned tree suffices.
#[derive(Debug, Clone, PartialEq)]
pub struct Constructed {
    /// Element name.
    pub name: String,
    /// Attributes.
    pub attrs: Vec<(String, String)>,
    /// Children: either nested constructed elements or text runs.
    pub children: Vec<ConstructedChild>,
}

/// A child of a constructed element.
#[derive(Debug, Clone, PartialEq)]
pub enum ConstructedChild {
    /// Nested element.
    Elem(Constructed),
    /// Text content.
    Text(String),
}

impl Constructed {
    /// Serializes the constructed tree (for display/tests).
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attrs {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&xic_xml::escape::escape_attr(v));
            out.push('"');
        }
        if self.children.is_empty() {
            out.push_str("/>");
            return;
        }
        out.push('>');
        for c in &self.children {
            match c {
                ConstructedChild::Elem(e) => e.write(out),
                ConstructedChild::Text(t) => out.push_str(&xic_xml::escape::escape_text(t)),
            }
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push('>');
    }
}

/// One item of an XQuery sequence.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A node of the queried document.
    Node(NodeRef),
    /// A string.
    Str(String),
    /// A number.
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// A constructed element.
    Elem(Box<Constructed>),
}

impl Item {
    /// String value of the item.
    pub fn string_value(&self, doc: &Document) -> String {
        match self {
            Item::Node(n) => n.string_value(doc),
            Item::Str(s) => s.clone(),
            Item::Num(n) => xic_xpath::value::format_number(*n),
            Item::Bool(b) => b.to_string(),
            Item::Elem(e) => e.to_xml(),
        }
    }
}

/// An XQuery sequence.
pub type Sequence = Vec<Item>;

/// Converts a sequence to an XPath value so it can be bound as an XPath
/// variable. Node sequences become node-sets; singleton atomics become the
/// atomic; the empty sequence becomes the empty node-set. Sequences that
/// have no XPath 1.0 counterpart (mixed, multi-atomic, constructed) are
/// rejected.
pub fn sequence_to_xvalue(seq: &Sequence) -> Result<XValue, String> {
    if seq.is_empty() {
        return Ok(XValue::Nodes(Vec::new()));
    }
    if seq.iter().all(|i| matches!(i, Item::Node(_))) {
        return Ok(XValue::Nodes(
            seq.iter()
                .map(|i| match i {
                    Item::Node(n) => n.clone(),
                    _ => unreachable!(),
                })
                .collect(),
        ));
    }
    if seq.len() == 1 {
        return Ok(match &seq[0] {
            Item::Str(s) => XValue::Str(s.clone()),
            Item::Num(n) => XValue::Num(*n),
            Item::Bool(b) => XValue::Bool(*b),
            Item::Elem(_) => {
                return Err("constructed elements cannot cross into XPath".to_string())
            }
            Item::Node(_) => unreachable!("handled above"),
        });
    }
    Err("sequence has no XPath 1.0 value equivalent".to_string())
}

/// Converts an XPath value into a sequence.
pub fn xvalue_to_sequence(v: XValue) -> Sequence {
    match v {
        XValue::Nodes(ns) => ns.into_iter().map(Item::Node).collect(),
        XValue::Str(s) => vec![Item::Str(s)],
        XValue::Num(n) => vec![Item::Num(n)],
        XValue::Bool(b) => vec![Item::Bool(b)],
    }
}

/// The XQuery effective boolean value of a sequence.
pub fn effective_boolean(seq: &Sequence) -> bool {
    match seq.as_slice() {
        [] => false,
        [Item::Bool(b)] => *b,
        [Item::Num(n)] => *n != 0.0 && !n.is_nan(),
        [Item::Str(s)] => !s.is_empty(),
        _ => true, // non-empty sequence starting with a node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructed_serialization() {
        let c = Constructed {
            name: "idle".into(),
            attrs: vec![],
            children: vec![],
        };
        assert_eq!(c.to_xml(), "<idle/>");
        let c2 = Constructed {
            name: "r".into(),
            attrs: vec![("a".into(), "x\"y".into())],
            children: vec![
                ConstructedChild::Text("t<".into()),
                ConstructedChild::Elem(c),
            ],
        };
        assert_eq!(c2.to_xml(), "<r a=\"x&quot;y\">t&lt;<idle/></r>");
    }

    #[test]
    fn conversions() {
        assert_eq!(
            sequence_to_xvalue(&vec![Item::Num(3.0)]).unwrap(),
            XValue::Num(3.0)
        );
        assert_eq!(
            sequence_to_xvalue(&Vec::new()).unwrap(),
            XValue::Nodes(vec![])
        );
        assert!(sequence_to_xvalue(&vec![Item::Num(1.0), Item::Num(2.0)]).is_err());
        assert_eq!(xvalue_to_sequence(XValue::Str("x".into())), vec![Item::Str("x".into())]);
    }

    #[test]
    fn effective_boolean_rules() {
        assert!(!effective_boolean(&vec![]));
        assert!(!effective_boolean(&vec![Item::Bool(false)]));
        assert!(effective_boolean(&vec![Item::Bool(true)]));
        assert!(!effective_boolean(&vec![Item::Num(0.0)]));
        assert!(effective_boolean(&vec![Item::Num(2.0)]));
        assert!(!effective_boolean(&vec![Item::Str(String::new())]));
        assert!(effective_boolean(&vec![Item::Str("x".into())]));
    }
}

//! XQuery evaluation.

use crate::ast::{Clause, XQuery};
use crate::item::{
    effective_boolean, sequence_to_xvalue, xvalue_to_sequence, Constructed, ConstructedChild,
    Item, Sequence,
};
use std::collections::HashMap;
use std::fmt;
use xic_xml::{Document, NodeKind};
use xic_xpath::{compare_values, BinOp, Context, NodeRef, XValue};

/// XQuery evaluation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum XQueryError {
    /// Error from an embedded XPath expression.
    XPath(xic_xpath::EvalError),
    /// A value crossed a boundary it cannot cross (e.g. a multi-atomic
    /// sequence used as an XPath variable).
    Type(String),
}

impl fmt::Display for XQueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XQueryError::XPath(e) => write!(f, "{e}"),
            XQueryError::Type(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for XQueryError {}

impl From<xic_xpath::EvalError> for XQueryError {
    fn from(e: xic_xpath::EvalError) -> Self {
        XQueryError::XPath(e)
    }
}

impl XQueryError {
    /// True if this failure is step-budget exhaustion (see
    /// `xic_xpath::budget`), i.e. the evaluation was cut short rather
    /// than wrong — callers may retry unbudgeted.
    pub fn is_budget_exhausted(&self) -> bool {
        matches!(self, XQueryError::XPath(xic_xpath::EvalError::BudgetExhausted))
    }
}

/// Deducts one FLWOR/quantifier binding from the thread's armed step
/// budget (free when no budget is armed).
#[inline]
fn charge_budget() -> Result<(), XQueryError> {
    xic_xpath::budget::charge(1)
        .map_err(|_| XQueryError::XPath(xic_xpath::EvalError::BudgetExhausted))
}

/// Evaluates a query against a document with no initial bindings.
pub fn eval_query(q: &XQuery, doc: &Document) -> Result<Sequence, XQueryError> {
    let env = Env::new();
    eval(q, doc, &env)
}

/// Evaluates a query and reduces the result to its effective boolean
/// value (the form the integrity checker consumes: `true` = violation).
///
/// This is the *materializing* evaluator: it builds the full result
/// sequence first. The checker uses [`eval_query_exists`] instead; this
/// entry point remains as the reference/ablation baseline the benches
/// and the difftest oracle compare against.
pub fn eval_query_bool(q: &XQuery, doc: &Document) -> Result<bool, XQueryError> {
    Ok(effective_boolean(&eval_query(q, doc)?))
}

/// Existential evaluation: the query's effective boolean value, computed
/// with first-witness short-circuit. Returns exactly what
/// [`eval_query_bool`] returns (the difftest oracle enforces this), but:
///
/// * embedded XPath goes through [`xic_xpath::evaluate_exists`], which
///   stops a path walk at the first node it reaches;
/// * `exists(FLWOR)` stops at the first binding whose `where` clause
///   passes instead of materializing every violation witness;
/// * quantifier `satisfies` conditions are themselves consumed lazily.
///
/// Constraint templates only ever ask "is there a violation witness?",
/// so this is the evaluation mode the [`Checker`] runs on.
///
/// [`Checker`]: ../xicheck/struct.Checker.html
pub fn eval_query_exists(q: &XQuery, doc: &Document) -> Result<bool, XQueryError> {
    eval_ebv(q, doc, &Env::new())
}

/// Lazy effective-boolean-value evaluation (see [`eval_query_exists`]).
fn eval_ebv(q: &XQuery, doc: &Document, env: &Env) -> Result<bool, XQueryError> {
    match q {
        XQuery::XPath(e) => {
            let ctx = env.xpath_context(doc)?;
            Ok(xic_xpath::evaluate_exists(e, &ctx)?)
        }
        XQuery::Quantified {
            some,
            binds,
            satisfies,
        } => eval_quantified(binds, satisfies, doc, env, *some, true),
        XQuery::If { cond, then, els } => {
            if eval_ebv(cond, doc, env)? {
                eval_ebv(then, doc, env)
            } else {
                eval_ebv(els, doc, env)
            }
        }
        XQuery::Binary(a, BinOp::Or, b) => {
            Ok(eval_ebv(a, doc, env)? || eval_ebv(b, doc, env)?)
        }
        XQuery::Binary(a, BinOp::And, b) => {
            Ok(eval_ebv(a, doc, env)? && eval_ebv(b, doc, env)?)
        }
        XQuery::Call(name, args) if args.len() == 1 => match name.as_str() {
            "exists" => eval_nonempty(&args[0], doc, env),
            "empty" => Ok(!eval_nonempty(&args[0], doc, env)?),
            "not" => Ok(!eval_ebv(&args[0], doc, env)?),
            "boolean" => eval_ebv(&args[0], doc, env),
            _ => Ok(effective_boolean(&eval(q, doc, env)?)),
        },
        _ => Ok(effective_boolean(&eval(q, doc, env)?)),
    }
}

/// Lazy sequence-nonemptiness (the `exists()`/`empty()` semantics:
/// `[""]` is non-empty even though its effective boolean value is false).
fn eval_nonempty(q: &XQuery, doc: &Document, env: &Env) -> Result<bool, XQueryError> {
    match q {
        XQuery::XPath(e) => {
            let ctx = env.xpath_context(doc)?;
            Ok(xic_xpath::evaluate_nonempty(e, &ctx)?)
        }
        XQuery::Sequence(items) => {
            for i in items {
                if eval_nonempty(i, doc, env)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        XQuery::Flwor { clauses, ret } => flwor_nonempty(clauses, 0, ret, doc, env),
        XQuery::If { cond, then, els } => {
            if eval_ebv(cond, doc, env)? {
                eval_nonempty(then, doc, env)
            } else {
                eval_nonempty(els, doc, env)
            }
        }
        // A constructor always yields exactly one element.
        XQuery::Construct { .. } => Ok(true),
        // Everything else yields a single item by construction (booleans,
        // numbers, comparison results) or has no cheaper existential form
        // than evaluating it (unions); fall back to the materializer.
        _ => Ok(!eval(q, doc, env)?.is_empty()),
    }
}

/// Existential FLWOR: true iff the iteration would emit at least one
/// item, stopping at the first binding whose `where` chain passes and
/// whose `return` is non-empty.
fn flwor_nonempty(
    clauses: &[Clause],
    idx: usize,
    ret: &XQuery,
    doc: &Document,
    env: &Env,
) -> Result<bool, XQueryError> {
    let Some(clause) = clauses.get(idx) else {
        return eval_nonempty(ret, doc, env);
    };
    match clause {
        Clause::For { var, source } => {
            for item in eval(source, doc, env)? {
                xic_obs::incr(xic_obs::Counter::XqueryBindingsVisited);
                charge_budget()?;
                let env2 = env.bind(var, vec![item]);
                if flwor_nonempty(clauses, idx + 1, ret, doc, &env2)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Clause::Let { var, value } => {
            let seq = eval(value, doc, env)?;
            let env2 = env.bind(var, seq);
            flwor_nonempty(clauses, idx + 1, ret, doc, &env2)
        }
        Clause::Where(cond) => {
            if eval_ebv(cond, doc, env)? {
                flwor_nonempty(clauses, idx + 1, ret, doc, env)
            } else {
                Ok(false)
            }
        }
    }
}

/// The dynamic environment: variable → sequence.
#[derive(Debug, Clone, Default)]
pub struct Env {
    vars: HashMap<String, Sequence>,
}

impl Env {
    /// Empty environment.
    pub fn new() -> Env {
        Env::default()
    }

    /// Returns a copy with one more binding.
    #[must_use]
    pub fn bind(&self, var: &str, seq: Sequence) -> Env {
        let mut e = self.clone();
        e.vars.insert(var.to_string(), seq);
        e
    }

    /// Builds the XPath context equivalent of this environment.
    fn xpath_context<'d>(&self, doc: &'d Document) -> Result<Context<'d>, XQueryError> {
        let mut ctx = Context::root(doc);
        for (name, seq) in &self.vars {
            let v = sequence_to_xvalue(seq)
                .map_err(|m| XQueryError::Type(format!("variable ${name}: {m}")))?;
            ctx.vars.insert(name.clone(), v);
        }
        Ok(ctx)
    }
}

fn eval(q: &XQuery, doc: &Document, env: &Env) -> Result<Sequence, XQueryError> {
    match q {
        XQuery::XPath(e) => {
            let ctx = env.xpath_context(doc)?;
            let v = if let xic_xpath::Expr::Path(p) = e {
                xic_xpath::eval_variable(p, &ctx)?
            } else {
                xic_xpath::evaluate(e, &ctx)?
            };
            Ok(xvalue_to_sequence(v))
        }
        XQuery::Sequence(items) => {
            let mut out = Vec::new();
            for i in items {
                out.extend(eval(i, doc, env)?);
            }
            Ok(out)
        }
        XQuery::Flwor { clauses, ret } => {
            let mut out = Vec::new();
            eval_flwor(clauses, 0, ret, doc, env, &mut out)?;
            Ok(out)
        }
        XQuery::Quantified {
            some,
            binds,
            satisfies,
        } => {
            let r = eval_quantified(binds, satisfies, doc, env, *some, false)?;
            Ok(vec![Item::Bool(r)])
        }
        XQuery::If { cond, then, els } => {
            if effective_boolean(&eval(cond, doc, env)?) {
                eval(then, doc, env)
            } else {
                eval(els, doc, env)
            }
        }
        XQuery::Construct { name, content } => {
            let mut children = Vec::new();
            for c in content {
                for item in eval(c, doc, env)? {
                    children.push(match item {
                        Item::Node(n) => node_to_constructed(doc, &n),
                        Item::Elem(e) => ConstructedChild::Elem(*e),
                        atomic => ConstructedChild::Text(atomic.string_value(doc)),
                    });
                }
            }
            Ok(vec![Item::Elem(Box::new(Constructed {
                name: name.clone(),
                attrs: Vec::new(),
                children,
            }))])
        }
        XQuery::Call(name, args) => eval_call(name, args, doc, env),
        XQuery::Binary(a, op, b) => eval_binary(a, *op, b, doc, env),
    }
}

fn eval_flwor(
    clauses: &[Clause],
    idx: usize,
    ret: &XQuery,
    doc: &Document,
    env: &Env,
    out: &mut Sequence,
) -> Result<(), XQueryError> {
    let Some(clause) = clauses.get(idx) else {
        out.extend(eval(ret, doc, env)?);
        return Ok(());
    };
    match clause {
        Clause::For { var, source } => {
            for item in eval(source, doc, env)? {
                xic_obs::incr(xic_obs::Counter::XqueryBindingsVisited);
                charge_budget()?;
                let env2 = env.bind(var, vec![item]);
                eval_flwor(clauses, idx + 1, ret, doc, &env2, out)?;
            }
            Ok(())
        }
        Clause::Let { var, value } => {
            let seq = eval(value, doc, env)?;
            let env2 = env.bind(var, seq);
            eval_flwor(clauses, idx + 1, ret, doc, &env2, out)
        }
        Clause::Where(cond) => {
            if effective_boolean(&eval(cond, doc, env)?) {
                eval_flwor(clauses, idx + 1, ret, doc, env, out)
            } else {
                Ok(())
            }
        }
    }
}

fn eval_quantified(
    binds: &[(String, XQuery)],
    satisfies: &XQuery,
    doc: &Document,
    env: &Env,
    some: bool,
    lazy: bool,
) -> Result<bool, XQueryError> {
    // Hoist loop-invariant sources: a binding whose source mentions none
    // of the earlier binder names has the same value in every iteration
    // of the enclosing loops, so evaluate it once up front. This turns
    // `some $a in //x, $b in //y satisfies …` from O(|x|·eval(//y)) into
    // two sequence scans plus the pair loop.
    let hoisted: Vec<Option<Sequence>> = binds
        .iter()
        .enumerate()
        .map(|(i, (_, src))| {
            let depends = binds[..i].iter().any(|(v, _)| mentions_var(src, v));
            if depends || i == 0 {
                Ok(None) // index 0 is evaluated exactly once anyway
            } else {
                eval(src, doc, env).map(Some)
            }
        })
        .collect::<Result<_, _>>()?;
    eval_quantified_rec(binds, &hoisted, 0, satisfies, doc, env, some, lazy)
}

#[allow(clippy::too_many_arguments)]
fn eval_quantified_rec(
    binds: &[(String, XQuery)],
    hoisted: &[Option<Sequence>],
    idx: usize,
    satisfies: &XQuery,
    doc: &Document,
    env: &Env,
    some: bool,
    lazy: bool,
) -> Result<bool, XQueryError> {
    let Some((var, source)) = binds.get(idx) else {
        // Existential mode consumes the satisfies condition lazily — it
        // is a boolean test either way, so the result is identical.
        return if lazy {
            eval_ebv(satisfies, doc, env)
        } else {
            Ok(effective_boolean(&eval(satisfies, doc, env)?))
        };
    };
    let items = match &hoisted[idx] {
        Some(seq) => seq.clone(),
        None => eval(source, doc, env)?,
    };
    for item in items {
        xic_obs::incr(xic_obs::Counter::XqueryBindingsVisited);
        charge_budget()?;
        let env2 = env.bind(var, vec![item]);
        let r = eval_quantified_rec(binds, hoisted, idx + 1, satisfies, doc, &env2, some, lazy)?;
        if r == some {
            // `some`: a witness suffices; `every`: a counterexample kills.
            return Ok(some);
        }
    }
    Ok(!some)
}

/// True if `q` mentions variable `name`. Over-approximates under
/// shadowing (an inner rebinding of the same name still counts), which
/// only costs a missed hoist, never correctness.
pub(crate) fn mentions_var(q: &XQuery, name: &str) -> bool {
    match q {
        XQuery::XPath(e) => xic_xpath::expr_mentions_var(e, name),
        XQuery::Sequence(items) => items.iter().any(|i| mentions_var(i, name)),
        XQuery::Flwor { clauses, ret } => {
            clauses.iter().any(|c| match c {
                Clause::For { source, .. } => mentions_var(source, name),
                Clause::Let { value, .. } => mentions_var(value, name),
                Clause::Where(e) => mentions_var(e, name),
            }) || mentions_var(ret, name)
        }
        XQuery::Quantified { binds, satisfies, .. } => {
            binds.iter().any(|(_, s)| mentions_var(s, name)) || mentions_var(satisfies, name)
        }
        XQuery::If { cond, then, els } => {
            mentions_var(cond, name) || mentions_var(then, name) || mentions_var(els, name)
        }
        XQuery::Construct { content, .. } => content.iter().any(|c| mentions_var(c, name)),
        XQuery::Call(_, args) => args.iter().any(|a| mentions_var(a, name)),
        XQuery::Binary(a, _, b) => mentions_var(a, name) || mentions_var(b, name),
    }
}

pub(crate) fn node_to_constructed(doc: &Document, n: &NodeRef) -> ConstructedChild {
    match n {
        NodeRef::Attr { .. } => ConstructedChild::Text(n.string_value(doc)),
        NodeRef::Node(id) => match &doc.node(*id).kind {
            NodeKind::Element { name, attrs } => {
                let children = doc
                    .node(*id)
                    .children
                    .iter()
                    .map(|&c| node_to_constructed(doc, &NodeRef::Node(c)))
                    .collect();
                ConstructedChild::Elem(Constructed {
                    name: name.clone(),
                    attrs: attrs.clone(),
                    children,
                })
            }
            _ => ConstructedChild::Text(n.string_value(doc)),
        },
    }
}

fn eval_call(
    name: &str,
    args: &[XQuery],
    doc: &Document,
    env: &Env,
) -> Result<Sequence, XQueryError> {
    let one = |args: &[XQuery]| -> Result<Sequence, XQueryError> {
        if args.len() == 1 {
            eval(&args[0], doc, env)
        } else {
            Err(XQueryError::Type(format!(
                "{name}() expects 1 argument, got {}",
                args.len()
            )))
        }
    };
    match name {
        "exists" => Ok(vec![Item::Bool(!one(args)?.is_empty())]),
        "distinct-values" => {
            let seq = one(args)?;
            let mut seen = std::collections::HashSet::new();
            let mut out = Vec::new();
            for item in seq {
                let s = item.string_value(doc);
                if seen.insert(s.clone()) {
                    out.push(Item::Str(s));
                }
            }
            Ok(out)
        }
        "max" | "min" => {
            let seq = one(args)?;
            let mut best: Option<f64> = None;
            for item in seq {
                let v = item
                    .string_value(doc)
                    .trim()
                    .parse::<f64>()
                    .unwrap_or(f64::NAN);
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        if (name == "max") == (v > b) {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.map(Item::Num).into_iter().collect())
        }
        "empty" => Ok(vec![Item::Bool(one(args)?.is_empty())]),
        "count" => Ok(vec![Item::Num(one(args)?.len() as f64)]),
        "not" => Ok(vec![Item::Bool(!effective_boolean(&one(args)?))]),
        "boolean" => Ok(vec![Item::Bool(effective_boolean(&one(args)?))]),
        "string" => {
            let seq = one(args)?;
            Ok(vec![Item::Str(
                seq.first().map(|i| i.string_value(doc)).unwrap_or_default(),
            )])
        }
        other => Err(XQueryError::Type(format!(
            "unsupported XQuery-level function {other}()"
        ))),
    }
}

fn eval_binary(
    a: &XQuery,
    op: BinOp,
    b: &XQuery,
    doc: &Document,
    env: &Env,
) -> Result<Sequence, XQueryError> {
    match op {
        BinOp::Or => {
            let l = effective_boolean(&eval(a, doc, env)?);
            if l {
                return Ok(vec![Item::Bool(true)]);
            }
            let r = effective_boolean(&eval(b, doc, env)?);
            return Ok(vec![Item::Bool(r)]);
        }
        BinOp::And => {
            let l = effective_boolean(&eval(a, doc, env)?);
            if !l {
                return Ok(vec![Item::Bool(false)]);
            }
            let r = effective_boolean(&eval(b, doc, env)?);
            return Ok(vec![Item::Bool(r)]);
        }
        _ => {}
    }
    let va = to_xvalue(&eval(a, doc, env)?)?;
    let vb = to_xvalue(&eval(b, doc, env)?)?;
    match op {
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            Ok(vec![Item::Bool(compare_values(&va, op, &vb, doc))])
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
            let x = va.to_num(doc);
            let y = vb.to_num(doc);
            let r = match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
                BinOp::Mod => x % y,
                _ => unreachable!(),
            };
            Ok(vec![Item::Num(r)])
        }
        BinOp::Union => match (va, vb) {
            (XValue::Nodes(mut x), XValue::Nodes(y)) => {
                x.extend(y);
                // Document order + dedupe, via the shared rank-based path.
                xic_xpath::dedupe_doc_order(doc, &mut x);
                Ok(x.into_iter().map(Item::Node).collect())
            }
            _ => Err(XQueryError::Type("union of non-node-sets".to_string())),
        },
        BinOp::Or | BinOp::And => unreachable!("handled above"),
    }
}

fn to_xvalue(seq: &Sequence) -> Result<XValue, XQueryError> {
    sequence_to_xvalue(seq).map_err(XQueryError::Type)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use xic_xml::parse_document;

    const DOC: &str = "<review>\
        <track><name>DB</name>\
          <rev><name>Ann</name>\
            <sub><title>S1</title><auts><name>Bob</name></auts></sub>\
            <sub><title>S2</title><auts><name>Ann</name></auts></sub>\
          </rev>\
          <rev><name>Dan</name>\
            <sub><title>S3</title><auts><name>Eve</name></auts></sub>\
            <sub><title>S4</title><auts><name>Flo</name></auts></sub>\
            <sub><title>S5</title><auts><name>Gus</name></auts></sub>\
            <sub><title>S6</title><auts><name>Hal</name></auts></sub>\
            <sub><title>S7</title><auts><name>Ivy</name></auts></sub>\
          </rev>\
        </track>\
      </review>";

    fn run_bool(doc_src: &str, query: &str) -> bool {
        let (doc, _) = parse_document(doc_src).unwrap();
        let q = parse_query(query).unwrap_or_else(|e| panic!("{query}: {e}"));
        eval_query_bool(&q, &doc).unwrap_or_else(|e| panic!("{query}: {e}"))
    }

    fn run_seq(doc_src: &str, query: &str) -> Sequence {
        let (doc, _) = parse_document(doc_src).unwrap();
        let q = parse_query(query).unwrap();
        eval_query(&q, &doc).unwrap()
    }

    #[test]
    fn some_satisfies_self_review() {
        // Ann reviews a submission she authored (S2): conflict.
        assert!(run_bool(
            DOC,
            "some $lr in //rev satisfies \
             $lr/sub/auts/name/text() = $lr/name/text()"
        ));
        // Dan does not.
        assert!(!run_bool(
            DOC,
            "some $lr in //rev[name/text() = 'Dan'] satisfies \
             $lr/sub/auts/name/text() = $lr/name/text()"
        ));
    }

    #[test]
    fn flwor_aggregate_threshold() {
        // Dan has 5 subs: violated for > 4.
        assert!(run_bool(
            DOC,
            "exists(for $lr in //rev let $d := $lr/sub where count($d) > 4 return <idle/>)"
        ));
        assert!(!run_bool(
            DOC,
            "exists(for $lr in //rev let $d := $lr/sub where count($d) > 5 return <idle/>)"
        ));
    }

    #[test]
    fn flwor_returns_items_per_binding() {
        let seq = run_seq(DOC, "for $s in //sub return $s/title/text()");
        assert_eq!(seq.len(), 7);
        let seq2 = run_seq(DOC, "for $s in //sub where $s/auts/name = 'Eve' return $s");
        assert_eq!(seq2.len(), 1);
    }

    #[test]
    fn every_quantifier() {
        assert!(run_bool(DOC, "every $s in //sub satisfies count($s/auts) = 1"));
        assert!(!run_bool(DOC, "every $r in //rev satisfies count($r/sub) > 3"));
    }

    #[test]
    fn nested_for_cross_product() {
        let seq = run_seq(DOC, "for $a in //rev, $b in //rev return <idle/>");
        assert_eq!(seq.len(), 4);
    }

    #[test]
    fn if_then_else() {
        let seq = run_seq(DOC, "if (count(//rev) = 2) then 'yes' else 'no'");
        assert_eq!(seq, vec![Item::Str("yes".into())]);
    }

    #[test]
    fn construction_copies_content() {
        let seq = run_seq(DOC, "element wrap { //track/name }");
        assert_eq!(seq.len(), 1);
        match &seq[0] {
            Item::Elem(e) => assert_eq!(e.to_xml(), "<wrap><name>DB</name></wrap>"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sequences_and_arithmetic() {
        let seq = run_seq(DOC, "(1, 2, 3)");
        assert_eq!(seq.len(), 3);
        let seq = run_seq(DOC, "count((1, 2, 3)) + 1");
        assert_eq!(seq, vec![Item::Num(4.0)]);
        assert!(run_bool(DOC, "2 * 3 = 6"));
        assert!(run_bool(DOC, "empty(())"));
        assert!(!run_bool(DOC, "exists(())"));
    }

    #[test]
    fn let_binds_full_sequence() {
        let seq = run_seq(
            DOC,
            "for $r in //rev let $titles := $r/sub/title return count($titles)",
        );
        assert_eq!(seq, vec![Item::Num(2.0), Item::Num(5.0)]);
    }

    #[test]
    fn general_comparison_through_variables() {
        assert!(run_bool(
            DOC,
            "some $h in //auts, $r in //rev satisfies \
             $h/name/text() = $r/name/text()"
        ));
    }

    #[test]
    fn union_at_query_level() {
        let seq = run_seq(DOC, "(for $x in //track return $x/name) | //rev/name");
        assert_eq!(seq.len(), 3);
    }

    #[test]
    fn paper_full_translation_runs() {
        // Section 6's translated second denial of Example 3 (conflict of
        // interests via coauthorship). DOC has no aut elements, so no
        // violation.
        assert!(!run_bool(
            DOC,
            "some $Ir in //rev, $H in //aut \
             satisfies $H/name/text() = $Ir/name/text() \
             and $H/../aut/name/text() = $Ir/sub/auts/name/text()"
        ));
        // With a pub catalog where Ann coauthored with Bob — and Ann
        // reviews Bob's submission S1 — it fires.
        let both = format!(
            "<all>{}<dblp><pub><title>P</title><aut><name>Ann</name></aut>\
             <aut><name>Bob</name></aut></pub></dblp></all>",
            &DOC
        );
        assert!(run_bool(
            &both,
            "some $Ir in //rev, $H in //aut \
             satisfies $H/name/text() = $Ir/name/text() \
             and $H/../aut/name/text() = $Ir/sub/auts/name/text()"
        ));
    }

    #[test]
    fn eval_query_exists_agrees_with_materializing_bool() {
        let (doc, _) = parse_document(DOC).unwrap();
        for query in [
            "some $lr in //rev satisfies $lr/sub/auts/name/text() = $lr/name/text()",
            "some $lr in //rev[name/text() = 'Dan'] satisfies \
             $lr/sub/auts/name/text() = $lr/name/text()",
            "exists(for $lr in //rev let $d := $lr/sub where count($d) > 4 return <idle/>)",
            "exists(for $lr in //rev let $d := $lr/sub where count($d) > 5 return <idle/>)",
            "every $s in //sub satisfies count($s/auts) = 1",
            "every $r in //rev satisfies count($r/sub) > 3",
            "not(exists(for $z in //zzz return $z))",
            "empty(//zzz)",
            "exists(//rev | //track)",
            "if (count(//rev) = 2) then 'yes' else ''",
            "boolean((for $x in //track return $x/name))",
            "exists(('', ''))",
            "boolean('')",
            "count((1, 2, 3)) + 1",
            "2 >= 3 or count(//sub) = 7",
        ] {
            let q = parse_query(query).unwrap_or_else(|e| panic!("{query}: {e}"));
            let full = eval_query_bool(&q, &doc).unwrap_or_else(|e| panic!("{query}: {e}"));
            let lazy = eval_query_exists(&q, &doc).unwrap_or_else(|e| panic!("{query}: {e}"));
            assert_eq!(lazy, full, "eval_query_exists disagrees on {query}");
        }
    }

    #[test]
    fn existential_flwor_stops_at_first_witness() {
        let (doc, _) = parse_document(DOC).unwrap();
        // Every rev violates the threshold, so the existential mode must
        // stop after binding the first one.
        let q = parse_query(
            "exists(for $lr in //rev let $d := $lr/sub where count($d) > 1 return <idle/>)",
        )
        .unwrap();
        xic_obs::reset();
        assert!(eval_query_exists(&q, &doc).unwrap());
        let lazy = xic_obs::counter(xic_obs::Counter::XqueryBindingsVisited);
        xic_obs::reset();
        assert!(eval_query_bool(&q, &doc).unwrap());
        let full = xic_obs::counter(xic_obs::Counter::XqueryBindingsVisited);
        assert_eq!(lazy, 1, "short-circuit after the first violating rev");
        assert_eq!(full, 2, "materializer enumerates every rev");
    }

    #[test]
    fn type_errors_surface() {
        let (doc, _) = parse_document("<r/>").unwrap();
        let q = parse_query("('a', 'b') = 'a'").unwrap();
        assert!(matches!(
            eval_query(&q, &doc),
            Err(XQueryError::Type(_))
        ));
        let q2 = parse_query("1 | 2").unwrap();
        assert!(eval_query(&q2, &doc).is_err());
    }
}

//! XQuery parser: an operator-precedence chain at the XQuery level whose
//! operands are either XQuery special forms (FLWOR, quantified, `if`,
//! constructors, sequence expressions) or XPath path expressions delegated
//! to the shared `xic-xpath` token parser.

use crate::ast::{Clause, XQuery};
use std::fmt;
use xic_xpath::lexer::{tokenize, Tok};
use xic_xpath::{BinOp, P};

/// XQuery parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct XQueryParseError {
    /// Byte offset (best effort).
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for XQueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XQuery parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for XQueryParseError {}

impl From<xic_xpath::XPathParseError> for XQueryParseError {
    fn from(e: xic_xpath::XPathParseError) -> Self {
        XQueryParseError {
            offset: e.offset,
            message: e.message,
        }
    }
}

/// Parses an XQuery expression.
pub fn parse_query(input: &str) -> Result<XQuery, XQueryParseError> {
    let toks = tokenize(input).map_err(|message| XQueryParseError { offset: 0, message })?;
    let mut p = P::new(toks);
    let q = expr_single(&mut p)?;
    if !p.at_eof() {
        return Err(p.err("unexpected trailing tokens").into());
    }
    Ok(q)
}

/// XQuery functions whose arguments are parsed as full XQuery expressions.
const XQ_FUNCTIONS: &[&str] = &[
    "exists",
    "empty",
    "count",
    "not",
    "boolean",
    "string",
    "distinct-values",
    "max",
    "min",
];

fn expr_single(p: &mut P) -> Result<XQuery, XQueryParseError> {
    // Special forms recognizable at statement start.
    match p.peek() {
        Some(Tok::Name(n)) if (n == "for" || n == "let") && matches!(p.peek2(), Some(Tok::Var(_))) => {
            return flwor(p);
        }
        Some(Tok::Name(n))
            if (n == "some" || n == "every") && matches!(p.peek2(), Some(Tok::Var(_))) =>
        {
            return quantified(p);
        }
        Some(Tok::Name(n)) if n == "if" && p.peek2() == Some(&Tok::LParen) => {
            return if_expr(p);
        }
        _ => {}
    }
    or_expr(p)
}

fn or_expr(p: &mut P) -> Result<XQuery, XQueryParseError> {
    let mut lhs = and_expr(p)?;
    while p.eat_name("or") {
        let rhs = and_expr(p)?;
        lhs = XQuery::Binary(Box::new(lhs), BinOp::Or, Box::new(rhs));
    }
    Ok(lhs)
}

fn and_expr(p: &mut P) -> Result<XQuery, XQueryParseError> {
    let mut lhs = cmp_expr(p)?;
    while p.eat_name("and") {
        let rhs = cmp_expr(p)?;
        lhs = XQuery::Binary(Box::new(lhs), BinOp::And, Box::new(rhs));
    }
    Ok(lhs)
}

fn cmp_expr(p: &mut P) -> Result<XQuery, XQueryParseError> {
    let lhs = add_expr(p)?;
    for (t, op) in [
        (Tok::Ne, BinOp::Ne),
        (Tok::Le, BinOp::Le),
        (Tok::Ge, BinOp::Ge),
        (Tok::Eq, BinOp::Eq),
        (Tok::Lt, BinOp::Lt),
        (Tok::Gt, BinOp::Gt),
    ] {
        if p.eat(&t) {
            let rhs = add_expr(p)?;
            return Ok(XQuery::Binary(Box::new(lhs), op, Box::new(rhs)));
        }
    }
    Ok(lhs)
}

fn add_expr(p: &mut P) -> Result<XQuery, XQueryParseError> {
    let mut lhs = mul_expr(p)?;
    loop {
        if p.eat(&Tok::Plus) {
            let rhs = mul_expr(p)?;
            lhs = XQuery::Binary(Box::new(lhs), BinOp::Add, Box::new(rhs));
        } else if p.eat(&Tok::Minus) {
            let rhs = mul_expr(p)?;
            lhs = XQuery::Binary(Box::new(lhs), BinOp::Sub, Box::new(rhs));
        } else {
            return Ok(lhs);
        }
    }
}

fn mul_expr(p: &mut P) -> Result<XQuery, XQueryParseError> {
    let mut lhs = unary_expr(p)?;
    loop {
        if p.eat(&Tok::Star) {
            let rhs = unary_expr(p)?;
            lhs = XQuery::Binary(Box::new(lhs), BinOp::Mul, Box::new(rhs));
        } else if p.eat_name("div") {
            let rhs = unary_expr(p)?;
            lhs = XQuery::Binary(Box::new(lhs), BinOp::Div, Box::new(rhs));
        } else if p.eat_name("mod") {
            let rhs = unary_expr(p)?;
            lhs = XQuery::Binary(Box::new(lhs), BinOp::Mod, Box::new(rhs));
        } else {
            return Ok(lhs);
        }
    }
}

fn unary_expr(p: &mut P) -> Result<XQuery, XQueryParseError> {
    if p.eat(&Tok::Minus) {
        let inner = unary_expr(p)?;
        return Ok(XQuery::Binary(
            Box::new(XQuery::XPath(xic_xpath::Expr::Number(0.0))),
            BinOp::Sub,
            Box::new(inner),
        ));
    }
    union_expr(p)
}

fn union_expr(p: &mut P) -> Result<XQuery, XQueryParseError> {
    let mut lhs = primary(p)?;
    while p.eat(&Tok::Pipe) {
        let rhs = primary(p)?;
        lhs = XQuery::Binary(Box::new(lhs), BinOp::Union, Box::new(rhs));
    }
    Ok(lhs)
}

fn primary(p: &mut P) -> Result<XQuery, XQueryParseError> {
    // Literal element constructor: `<name/>`.
    if p.peek() == Some(&Tok::Lt) {
        if let Some(Tok::Name(_)) = p.peek2() {
            p.next_tok(); // <
            let Some(Tok::Name(name)) = p.next_tok() else {
                unreachable!()
            };
            p.expect(&Tok::Slash)?;
            p.expect(&Tok::Gt)?;
            return Ok(XQuery::Construct {
                name,
                content: Vec::new(),
            });
        }
    }
    // Computed element constructor: `element name { content }`.
    if matches!(p.peek(), Some(Tok::Name(n)) if n == "element")
        && matches!(p.peek2(), Some(Tok::Name(_)))
    {
        p.next_tok();
        let Some(Tok::Name(name)) = p.next_tok() else {
            unreachable!()
        };
        p.expect(&Tok::LBrace)?;
        let mut content = Vec::new();
        if p.peek() != Some(&Tok::RBrace) {
            loop {
                content.push(expr_single(p)?);
                if !p.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        p.expect(&Tok::RBrace)?;
        return Ok(XQuery::Construct { name, content });
    }
    // XQuery-level function calls whose arguments may be special forms.
    if let (Some(Tok::Name(n)), Some(Tok::LParen)) = (p.peek(), p.peek2()) {
        if XQ_FUNCTIONS.contains(&n.as_str()) {
            let name = n.clone();
            let save = p.position();
            // For functions that also exist in XPath, prefer the plain
            // XPath reading when the arguments are simple (so `count($d)`
            // stays a single XPath leaf); fall back to the XQuery-level
            // call when the XPath parser rejects the content. `exists` and
            // `empty` are XQuery-only and always parse here.
            let xpath_native =
                !matches!(name.as_str(), "exists" | "empty" | "distinct-values" | "max" | "min");
            if xpath_native {
                if let Ok(e) = p.path_expr() {
                    return Ok(XQuery::XPath(e));
                }
                p.set_position(save);
            }
            let _ = save;
            p.next_tok(); // name
            p.next_tok(); // (
            let mut args = Vec::new();
            if p.peek() != Some(&Tok::RParen) {
                loop {
                    args.push(expr_single(p)?);
                    if !p.eat(&Tok::Comma) {
                        break;
                    }
                }
            }
            p.expect(&Tok::RParen)?;
            return Ok(XQuery::Call(name, args));
        }
    }
    // Parenthesized expression or sequence: try the XPath reading first
    // (it covers `(expr)[pred]/steps`), fall back to XQuery sequences and
    // nested special forms.
    if p.peek() == Some(&Tok::LParen) {
        let save = p.position();
        if let Ok(e) = p.path_expr() {
            return Ok(XQuery::XPath(e));
        }
        p.set_position(save);
        p.next_tok(); // (
        if p.eat(&Tok::RParen) {
            return Ok(XQuery::Sequence(Vec::new()));
        }
        let mut items = vec![expr_single(p)?];
        while p.eat(&Tok::Comma) {
            items.push(expr_single(p)?);
        }
        p.expect(&Tok::RParen)?;
        if items.len() == 1 {
            return Ok(items.pop().expect("one item"));
        }
        return Ok(XQuery::Sequence(items));
    }
    // Everything else: an XPath path expression.
    Ok(XQuery::XPath(p.path_expr()?))
}

fn bindings(p: &mut P) -> Result<Vec<(String, XQuery)>, XQueryParseError> {
    let mut out = Vec::new();
    loop {
        let Some(Tok::Var(var)) = p.next_tok() else {
            return Err(p.err("expected $variable").into());
        };
        if !p.eat_name("in") {
            return Err(p.err("expected 'in'").into());
        }
        let source = expr_single(p)?;
        out.push((var, source));
        if !p.eat(&Tok::Comma) {
            return Ok(out);
        }
    }
}

fn flwor(p: &mut P) -> Result<XQuery, XQueryParseError> {
    let mut clauses = Vec::new();
    loop {
        if p.eat_name("for") {
            for (var, source) in bindings(p)? {
                clauses.push(Clause::For { var, source });
            }
        } else if p.eat_name("let") {
            loop {
                let Some(Tok::Var(var)) = p.next_tok() else {
                    return Err(p.err("expected $variable after let").into());
                };
                p.expect(&Tok::Assign)?;
                let value = expr_single(p)?;
                clauses.push(Clause::Let { var, value });
                if !p.eat(&Tok::Comma) {
                    break;
                }
            }
        } else if p.eat_name("where") {
            clauses.push(Clause::Where(expr_single(p)?));
        } else if p.eat_name("return") {
            let ret = expr_single(p)?;
            return Ok(XQuery::Flwor {
                clauses,
                ret: Box::new(ret),
            });
        } else {
            return Err(p.err("expected for/let/where/return clause").into());
        }
    }
}

fn quantified(p: &mut P) -> Result<XQuery, XQueryParseError> {
    let some = if p.eat_name("some") {
        true
    } else if p.eat_name("every") {
        false
    } else {
        return Err(p.err("expected some/every").into());
    };
    let binds = bindings(p)?;
    if !p.eat_name("satisfies") {
        return Err(p.err("expected 'satisfies'").into());
    }
    let satisfies = expr_single(p)?;
    Ok(XQuery::Quantified {
        some,
        binds,
        satisfies: Box::new(satisfies),
    })
}

fn if_expr(p: &mut P) -> Result<XQuery, XQueryParseError> {
    assert!(p.eat_name("if"));
    p.expect(&Tok::LParen)?;
    let cond = expr_single(p)?;
    p.expect(&Tok::RParen)?;
    if !p.eat_name("then") {
        return Err(p.err("expected 'then'").into());
    }
    let then = expr_single(p)?;
    if !p.eat_name("else") {
        return Err(p.err("expected 'else'").into());
    }
    let els = expr_single(p)?;
    Ok(XQuery::If {
        cond: Box::new(cond),
        then: Box::new(then),
        els: Box::new(els),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(s: &str) -> XQuery {
        parse_query(s).unwrap_or_else(|e| panic!("{s}: {e}"))
    }

    #[test]
    fn plain_xpath_passthrough() {
        assert!(matches!(q("//rev/name/text()"), XQuery::XPath(_)));
        assert!(matches!(q("count($d) > 4"), XQuery::Binary(..)));
    }

    #[test]
    fn some_satisfies() {
        let e = q("some $lr in //rev, $h in //aut satisfies \
                   $h/name/text() = $lr/name/text()");
        match &e {
            XQuery::Quantified { some, binds, .. } => {
                assert!(*some);
                assert_eq!(binds.len(), 2);
                assert_eq!(binds[0].0, "lr");
            }
            other => panic!("{other:?}"),
        }
        // The satisfies body with `and` parses fully.
        let e2 = q("some $a in //x satisfies $a = 1 and $a != 2");
        assert!(matches!(e2, XQuery::Quantified { .. }));
    }

    #[test]
    fn flwor_with_let_where_return() {
        let e = q("exists(for $lr in //rev let $d := $lr/sub where count($d) > 4 return <idle/>)");
        match &e {
            XQuery::Call(name, args) => {
                assert_eq!(name, "exists");
                match &args[0] {
                    XQuery::Flwor { clauses, ret } => {
                        assert_eq!(clauses.len(), 3);
                        assert!(matches!(**ret, XQuery::Construct { .. }));
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn multiple_for_bindings() {
        let e = q("for $a in //x, $b in //y return ($a, $b)");
        match e {
            XQuery::Flwor { clauses, ret } => {
                assert_eq!(clauses.len(), 2);
                assert!(matches!(*ret, XQuery::Sequence(ref s) if s.len() == 2));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn constructors() {
        assert_eq!(
            q("<idle/>"),
            XQuery::Construct {
                name: "idle".into(),
                content: vec![]
            }
        );
        let e = q("element res { 1, 'x' }");
        match e {
            XQuery::Construct { name, content } => {
                assert_eq!(name, "res");
                assert_eq!(content.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn if_then_else() {
        let e = q("if (//a) then 1 else 2");
        assert!(matches!(e, XQuery::If { .. }));
    }

    #[test]
    fn empty_sequence_and_sequences() {
        assert_eq!(q("()"), XQuery::Sequence(vec![]));
        assert!(matches!(q("(1, 2, 3)"), XQuery::Sequence(ref s) if s.len() == 3));
        // Single parenthesized expression unwraps.
        assert!(matches!(q("(1 + 2)"), XQuery::XPath(_) | XQuery::Binary(..)));
    }

    #[test]
    fn every_quantifier() {
        let e = q("every $x in //a satisfies $x/@id > 0");
        assert!(matches!(e, XQuery::Quantified { some: false, .. }));
    }

    #[test]
    fn nested_flwor_in_count() {
        let e = q("count(for $x in //a return $x) > 2");
        match e {
            XQuery::Binary(lhs, BinOp::Gt, _) => {
                assert!(matches!(*lhs, XQuery::Call(ref n, _) if n == "count"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors() {
        assert!(parse_query("for $x //a return $x").is_err());
        assert!(parse_query("some $x in //a").is_err());
        assert!(parse_query("if (//a) then 1").is_err());
        assert!(parse_query("for $x in //a").is_err());
        assert!(parse_query("element x {").is_err());
        assert!(parse_query("1 2").is_err());
    }

    #[test]
    fn paper_translation_shape() {
        // The full translated denial from Section 6.
        let e = q("some $Ir in //rev, $H in //aut \
                   satisfies $H/name/text() = $Ir/name/text() \
                   and $H/../aut/name/text() = $Ir/sub/auts/name/text()");
        assert!(matches!(e, XQuery::Quantified { .. }));
    }
}

//! An XQuery subset engine — the runtime check evaluator of Section 6.
//!
//! The paper's pipeline compiles (simplified) Datalog denials into XQuery
//! expressions and evaluates them against the XML repository (the authors
//! used eXist; since no XQuery engine exists for Rust, this crate
//! implements the required fragment from scratch):
//!
//! * quantified expressions: `some/every $x in … satisfies …`;
//! * FLWOR: interleaved `for`/`let` clauses, `where`, `return`;
//! * conditionals: `if (…) then … else …`;
//! * sequence expressions `(e1, e2, …)` and the empty sequence `()`;
//! * element construction: `<idle/>` literals and computed
//!   `element name { … }` constructors;
//! * the XQuery functions `exists()` and `empty()`, plus everything from
//!   the embedded XPath core library (`count`, `not`, `string`, …);
//! * full XPath path expressions (shared lexer/parser/evaluator with
//!   `xic-xpath`), including general comparisons with XPath semantics.
//!
//! # Example — the paper's translated aggregate constraint
//!
//! ```
//! use xic_xml::parse_document;
//! use xic_xquery::{eval_query_bool, parse_query};
//!
//! let (doc, _) = parse_document(
//!     "<review><track><name>T</name>\
//!        <rev><name>Ann</name>\
//!          <sub><title>A</title><auts><name>x</name></auts></sub>\
//!          <sub><title>B</title><auts><name>y</name></auts></sub>\
//!        </rev></track></review>",
//! ).unwrap();
//! let q = parse_query(
//!     "exists(for $lr in //rev let $d := $lr/sub where count($d) > 4 return <idle/>)",
//! ).unwrap();
//! assert!(!eval_query_bool(&q, &doc).unwrap()); // only 2 subs: no violation
//! ```
//!
//! In the system-inventory table of `DESIGN.md` this crate is item 5 (XQuery engine).

pub mod ast;
pub mod eval;
pub mod ir;
pub mod item;
pub mod parser;

pub use ast::{Clause, XQuery};
pub use eval::{eval_query, eval_query_bool, eval_query_exists, XQueryError};
pub use ir::XProgram;
pub use item::{Constructed, Item, Sequence};
pub use parser::{parse_query, XQueryParseError};

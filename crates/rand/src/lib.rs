//! Offline API-compatible stand-in for the [`rand`] crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so this vendored crate provides the (small) subset of the `rand 0.8`
//! API the workspace actually uses — [`rngs::StdRng`], [`SeedableRng`],
//! and the [`Rng`] extension methods `gen`, `gen_range` and `gen_bool` —
//! with **zero** external dependencies.
//!
//! The generator is a [SplitMix64](https://prng.di.unimi.it/splitmix64.c)
//! stream: fully deterministic under a seed, statistically strong enough
//! for workload generation and tests, and *not* a cryptographic RNG. The
//! output stream differs from the real `rand::rngs::StdRng` (ChaCha12),
//! so seeds produce different — but equally deterministic — workloads.
//!
//! See `DESIGN.md` § dependencies and `crates/proptest` / `crates/criterion`
//! for the sibling stand-ins.
//!
//! [`rand`]: https://docs.rs/rand/0.8

/// Random number generators (stand-in for `rand::rngs`).
pub mod rngs {
    /// A seeded deterministic generator (SplitMix64 stream).
    ///
    /// Stand-in for `rand::rngs::StdRng`; construct it with
    /// [`SeedableRng::seed_from_u64`](crate::SeedableRng::seed_from_u64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// Seedable construction (stand-in for `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator whose entire output stream is a deterministic
    /// function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // Pre-scramble so that small seeds (0, 1, 2, …) do not produce
        // correlated first draws.
        let mut rng = StdRng { state: seed };
        let _ = rng.next_u64();
        rng
    }
}

impl StdRng {
    /// The raw 64-bit SplitMix64 step.
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A type samplable from the uniform "standard" distribution via
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample(draw: &mut dyn FnMut() -> u64) -> Self;
}

impl Standard for f64 {
    fn sample(draw: &mut dyn FnMut() -> u64) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (draw() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
    }
}

impl Standard for bool {
    fn sample(draw: &mut dyn FnMut() -> u64) -> bool {
        draw() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample(draw: &mut dyn FnMut() -> u64) -> u64 {
        draw()
    }
}

/// An integer type [`Rng::gen_range`] can sample uniformly (stand-in for
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy {
    /// Widens to `i128` (lossless for all supported integer types).
    fn to_i128(self) -> i128;
    /// Narrows back from `i128` (the caller guarantees the value fits).
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 { self as i128 }
            fn from_i128(v: i128) -> $t { v as $t }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range usable with [`Rng::gen_range`], sampling values of type `T`.
///
/// A single blanket impl per range shape (mirroring the real crate) so
/// that type inference can flow from the call site's expected type back
/// into the range literal, e.g. `let n: usize = 1 + rng.gen_range(0..2);`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample(self, draw: &mut dyn FnMut() -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample(self, draw: &mut dyn FnMut() -> u64) -> T {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        assert!(lo < hi, "gen_range over an empty range");
        let offset = (u128::from(draw()) % (hi - lo) as u128) as i128;
        T::from_i128(lo + offset)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample(self, draw: &mut dyn FnMut() -> u64) -> T {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        assert!(lo <= hi, "gen_range over an empty range");
        let offset = (u128::from(draw()) % ((hi - lo) as u128 + 1)) as i128;
        T::from_i128(lo + offset)
    }
}

/// The user-facing generator methods (stand-in for `rand::Rng`).
pub trait Rng {
    /// One raw 64-bit draw (the primitive all other methods build on).
    fn next_u64(&mut self) -> u64;

    /// Samples from the standard distribution of `T` (e.g. `f64` in
    /// `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        let mut draw = || self.next_u64();
        T::sample(&mut draw)
    }

    /// Samples uniformly from an integer range (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        let mut draw = || self.next_u64();
        range.sample(&mut draw)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        StdRng::next_u64(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(0..3);
            assert!((0..3).contains(&v));
            let w: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let x = rng.gen_range(2u8..=2);
            assert_eq!(x, 2);
        }
    }

    #[test]
    fn f64_in_unit_interval_with_spread() {
        let mut rng = StdRng::seed_from_u64(42);
        let draws: Vec<f64> = (0..1000).map(|_| rng.gen::<f64>()).collect();
        assert!(draws.iter().all(|v| (0.0..1.0).contains(v)));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..2000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((400..600).contains(&hits), "got {hits} for p=0.25");
    }
}

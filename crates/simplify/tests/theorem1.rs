//! Property tests for the two central correctness statements:
//!
//! * **After-equivalence** (Definition 2): for *every* database state `D`
//!   satisfying the freshness hypotheses,
//!   `D ⊨ After^U(Γ)  ⇔  D^U ⊨ Γ` — no consistency precondition needed.
//! * **Theorem 1**: for every `D` consistent with `Γ ∪ Δ`,
//!   `D ⊨ Simp_Δ^U(Γ)  ⇔  D^U ⊨ Γ`.
//!
//! Databases, constraints and updates are drawn over a two-relation schema
//! shaped like the XML shredding (`p(Id, Val)`, `q(Id, Ref, Val)`), with
//! newly allocated identifiers guaranteed fresh — exactly the situation the
//! XML mapping produces.

use proptest::prelude::*;
use std::collections::HashMap;
use xic_datalog::{
    denials_hold, Atom, CompOp, Database, Denial, Literal, Term, Update, Value,
};
use xic_simplify::{after, freshness_hypotheses, optimize, simp, FreshSpec, SimpConfig};

const DOMAIN: i64 = 4;

fn value() -> impl Strategy<Value = i64> {
    0..DOMAIN
}

/// A random database over p/2 and q/3 with ids 0..n.
fn database() -> impl Strategy<Value = Database> {
    let p_rows = prop::collection::vec((0..6i64, value()), 0..6);
    let q_rows = prop::collection::vec((10..16i64, value(), value()), 0..6);
    (p_rows, q_rows).prop_map(|(ps, qs)| {
        let mut db = Database::new();
        for (id, v) in ps {
            db.insert("p", vec![Value::Int(id), Value::Int(v)]);
        }
        for (id, r, v) in qs {
            db.insert("q", vec![Value::Int(id), Value::Int(r), Value::Int(v)]);
        }
        db
    })
}

/// A term drawn from a variable pool or the constant domain.
fn term(vars: &'static [&'static str]) -> impl Strategy<Value = Term> {
    prop_oneof![
        3 => prop::sample::select(vars).prop_map(Term::var),
        1 => value().prop_map(Term::int),
    ]
}

const VARS: &[&str] = &["X", "Y", "Z"];

fn comp_op() -> impl Strategy<Value = CompOp> {
    prop::sample::select(&[
        CompOp::Eq,
        CompOp::Ne,
        CompOp::Lt,
        CompOp::Le,
        CompOp::Gt,
        CompOp::Ge,
    ][..])
}

/// A safe random denial: positive atoms first (binding variables), then
/// optional comparison / negation / aggregate literals over bound
/// variables.
fn denial() -> impl Strategy<Value = Denial> {
    let pos_atom = prop_oneof![
        (term(VARS), term(VARS)).prop_map(|(a, b)| Atom::new("p", vec![a, b])),
        (term(VARS), term(VARS), term(VARS)).prop_map(|(a, b, c)| Atom::new("q", vec![a, b, c])),
    ];
    let atoms = prop::collection::vec(pos_atom, 1..3);
    let tail = prop_oneof![
        // Comparison over (potentially bound) variables.
        3 => (prop::sample::select(VARS), comp_op(), term(VARS))
            .prop_map(|(v, op, t)| Some(Literal::Comp(Term::var(v), op, t))),
        // Count aggregate grouped on a shared variable.
        2 => (prop::sample::select(VARS), comp_op(), 0..4i64).prop_map(|(v, op, k)| {
            Some(Literal::Agg(
                xic_datalog::Aggregate::new(
                    xic_datalog::AggFunc::Cnt,
                    None,
                    vec![Atom::new("p", vec![Term::var("L0"), Term::var(v)])],
                ),
                op,
                Term::int(k),
            ))
        }),
        // Distinct count over a two-atom pattern (join through q.Ref).
        1 => (prop::sample::select(VARS), 0..3i64).prop_map(|(v, k)| {
            Some(Literal::Agg(
                xic_datalog::Aggregate::new(
                    xic_datalog::AggFunc::CntD,
                    Some(Term::var("L1")),
                    vec![
                        Atom::new("q", vec![Term::var("L1"), Term::var("L2"), Term::var(v)]),
                    ],
                ),
                CompOp::Gt,
                Term::int(k),
            ))
        }),
        // Safe negated atom over bound variables/constants (exercises the
        // De Morgan expansion of After).
        2 => (prop::sample::select(VARS), value()).prop_map(|(v, c)| {
            Some(Literal::Neg(Atom::new(
                "p",
                vec![Term::var(v), Term::int(c)],
            )))
        }),
        2 => Just(None),
    ];
    (atoms, tail).prop_map(|(atoms, tail)| {
        let mut body: Vec<Literal> = atoms.into_iter().map(Literal::Pos).collect();
        if let Some(t) = tail {
            // Only keep tails whose variables are bound by the atoms
            // (aggregate locals excepted).
            let bound: Vec<String> = Denial::new(body.clone()).vars();
            let ok = match &t {
                Literal::Comp(a, _, b) => [a, b].iter().all(|x| match x {
                    Term::Var(v) => bound.contains(v),
                    _ => true,
                }),
                Literal::Agg(agg, _, _) => agg
                    .vars()
                    .iter()
                    .filter(|v| !v.starts_with('L'))
                    .all(|v| bound.contains(v)),
                Literal::Neg(a) => a.vars().iter().all(|v| bound.contains(v)),
                Literal::Pos(_) => true,
            };
            if ok {
                body.push(t);
            }
        }
        Denial::new(body)
    })
}

/// A random update pattern: one or two additions with fresh-id parameters
/// in the first column and value parameters elsewhere, together with an
/// instantiation that allocates genuinely fresh identifiers.
fn update() -> impl Strategy<Value = (Update, HashMap<String, Value>, FreshSpec)> {
    let addition = prop_oneof![
        value().prop_map(|v| (Atom::new("p", vec![Term::param("f0"), Term::param("v0")]), v)),
        value().prop_map(|v| {
            (
                Atom::new(
                    "q",
                    vec![Term::param("f1"), Term::param("v1"), Term::param("v2")],
                ),
                v,
            )
        }),
    ];
    (prop::collection::vec(addition, 1..3), value(), value()).prop_map(|(adds, va, vb)| {
        let mut atoms = Vec::new();
        let mut bindings: HashMap<String, Value> = HashMap::new();
        let mut fresh_names = Vec::new();
        for (i, (a, v)) in adds.into_iter().enumerate() {
            // Rename parameters per addition so two additions do not share
            // parameters accidentally.
            let args: Vec<Term> = a
                .args
                .iter()
                .map(|t| match t {
                    Term::Param(p) => Term::param(format!("{p}_{i}")),
                    other => other.clone(),
                })
                .collect();
            let fresh_name = match &args[0] {
                Term::Param(p) => p.clone(),
                _ => unreachable!(),
            };
            // Fresh ids: far outside the generated domain and unique.
            bindings.insert(fresh_name.clone(), Value::Int(1000 + i as i64));
            fresh_names.push(fresh_name);
            for (j, t) in args.iter().enumerate().skip(1) {
                if let Term::Param(p) = t {
                    let val = match j {
                        1 => v,
                        _ => {
                            if j % 2 == 0 {
                                va
                            } else {
                                vb
                            }
                        }
                    };
                    bindings.insert(p.clone(), Value::Int(val));
                }
            }
            atoms.push(Atom::new(a.pred, args));
        }
        let u = Update::new(atoms);
        let fresh = FreshSpec::params(fresh_names);
        (u, bindings, fresh)
    })
}

/// Evaluates a set of denials after parameter instantiation.
fn holds(db: &Database, denials: &[Denial], bindings: &HashMap<String, Value>) -> Option<bool> {
    let inst: Vec<Denial> = denials.iter().map(|d| d.instantiate(bindings)).collect();
    denials_hold(db, &inst).ok()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 400,
        max_global_rejects: 40000,
        ..ProptestConfig::default()
    })]

    /// Definition 2: `D ⊨ After^U(Γ) ⇔ D^U ⊨ Γ` for every D satisfying the
    /// freshness hypotheses (no consistency precondition).
    #[test]
    fn after_is_equivalent(
        db in database(),
        gamma in prop::collection::vec(denial(), 1..3),
        (u, bindings, fresh) in update(),
    ) {
        let cfg = SimpConfig { fresh };
        let Ok(expanded) = after(&gamma, &u, &cfg) else {
            // Outside the supported aggregate fragment: nothing to check.
            return Ok(());
        };
        let Some(lhs) = holds(&db, &expanded, &bindings) else { return Ok(()); };
        let mut db2 = db.clone();
        u.instantiate(&bindings).unwrap().apply(&mut db2);
        let Some(rhs) = holds(&db2, &gamma, &bindings) else { return Ok(()); };
        prop_assert_eq!(
            lhs, rhs,
            "After mismatch\n  gamma: {:?}\n  update: {}\n  expanded: {:?}\n  bindings: {:?}",
            gamma.iter().map(std::string::ToString::to_string).collect::<Vec<_>>(),
            u,
            expanded.iter().map(std::string::ToString::to_string).collect::<Vec<_>>(),
            bindings
        );
    }

    /// Theorem 1: `D ⊨ Simp_Δ^U(Γ) ⇔ D^U ⊨ Γ` for every D consistent with
    /// Γ and the freshness hypotheses Δ.
    #[test]
    fn simp_is_equivalent_on_consistent_states(
        db in database(),
        gamma in prop::collection::vec(denial(), 1..3),
        (u, bindings, fresh) in update(),
    ) {
        // Precondition: D consistent with Γ (parameters do not occur in Γ,
        // so instantiation is a no-op there).
        let Some(consistent) = holds(&db, &gamma, &bindings) else { return Ok(()); };
        prop_assume!(consistent);

        let fresh_set: std::collections::BTreeSet<String> = match &fresh {
            FreshSpec::Params(ps) => ps.clone(),
            _ => unreachable!("update() always yields Params"),
        };
        let delta = freshness_hypotheses(&u, &fresh_set);
        // Sanity: Δ holds in D for this instantiation (ids are fresh).
        let Some(delta_holds) = holds(&db, &delta, &bindings) else { return Ok(()); };
        prop_assert!(delta_holds, "freshness hypotheses must hold by construction");

        let cfg = SimpConfig { fresh };
        let Ok(simplified) = simp(&gamma, &u, &delta, &cfg) else { return Ok(()); };
        let Some(lhs) = holds(&db, &simplified, &bindings) else { return Ok(()); };
        let mut db2 = db.clone();
        u.instantiate(&bindings).unwrap().apply(&mut db2);
        let Some(rhs) = holds(&db2, &gamma, &bindings) else { return Ok(()); };
        prop_assert_eq!(
            lhs, rhs,
            "Simp mismatch\n  gamma: {:?}\n  update: {}\n  simplified: {:?}\n  bindings: {:?}",
            gamma.iter().map(std::string::ToString::to_string).collect::<Vec<_>>(),
            u,
            simplified.iter().map(std::string::ToString::to_string).collect::<Vec<_>>(),
            bindings
        );
    }

    /// `Optimize` preserves meaning on consistent states even without an
    /// update: optimizing Γ against itself must keep it equivalent on the
    /// states where the hypotheses hold (it trivially collapses to ∅ there,
    /// so both sides hold).
    #[test]
    fn optimize_against_self_collapses(
        gamma in prop::collection::vec(denial(), 1..3),
    ) {
        let out = optimize(gamma.clone(), &gamma);
        prop_assert!(
            out.is_empty(),
            "every denial must be subsumed by its own copy in Δ: {:?}",
            out.iter().map(std::string::ToString::to_string).collect::<Vec<_>>()
        );
    }
}

//! Denial normalization: ground built-in evaluation, equality elimination,
//! duplicate removal and tautology detection.
//!
//! These are the local rewrite rules of the `Optimize` operator ("equalities
//! involving variables are eliminated as needed", "a = a" removal, …).

use xic_datalog::{CompOp, Denial, Literal, Subst, Term, Value};

/// Result of reducing a denial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reduced {
    /// The normalized denial (body may be empty: `← true`, always violated).
    Denial(Denial),
    /// The body is unsatisfiable, so the denial holds in every state and
    /// can be discarded ("the last one is a tautology", Example 5).
    TriviallySatisfied,
}

impl Reduced {
    /// Unwraps the denial, if any.
    pub fn into_denial(self) -> Option<Denial> {
        match self {
            Reduced::Denial(d) => Some(d),
            Reduced::TriviallySatisfied => None,
        }
    }
}

/// Compares two rigid terms at compile time, when possible. `None` means
/// the outcome depends on runtime parameter values.
fn eval_rigid(a: &Term, op: CompOp, b: &Term) -> Option<bool> {
    match (a, b) {
        (Term::Const(x), Term::Const(y)) => Some(op.eval(x, y)),
        (Term::Param(p), Term::Param(q)) if p == q => {
            // Same parameter, same value: reflexive comparisons decide.
            Some(matches!(op, CompOp::Eq | CompOp::Le | CompOp::Ge))
        }
        _ => None,
    }
}

/// Canonical orientation for symmetric comparison literals (`=`, `!=`):
/// variables first (alphabetically), then parameters, then constants. This
/// makes variant detection and display deterministic.
fn orient(a: Term, op: CompOp, b: Term) -> Literal {
    if matches!(op, CompOp::Eq | CompOp::Ne) {
        let rank = |t: &Term| match t {
            Term::Var(v) => (0u8, v.clone()),
            Term::Param(p) => (1, p.clone()),
            Term::Const(c) => (2, c.to_string()),
        };
        if rank(&b) < rank(&a) {
            return Literal::Comp(b, op, a);
        }
    }
    Literal::Comp(a, op, b)
}

/// Normalizes a denial to a fixpoint:
///
/// * ground comparisons are evaluated (true → dropped, false → the whole
///   denial is trivially satisfied);
/// * `X = t` binds `X` and is dropped;
/// * reflexive comparisons on equal terms are decided;
/// * duplicate literals are removed;
/// * directly contradictory comparison pairs (`t = u` with `t != u`, or
///   `t < u` with `t >= u`, …) make the denial trivially satisfied;
/// * counting aggregates compared against impossible constants (`cnt < 0`,
///   `cnt >= 0`, …) are decided.
pub fn reduce(denial: &Denial) -> Reduced {
    let mut body: Vec<Literal> = denial.body.clone();
    loop {
        let mut subst: Option<Subst> = None;
        let mut new_body: Vec<Literal> = Vec::with_capacity(body.len());
        let mut changed = false;
        for lit in &body {
            match lit {
                Literal::Comp(a, op, b) => {
                    if a == b {
                        // Reflexive: decided by the operator alone.
                        if matches!(op, CompOp::Eq | CompOp::Le | CompOp::Ge) {
                            changed = true;
                            continue; // literal is true: drop
                        }
                        return Reduced::TriviallySatisfied;
                    }
                    if a.is_rigid() && b.is_rigid() {
                        match eval_rigid(a, *op, b) {
                            Some(true) => {
                                changed = true;
                                continue;
                            }
                            Some(false) => return Reduced::TriviallySatisfied,
                            None => {
                                new_body.push(orient(a.clone(), *op, b.clone()));
                                continue;
                            }
                        }
                    }
                    // Equality with a variable on one side: substitute.
                    if *op == CompOp::Eq && subst.is_none() {
                        let bind = match (a, b) {
                            (Term::Var(v), t) => Some((v.clone(), t.clone())),
                            (t, Term::Var(v)) => Some((v.clone(), t.clone())),
                            _ => None,
                        };
                        if let Some((v, t)) = bind {
                            let mut s = Subst::new();
                            s.bind(&v, &t);
                            subst = Some(s);
                            changed = true;
                            continue; // literal consumed by the substitution
                        }
                    }
                    new_body.push(orient(a.clone(), *op, b.clone()));
                }
                Literal::Agg(agg, op, t) => {
                    // Counting aggregates are always >= 0.
                    if matches!(
                        agg.func,
                        xic_datalog::AggFunc::Cnt | xic_datalog::AggFunc::CntD
                    ) {
                        if let Term::Const(Value::Int(k)) = t {
                            let decided = match op {
                                CompOp::Ge if *k <= 0 => Some(true),
                                CompOp::Gt if *k < 0 => Some(true),
                                CompOp::Lt if *k <= 0 => Some(false),
                                CompOp::Le if *k < 0 => Some(false),
                                _ => None,
                            };
                            match decided {
                                Some(true) => {
                                    changed = true;
                                    continue;
                                }
                                Some(false) => return Reduced::TriviallySatisfied,
                                None => {}
                            }
                        }
                    }
                    new_body.push(lit.clone());
                }
                other => new_body.push(other.clone()),
            }
        }
        if let Some(s) = subst {
            body = new_body.iter().map(|l| s.apply_literal(l)).collect();
            continue;
        }
        body = new_body;
        if !changed {
            break;
        }
    }

    // Duplicate removal (order-preserving).
    let mut deduped: Vec<Literal> = Vec::with_capacity(body.len());
    for l in body {
        if !deduped.contains(&l) {
            deduped.push(l);
        }
    }

    // Direct contradictions between comparison literals over the same pair
    // of terms.
    for (i, l1) in deduped.iter().enumerate() {
        if let Literal::Comp(a1, op1, b1) = l1 {
            for l2 in &deduped[i + 1..] {
                if let Literal::Comp(a2, op2, b2) = l2 {
                    let same = a1 == a2 && b1 == b2;
                    let flipped = a1 == b2 && b1 == a2;
                    if !(same || flipped) {
                        continue;
                    }
                    let o2 = if same { *op2 } else { op2.flip() };
                    if contradictory(*op1, o2) {
                        return Reduced::TriviallySatisfied;
                    }
                }
            }
        }
    }

    Reduced::Denial(Denial::new(deduped))
}

/// True if `a op1 b ∧ a op2 b` is unsatisfiable for all values.
fn contradictory(op1: CompOp, op2: CompOp) -> bool {
    use CompOp::{Eq, Ge, Gt, Le, Lt, Ne};
    matches!(
        (op1, op2),
        (Eq, Ne)
            | (Ne, Eq)
            | (Eq, Lt)
            | (Lt, Eq)
            | (Eq, Gt)
            | (Gt, Eq)
            | (Lt, Gt)
            | (Gt, Lt)
            | (Lt, Ge)
            | (Ge, Lt)
            | (Gt, Le)
            | (Le, Gt)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use xic_datalog::parse_denial;

    fn red(s: &str) -> Reduced {
        reduce(&parse_denial(s).unwrap())
    }

    fn red_str(s: &str) -> String {
        match red(s) {
            Reduced::Denial(d) => d.to_string(),
            Reduced::TriviallySatisfied => "TAUT".to_string(),
        }
    }

    #[test]
    fn ground_comparisons_evaluated() {
        assert_eq!(red_str("<- p(X) & 1 < 2"), "<- p(X)");
        assert_eq!(red_str("<- p(X) & 2 < 1"), "TAUT");
        assert_eq!(red_str("<- p(X) & \"a\" = \"a\""), "<- p(X)");
    }

    #[test]
    fn reflexive_params() {
        assert_eq!(red_str("<- p(X) & $a = $a"), "<- p(X)");
        assert_eq!(red_str("<- p(X) & $a != $a"), "TAUT");
        assert_eq!(red_str("<- p(X) & $a <= $a"), "<- p(X)");
        assert_eq!(red_str("<- p(X) & $a < $a"), "TAUT");
    }

    #[test]
    fn param_const_kept() {
        assert_eq!(red_str("<- p(X) & $a = 3"), "<- p(X) & $a = 3");
        assert_eq!(red_str("<- $a != $b"), "<- $a != $b");
    }

    #[test]
    fn equality_substitution() {
        assert_eq!(red_str("<- X = $i & p(X, Y) & Y = 3"), "<- p($i, 3)");
        assert_eq!(red_str("<- X = Y & p(X) & q(Y)"), "<- p(Y) & q(Y)");
    }

    #[test]
    fn example_4_cases() {
        // The four members of After^U({φ}) from Example 4, reduced.
        assert_eq!(
            red_str("<- p(X,Y) & X = $i & Z = $t & Y != Z"),
            "<- p($i, Y) & Y != $t"
        );
        assert_eq!(
            red_str("<- X = $i & Y = $t & X = $i & Z = $t & Y != Z"),
            "TAUT"
        );
    }

    #[test]
    fn duplicates_removed() {
        assert_eq!(red_str("<- p(X) & p(X) & q(X)"), "<- p(X) & q(X)");
    }

    #[test]
    fn contradictory_comparisons() {
        assert_eq!(red_str("<- p(X) & $a = 3 & $a != 3"), "TAUT");
        assert_eq!(red_str("<- p(X) & $a < $b & $a >= $b"), "TAUT");
        assert_eq!(red_str("<- p(X) & $a < $b & $b < $a"), "TAUT");
    }

    #[test]
    fn count_bounds() {
        assert_eq!(red_str("<- p(X) & cnt(; q(_)) >= 0"), "<- p(X)");
        assert_eq!(red_str("<- p(X) & cnt(; q(_)) < 0"), "TAUT");
        assert_eq!(red_str("<- p(X) & cnt(; q(_)) > -1"), "<- p(X)");
        assert_eq!(
            red_str("<- p(X) & cntd(; q(_)) > 3"),
            "<- p(X) & cntd(; q(_0)) > 3"
        );
    }

    #[test]
    fn symmetric_orientation_is_canonical() {
        assert_eq!(red_str("<- $t != Y & p(Y)"), red_str("<- Y != $t & p(Y)"));
    }

    #[test]
    fn empty_body_survives() {
        let d = Denial::always_violated();
        assert_eq!(reduce(&d), Reduced::Denial(Denial::always_violated()));
    }
}

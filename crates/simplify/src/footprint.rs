//! Static read/write footprints for update/constraint independence.
//!
//! A constraint's **read footprint** is the set of relations its denial
//! bodies mention, with a per-relation mask of the argument columns whose
//! *values* influence the verdict. An update's **write footprint** is the
//! set of relations whose tuple membership it may change, the individual
//! `(relation, column)` cells whose values it may overwrite, and the
//! relations whose `Pos` column may shift. Two footprints that do not
//! intersect prove the update cannot change the constraint's verdict —
//! given a Σ-consistent pre-state (the paper's Theorem 1 premise, which
//! the optimized strategy already assumes), the post-state check for
//! that constraint can be skipped outright.
//!
//! Everything here is a *sound over-approximation*: whenever a shape is
//! not recognized, the footprint inflates ([`ReadFootprint::unsound`] /
//! [`WriteFootprint::All`]) and the intersection reports an overlap, so
//! the caller falls back to checking everything.

use std::collections::{BTreeMap, BTreeSet};
use xic_datalog::{Atom, Denial, Literal, Term, Update};

/// Column index of the `Pos` argument in every shredded relation
/// (`(Id, Pos, IdParent, col…)` — see `xic_mapping::shred`).
pub const POS_COL: usize = 1;

/// The relations (and columns) one denial reads.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReadFootprint {
    /// Relation name → argument columns whose values are read. A relation
    /// appearing as a key at all means the denial's verdict is sensitive
    /// to that relation's *tuple membership* (insertions/removals),
    /// whatever the column mask says.
    rels: BTreeMap<String, BTreeSet<usize>>,
}

impl ReadFootprint {
    /// The footprint that reads everything (conservative fallback).
    pub fn unsound() -> ReadFootprint {
        let mut rels = BTreeMap::new();
        rels.insert(ALL_RELS.to_string(), BTreeSet::new());
        ReadFootprint { rels }
    }

    /// True if this is the reads-everything fallback.
    pub fn is_unsound(&self) -> bool {
        self.rels.contains_key(ALL_RELS)
    }

    /// True if the denial's verdict is sensitive to tuple membership of
    /// `rel`.
    pub fn mentions(&self, rel: &str) -> bool {
        self.is_unsound() || self.rels.contains_key(rel)
    }

    /// True if the denial reads the value of column `col` of `rel`.
    pub fn reads_cell(&self, rel: &str, col: usize) -> bool {
        self.is_unsound()
            || self.rels.get(rel).is_some_and(|cols| cols.contains(&col))
    }

    /// The relations this footprint mentions (empty for the unsound
    /// fallback — use [`ReadFootprint::is_unsound`] first).
    pub fn relations(&self) -> impl Iterator<Item = &str> {
        self.rels.keys().filter(|r| r.as_str() != ALL_RELS).map(String::as_str)
    }
}

/// Pseudo-relation marking the reads-everything fallback.
const ALL_RELS: &str = "\u{0}all";

/// Extracts the read footprint of one denial.
///
/// Per atom (positive, negative, or inside an aggregate pattern), the
/// relation is recorded as membership-sensitive. A column's *value* is
/// read when its term is a constant or parameter (selection), or a
/// variable that occurs more than once across the whole body (join,
/// comparison, or aggregated term) — a variable occurring exactly once
/// is a wildcard whose value cannot influence satisfiability.
pub fn read_footprint(denial: &Denial) -> ReadFootprint {
    let mut occurrences: BTreeMap<String, usize> = BTreeMap::new();
    let mut count_term = |t: &Term| {
        if let Term::Var(v) = t {
            *occurrences.entry(v.clone()).or_insert(0) += 1;
        }
    };
    for lit in &denial.body {
        match lit {
            Literal::Pos(a) | Literal::Neg(a) => a.args.iter().for_each(&mut count_term),
            Literal::Comp(l, _, r) => {
                count_term(l);
                count_term(r);
            }
            Literal::Agg(agg, _, rhs) => {
                if let Some(t) = &agg.term {
                    count_term(t);
                }
                for a in &agg.pattern {
                    a.args.iter().for_each(&mut count_term);
                }
                count_term(rhs);
            }
        }
    }
    let shared = |t: &Term| match t {
        Term::Var(v) => occurrences.get(v.as_str()).copied().unwrap_or(0) > 1,
        Term::Const(_) | Term::Param(_) => true,
    };
    let mut fp = ReadFootprint::default();
    fn record(
        fp: &mut ReadFootprint,
        a: &Atom,
        shared: &dyn Fn(&Term) -> bool,
        aggregated: Option<&Term>,
    ) {
        let cols = fp.rels.entry(a.pred.clone()).or_default();
        for (i, t) in a.args.iter().enumerate() {
            let is_agg = aggregated.is_some_and(|at| at == t && matches!(t, Term::Var(_)));
            if shared(t) || is_agg {
                cols.insert(i);
            }
        }
    }
    for lit in &denial.body {
        match lit {
            Literal::Pos(a) | Literal::Neg(a) => record(&mut fp, a, &shared, None),
            Literal::Comp(..) => {}
            Literal::Agg(agg, _, _) => {
                // The aggregated term's value is read even if its
                // variable occurs nowhere else (Sum/Max/Min aggregate
                // over it), so force those columns on.
                for a in &agg.pattern {
                    record(&mut fp, a, &shared, agg.term.as_ref());
                }
            }
        }
    }
    fp
}

/// Extracts read footprints for a whole constraint set, in order.
pub fn read_footprints(gamma: &[Denial]) -> Vec<ReadFootprint> {
    gamma.iter().map(read_footprint).collect()
}

/// The relations (and cells) one update may write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteFootprint {
    /// Conservative fallback: may write anything; every constraint stays
    /// live.
    All,
    /// A provably bounded write set.
    Cells(WriteSet),
}

/// The bounded form of a [`WriteFootprint`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriteSet {
    /// Relations whose tuple membership may change (insert/remove).
    pub existence: BTreeSet<String>,
    /// `(relation, column)` cells whose values may be overwritten in
    /// tuples that otherwise survive.
    pub cells: BTreeSet<(String, usize)>,
    /// Relations whose `Pos` column values may shift (sibling
    /// displacement by a positional insert or a removal).
    pub pos_shift: BTreeSet<String>,
}

impl WriteFootprint {
    /// An empty (writes-nothing) footprint.
    pub fn empty() -> WriteFootprint {
        WriteFootprint::Cells(WriteSet::default())
    }

    /// Merges another footprint into this one (multi-op statements).
    pub fn union(self, other: WriteFootprint) -> WriteFootprint {
        match (self, other) {
            (WriteFootprint::All, _) | (_, WriteFootprint::All) => WriteFootprint::All,
            (WriteFootprint::Cells(mut a), WriteFootprint::Cells(b)) => {
                a.existence.extend(b.existence);
                a.cells.extend(b.cells);
                a.pos_shift.extend(b.pos_shift);
                WriteFootprint::Cells(a)
            }
        }
    }

    /// True if an update with this footprint can influence a constraint
    /// with read footprint `read` — the *dependence* test. `false` is a
    /// proof of independence; `true` is merely "not provably
    /// independent".
    pub fn overlaps(&self, read: &ReadFootprint) -> bool {
        if read.is_unsound() {
            return true;
        }
        match self {
            WriteFootprint::All => true,
            WriteFootprint::Cells(w) => {
                w.existence.iter().any(|r| read.mentions(r))
                    || w.cells.iter().any(|(r, c)| read.reads_cell(r, *c))
                    || w.pos_shift.iter().any(|r| read.reads_cell(r, POS_COL))
            }
        }
    }
}

/// The write footprint of a mapped insertion pattern (a datalog
/// [`Update`] is pure tuple addition, so the footprint is the existence
/// set of the added predicates). Position displacement of existing
/// siblings is *not* covered here — callers deciding a full skip for a
/// concrete statement must use the statement-level footprint from the
/// checker layer; this form is only used to pre-filter which constraints
/// enter `Simp` at pattern-compile time, where tuple addition is exactly
/// what `After` reasons about.
pub fn update_write_footprint(update: &Update) -> WriteFootprint {
    let mut w = WriteSet::default();
    for a in &update.additions {
        w.existence.insert(a.pred.clone());
    }
    WriteFootprint::Cells(w)
}

/// The per-constraint live bitset for one update footprint: `live[i]` is
/// true when constraint `i` must still be checked. With `K` constraints
/// and small denials this is O(K · footprint size).
pub fn live_set(read_fps: &[ReadFootprint], write: &WriteFootprint) -> Vec<bool> {
    read_fps.iter().map(|r| write.overlaps(r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xic_datalog::parse_denial;

    fn fp(text: &str) -> ReadFootprint {
        read_footprint(&parse_denial(text).expect("denial parses"))
    }

    #[test]
    fn membership_recorded_per_atom() {
        let f = fp("<- sub(I, P, R) & rev(R, Q, T)");
        assert!(f.mentions("sub"));
        assert!(f.mentions("rev"));
        assert!(!f.mentions("track"));
    }

    #[test]
    fn single_occurrence_vars_are_wildcards() {
        let f = fp("<- sub(I, P, R) & rev(R, Q, T)");
        // `R` joins the two atoms: column 2 of sub, column 0 of rev.
        assert!(f.reads_cell("sub", 2));
        assert!(f.reads_cell("rev", 0));
        // `I`, `P`, `Q`, `T` occur once each: wildcards.
        assert!(!f.reads_cell("sub", 0));
        assert!(!f.reads_cell("sub", 1));
        assert!(!f.reads_cell("rev", 1));
        assert!(!f.reads_cell("rev", 2));
    }

    #[test]
    fn constants_and_params_are_reads() {
        let f = fp("<- sub(I, 3, $r)");
        assert!(f.reads_cell("sub", 1));
        assert!(f.reads_cell("sub", 2));
        assert!(!f.reads_cell("sub", 0));
    }

    #[test]
    fn comparison_makes_var_shared() {
        let f = fp("<- sub(I, P, R) & P > 2");
        assert!(f.reads_cell("sub", 1));
    }

    #[test]
    fn aggregated_term_is_read() {
        // `X` occurs only inside the aggregate pattern, but Sum reads it.
        let f = fp("<- rev(I, P, T) & sum(X; sub(S, X, I)) > 5");
        assert!(f.reads_cell("sub", 1), "aggregated column is a value read");
        assert!(f.reads_cell("sub", 2), "join with outer I");
        assert!(!f.reads_cell("sub", 0), "S is a wildcard");
    }

    #[test]
    fn cnt_pattern_reads_join_columns_only() {
        let f = fp("<- rev(I, P, T) & cnt(; sub(S, X, I)) > 5");
        assert!(f.mentions("sub"));
        assert!(!f.reads_cell("sub", 0));
        assert!(!f.reads_cell("sub", 1));
        assert!(f.reads_cell("sub", 2));
    }

    #[test]
    fn overlap_on_existence() {
        let f = fp("<- sub(I, P, R)");
        let mut w = WriteSet::default();
        w.existence.insert("sub".to_string());
        assert!(WriteFootprint::Cells(w).overlaps(&f));
        let mut other = WriteSet::default();
        other.existence.insert("rev".to_string());
        assert!(!WriteFootprint::Cells(other).overlaps(&f));
    }

    #[test]
    fn overlap_on_cell_requires_value_read() {
        let f = fp("<- sub(I, P, R) & rev(R, Q, T)");
        // Writing a wildcard column of sub is invisible…
        let mut w = WriteSet::default();
        w.cells.insert(("sub".to_string(), 1));
        assert!(!WriteFootprint::Cells(w).overlaps(&f));
        // …writing the joined column is not.
        let mut w = WriteSet::default();
        w.cells.insert(("sub".to_string(), 2));
        assert!(WriteFootprint::Cells(w).overlaps(&f));
    }

    #[test]
    fn pos_shift_only_conflicts_with_pos_reads() {
        let reads_pos = fp("<- sub(I, P, R) & P > 1");
        let ignores_pos = fp("<- sub(I, P, R) & rev(R, Q, T)");
        let mut w = WriteSet::default();
        w.pos_shift.insert("sub".to_string());
        let w = WriteFootprint::Cells(w);
        assert!(w.overlaps(&reads_pos));
        assert!(!w.overlaps(&ignores_pos));
    }

    #[test]
    fn all_and_unsound_always_overlap() {
        let f = fp("<- sub(I, P, R)");
        assert!(WriteFootprint::All.overlaps(&f));
        assert!(WriteFootprint::empty().overlaps(&ReadFootprint::unsound()));
        assert!(!WriteFootprint::empty().overlaps(&f));
    }

    #[test]
    fn union_accumulates_and_saturates() {
        let mut a = WriteSet::default();
        a.existence.insert("sub".to_string());
        let mut b = WriteSet::default();
        b.pos_shift.insert("rev".to_string());
        let u = WriteFootprint::Cells(a).union(WriteFootprint::Cells(b));
        let WriteFootprint::Cells(u) = &u else { panic!("bounded union") };
        assert!(u.existence.contains("sub") && u.pos_shift.contains("rev"));
        assert_eq!(
            WriteFootprint::empty().union(WriteFootprint::All),
            WriteFootprint::All
        );
    }

    #[test]
    fn live_set_matches_overlap_per_constraint() {
        let gamma = [
            parse_denial("<- sub(I, P, R)").expect("parses"),
            parse_denial("<- rev(I, P, T)").expect("parses"),
        ];
        let fps = read_footprints(&gamma);
        let mut w = WriteSet::default();
        w.existence.insert("sub".to_string());
        assert_eq!(live_set(&fps, &WriteFootprint::Cells(w)), vec![true, false]);
    }
}

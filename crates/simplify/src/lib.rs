//! Simplification of integrity constraints (Section 5 of the paper).
//!
//! Given a constraint set Γ (denials), an update pattern `U` (ground-modulo
//! -parameters insertions) and trusted hypotheses Δ, this crate computes
//!
//! ```text
//! Simp_Δ^U(Γ) = Optimize_{Γ∪Δ}( After^U(Γ) )
//! ```
//!
//! `After` (Definition 2) rewrites Γ so that checking the result in the
//! *present* state `D` is equivalent to checking Γ in the *updated* state
//! `D^U`; `Optimize` then exploits the hypothesis that `D` is consistent
//! with Γ∪Δ to discard redundant denials, evaluate ground conditions and
//! instantiate clauses as much as possible. Theorem 1:
//!
//! > `Simp` terminates on any input and `Simp_Δ^U(Γ)` holds in a database
//! > state `D` consistent with Δ iff Γ holds in `D^U`.
//!
//! This equivalence is property-tested in `tests/theorem1.rs` against the
//! ground-truth evaluator of `xic-datalog`.
//!
//! # Example — the paper's Example 4/5 (ISSN uniqueness)
//!
//! ```
//! use xic_datalog::{parse_denial, parse_update};
//! use xic_simplify::{simp, SimpConfig};
//!
//! let phi = parse_denial("<- p(X, Y) & p(X, Z) & Y != Z").unwrap();
//! let u = parse_update("{p($i, $t)}").unwrap();
//! let out = simp(&[phi], &u, &[], &SimpConfig::default()).unwrap();
//! assert_eq!(out.len(), 1);
//! assert_eq!(out[0].to_string(), "<- p($i, Y) & Y != $t");
//! ```
//!
//! In the system-inventory table of `DESIGN.md` this crate is item 9 (simplification engine — the paper's core contribution).

pub mod after;
pub mod footprint;
pub mod hypotheses;
pub mod optimize;
pub mod reduce;
pub mod subsume;

pub use after::{after, AfterError};
pub use footprint::{
    live_set, read_footprint, read_footprints, update_write_footprint, ReadFootprint,
    WriteFootprint, WriteSet,
};
pub use hypotheses::freshness_hypotheses;
pub use optimize::optimize;
pub use reduce::{reduce, Reduced};
pub use subsume::{subsumes, variants};

use xic_datalog::{Denial, Update};

/// How the simplifier may justify that added tuples are *new* (not already
/// present in the database). This only matters for aggregate literals:
/// plain atoms are handled exactly under set semantics either way.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum FreshSpec {
    /// No freshness assumption: aggregates over updated predicates cannot
    /// be simplified.
    #[default]
    None,
    /// The named parameters stand for globally fresh values (new XML node
    /// ids). An addition is fresh when it contains at least one of them.
    Params(std::collections::BTreeSet<String>),
    /// Every added tuple is guaranteed absent from the current state. This
    /// is always true for the XML shredding, whose first column is a newly
    /// allocated node id.
    AllFresh,
}

impl FreshSpec {
    /// Builds a [`FreshSpec::Params`] from parameter names.
    pub fn params<I, S>(names: I) -> FreshSpec
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        FreshSpec::Params(names.into_iter().map(Into::into).collect())
    }

    /// True if `atom` (an addition) is known to be absent from the present
    /// database state.
    pub fn addition_is_fresh(&self, atom: &xic_datalog::Atom) -> bool {
        match self {
            FreshSpec::None => false,
            FreshSpec::AllFresh => true,
            FreshSpec::Params(ps) => atom.args.iter().any(|t| match t {
                xic_datalog::Term::Param(p) => ps.contains(p),
                _ => false,
            }),
        }
    }
}

/// Configuration for the simplification procedure.
#[derive(Debug, Clone, Default)]
pub struct SimpConfig {
    /// Freshness justification for aggregate simplification.
    pub fresh: FreshSpec,
}

/// Computes `Simp_Δ^U(Γ)`: [`after`](after()) followed by
/// [`optimize`](optimize()) with the
/// hypothesis set `Γ ∪ Δ` (`extra_delta` is the Δ of the paper — e.g. the
/// freshness hypotheses of Example 6).
///
/// Returns [`AfterError`] when some constraint/update combination falls
/// outside the supported aggregate fragment; callers are expected to fall
/// back to full (non-incremental) checking in that case, as the paper does
/// for unrecognized updates.
pub fn simp(
    gamma: &[Denial],
    update: &Update,
    extra_delta: &[Denial],
    config: &SimpConfig,
) -> Result<Vec<Denial>, AfterError> {
    simp_live(gamma, &[], update, extra_delta, config)
}

/// [`simp`] restricted to the constraints `live` marks `true` (missing
/// entries count as live, so an empty slice means "all"): skipped
/// constraints are not expanded — the compile-time saving of the static
/// independence analysis — while the hypothesis set stays the **full**
/// `Γ ∪ Δ`, since every constraint holds in the consistent pre-state
/// whether or not the update affects it. A constraint the analysis skips
/// never mentions an added predicate, so `After` would have returned it
/// unchanged and hypothesis subsumption (against itself in Γ) would have
/// eliminated it: the surviving clause set is the one [`simp`] computes.
pub fn simp_live(
    gamma: &[Denial],
    live: &[bool],
    update: &Update,
    extra_delta: &[Denial],
    config: &SimpConfig,
) -> Result<Vec<Denial>, AfterError> {
    let subset: Vec<Denial> = gamma
        .iter()
        .enumerate()
        .filter(|(i, _)| live.get(*i).copied().unwrap_or(true))
        .map(|(_, d)| d.clone())
        .collect();
    let expanded = {
        let _span = xic_obs::phase("after");
        after(&subset, update, config)?
    };
    xic_obs::add(xic_obs::Counter::ClausesExpanded, expanded.len() as u64);
    let mut delta: Vec<Denial> = gamma.to_vec();
    delta.extend_from_slice(extra_delta);
    let simplified = {
        let _span = xic_obs::phase("optimize");
        let optimized = optimize(expanded, &delta);
        eliminate_fresh_comparisons(optimized, &config.fresh)
    };
    xic_obs::add(xic_obs::Counter::ClausesSurviving, simplified.len() as u64);
    Ok(simplified)
}

/// Decides (dis)equalities against globally fresh node-id parameters: a
/// fresh identifier can never equal an identifier already present in the
/// database, so `X != $fresh` (with `X` bound to an existing node id) is
/// always true and `X = $fresh` makes the denial trivially satisfied.
/// This removes the residual `B != $n` literal that `After` leaves behind
/// in uniqueness constraints (Example 4's pattern applied to node ids).
pub fn eliminate_fresh_comparisons(denials: Vec<Denial>, fresh: &FreshSpec) -> Vec<Denial> {
    use xic_datalog::{CompOp, Literal, Term};
    let FreshSpec::Params(fresh) = fresh else {
        return denials;
    };
    let mut out = Vec::with_capacity(denials.len());
    'denials: for d in denials {
        // Terms known to denote identifiers of nodes existing in the
        // present state: variables and parameters in the id/parent columns
        // of positive database atoms.
        let mut existing: std::collections::HashSet<&Term> = std::collections::HashSet::new();
        for l in &d.body {
            if let Literal::Pos(a) = l {
                for col in [0usize, 2] {
                    if let Some(t) = a.args.get(col) {
                        match t {
                            Term::Param(p) if fresh.contains(p) => {}
                            Term::Var(_) | Term::Param(_) => {
                                existing.insert(t);
                            }
                            Term::Const(_) => {}
                        }
                    }
                }
            }
        }
        // A database atom carrying a fresh parameter in its id or parent
        // column can never match an existing tuple: the body is
        // unsatisfiable and the denial trivially holds.
        for l in &d.body {
            if let Literal::Pos(a) = l {
                for col in [0usize, 2] {
                    if let Some(Term::Param(p)) = a.args.get(col) {
                        if fresh.contains(p) {
                            continue 'denials;
                        }
                    }
                }
            }
        }
        let mut body = Vec::with_capacity(d.body.len());
        for l in &d.body {
            if let Literal::Comp(x, op, y) = l {
                let fresh_side = |t: &Term| matches!(t, Term::Param(p) if fresh.contains(p));
                let decided = if fresh_side(x) && existing.contains(y)
                    || fresh_side(y) && existing.contains(x)
                    || (fresh_side(x) && fresh_side(y) && x != y)
                {
                    match op {
                        CompOp::Ne => Some(true),
                        CompOp::Eq => Some(false),
                        _ => None,
                    }
                } else {
                    None
                };
                match decided {
                    Some(true) => continue,          // literal always true: drop it
                    Some(false) => continue 'denials, // body unsatisfiable: drop denial
                    None => {}
                }
            }
            body.push(l.clone());
        }
        out.push(Denial::new(body));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xic_datalog::{parse_denial, parse_denials, parse_update};

    /// Example 4/5: uniqueness of ISSN.
    #[test]
    fn paper_example_4_and_5() {
        let phi = parse_denial("<- p(X, Y) & p(X, Z) & Y != Z").unwrap();
        let u = parse_update("{p($i, $t)}").unwrap();
        let out = simp(&[phi], &u, &[], &SimpConfig::default()).unwrap();
        assert_eq!(out.len(), 1, "got: {out:?}");
        assert_eq!(out[0].to_string(), "<- p($i, Y) & Y != $t");
    }

    /// Example 6: conflict of interests with freshness hypotheses.
    #[test]
    fn paper_example_6() {
        let gamma = parse_denials(
            "<- rev(Ir,_,_,R) & sub(Is,_,Ir,_) & auts(_,_,Is,R).
             <- rev(Ir,_,_,R) & sub(Is,_,Ir,_) & auts(_,_,Is,A)
                & aut(_,_,Ip,R) & aut(_,_,Ip,A).",
        )
        .unwrap();
        let u = parse_update("{sub($is, $ps, $ir, $t), auts($ia, $pa, $is, $n)}").unwrap();
        let delta = parse_denials(
            "<- sub($is,_,_,_). <- auts(_,_,$is,_). <- auts($ia,_,_,_).",
        )
        .unwrap();
        let cfg = SimpConfig {
            fresh: FreshSpec::params(["is", "ia"]),
        };
        let out = simp(&gamma, &u, &delta, &cfg).unwrap();
        let want1 = parse_denial("<- rev($ir,_,_,$n)").unwrap();
        let want2 =
            parse_denial("<- rev($ir,_,_,R) & aut(_,_,Ip,$n) & aut(_,_,Ip,R)").unwrap();
        assert_eq!(out.len(), 2, "got: {out:?}");
        assert!(out.iter().any(|d| variants(d, &want1)), "missing {want1}; got {out:?}");
        assert!(out.iter().any(|d| variants(d, &want2)), "missing {want2}; got {out:?}");
    }

    /// Example 7: per-track review-load aggregate.
    #[test]
    fn paper_example_7() {
        let phi = parse_denial("<- rev(Ir,_,_,_) & cntd(; sub(_,_,Ir,_)) > 4").unwrap();
        let u = parse_update("{sub($is, $ps, $ir, $t), auts($ia, $pa, $is, $n)}").unwrap();
        let delta = parse_denials(
            "<- sub($is,_,_,_). <- auts(_,_,$is,_). <- auts($ia,_,_,_).",
        )
        .unwrap();
        let cfg = SimpConfig {
            fresh: FreshSpec::params(["is", "ia"]),
        };
        let out = simp(&[phi], &u, &delta, &cfg).unwrap();
        assert_eq!(out.len(), 1, "got: {out:?}");
        let want = parse_denial("<- rev($ir,_,_,_) & cntd(; sub(_,_,$ir,_)) > 3").unwrap();
        assert!(variants(&out[0], &want), "got: {}", out[0]);
    }

    /// Uniqueness over node identity: the residual `B != $n` comparison
    /// against the fresh id must be eliminated.
    #[test]
    fn fresh_id_disequality_eliminated() {
        let phi = parse_denial("<- b(B,_,_,I) & b(C,_,_,I) & B != C").unwrap();
        let u = parse_update("{b($n, $p, $t, $v)}").unwrap();
        let cfg = SimpConfig {
            fresh: FreshSpec::params(["n"]),
        };
        let out = simp(&[phi], &u, &[], &cfg).unwrap();
        assert_eq!(out.len(), 1, "{out:?}");
        // The surviving denial checks for an existing book with the same
        // value — and no residual comparison with $n.
        assert!(!out[0].to_string().contains("$n"), "{}", out[0]);
        assert!(out[0].to_string().contains("$v"), "{}", out[0]);
    }

    /// An equality against a fresh id makes the whole case impossible.
    #[test]
    fn fresh_id_equality_drops_denial() {
        let phi = parse_denial("<- b(B,_,_,_) & q(Q) & B = Q").unwrap();
        let u = parse_update("{q($n)}").unwrap();
        let cfg = SimpConfig {
            fresh: FreshSpec::params(["n"]),
        };
        // Expansion yields a case with B = $n, which freshness kills; the
        // surviving denials never mention $n.
        let out = simp(&[phi], &u, &[], &cfg).unwrap();
        for d in &out {
            assert!(!d.to_string().contains("$n"), "{d}");
        }
    }

    #[test]
    fn update_on_unrelated_predicate_removes_everything() {
        let phi = parse_denial("<- p(X) & q(X)").unwrap();
        let u = parse_update("{r($a)}").unwrap();
        let out = simp(&[phi], &u, &[], &SimpConfig::default()).unwrap();
        assert!(out.is_empty(), "got: {out:?}");
    }

    #[test]
    fn always_illegal_update() {
        // Constraint: no r-fact with value 1 may exist; the update inserts
        // exactly that.
        let phi = parse_denial("<- r(1)").unwrap();
        let u = parse_update("{r(1)}").unwrap();
        let out = simp(&[phi], &u, &[], &SimpConfig::default()).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].body.is_empty(), "got: {out:?}");
    }
}

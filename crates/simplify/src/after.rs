//! The `After` transformation (Definition 2), extended to aggregates.
//!
//! `After^U(Γ)` is a set of denials that holds in the present state `D` iff
//! Γ holds in `D^U`. For plain atoms this is the textbook rewriting: every
//! atom `p(t̄)` is replaced by `p(t̄) ∨ t̄=ā₁ ∨ … ∨ t̄=āₙ` over the additions
//! on `p`, and the body is distributed to disjunctive normal form, yielding
//! one denial per choice vector. Negated atoms contribute the De Morgan
//! dual: `¬p'(t̄) ⇔ ¬p(t̄) ∧ ⋀ᵢ ⋁ⱼ tⱼ≠āᵢⱼ`, again expanded by
//! distribution.
//!
//! Aggregate literals follow the extension of \[16\] ("Simplification of
//! integrity constraints with aggregates and arithmetic built-ins"): each
//! way the added tuples can embed into the aggregate's pattern produces a
//! case where the group variables are instantiated by the embedding, the
//! residual pattern atoms move into the clause body (where the plain-atom
//! expansion gives them new-state semantics) and the threshold is shifted
//! by the embedding's contribution. See [`AfterError`] for the supported
//! fragment; outside it, callers fall back to full checking.

use crate::reduce::{reduce, Reduced};
use crate::SimpConfig;
use std::collections::{BTreeMap, HashSet};
use std::fmt;
use xic_datalog::{
    AggFunc, Aggregate, Atom, CompOp, Denial, Literal, Subst, Term, Update, Value, VarGen,
};

/// The constraint/update combination falls outside the fragment for which
/// an exact pre-update test can be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AfterError {
    /// The offending denial, rendered.
    pub denial: String,
    /// Why it cannot be simplified.
    pub reason: String,
}

impl fmt::Display for AfterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot simplify `{}`: {}", self.denial, self.reason)
    }
}

impl std::error::Error for AfterError {}

/// Computes `After^U(Γ)` (reduced and de-duplicated, but *not* yet
/// optimized against trusted hypotheses — see
/// [`optimize`](crate::optimize::optimize)).
pub fn after(
    gamma: &[Denial],
    update: &Update,
    config: &SimpConfig,
) -> Result<Vec<Denial>, AfterError> {
    let mut gen = VarGen::new();
    for d in gamma {
        for v in d.vars() {
            gen.fresh(&v);
        }
    }
    let mut out: Vec<Denial> = Vec::new();
    let mut seen: HashSet<String> = HashSet::new();
    for phi in gamma {
        let agg_variants = expand_aggregates(phi.clone(), 0, update, config, &mut gen)?;
        for v in agg_variants {
            for d in expand_atoms(&v, update) {
                if let Reduced::Denial(r) = reduce(&d) {
                    if seen.insert(r.canonical_key()) {
                        out.push(r);
                    }
                }
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Plain-atom expansion
// ---------------------------------------------------------------------

/// Expands positive and negated database atoms against the update,
/// producing the DNF case product. Atoms inside aggregate patterns are
/// *not* touched: after [`expand_aggregates`] those denote old-state
/// values by construction.
fn expand_atoms(denial: &Denial, update: &Update) -> Vec<Denial> {
    // Each literal maps to a list of alternatives; each alternative is a
    // list of literals replacing the original.
    let mut alternatives: Vec<Vec<Vec<Literal>>> = Vec::with_capacity(denial.body.len());
    for lit in &denial.body {
        match lit {
            Literal::Pos(a) if update.additions_on(&a.pred).next().is_some() => {
                let mut alts: Vec<Vec<Literal>> = vec![vec![lit.clone()]];
                for add in update.additions_on(&a.pred) {
                    if add.args.len() != a.args.len() {
                        continue; // arity mismatch: cannot be this atom
                    }
                    let eqs: Vec<Literal> = a
                        .args
                        .iter()
                        .zip(&add.args)
                        .map(|(t, u)| Literal::eq(t.clone(), u.clone()))
                        .collect();
                    alts.push(eqs);
                }
                alternatives.push(alts);
            }
            Literal::Neg(a) if update.additions_on(&a.pred).next().is_some() => {
                // ¬p'(t̄) = ¬p(t̄) ∧ ⋀_additions ⋁_columns tⱼ ≠ āⱼ
                let mut alts: Vec<Vec<Literal>> = vec![vec![lit.clone()]];
                for add in update.additions_on(&a.pred) {
                    if add.args.len() != a.args.len() {
                        continue;
                    }
                    let mut next: Vec<Vec<Literal>> = Vec::new();
                    for alt in &alts {
                        for (t, u) in a.args.iter().zip(&add.args) {
                            let mut ext = alt.clone();
                            ext.push(Literal::ne(t.clone(), u.clone()));
                            next.push(ext);
                        }
                    }
                    alts = next;
                }
                alternatives.push(alts);
            }
            other => alternatives.push(vec![vec![other.clone()]]),
        }
    }
    // Cartesian product.
    let mut results: Vec<Vec<Literal>> = vec![Vec::new()];
    for alts in alternatives {
        let mut next = Vec::with_capacity(results.len() * alts.len());
        for r in &results {
            for alt in &alts {
                let mut body = r.clone();
                body.extend(alt.iter().cloned());
                next.push(body);
            }
        }
        results = next;
    }
    results.into_iter().map(Denial::new).collect()
}

// ---------------------------------------------------------------------
// Aggregate expansion
// ---------------------------------------------------------------------

/// One way the update's tuples can embed into an aggregate's pattern.
struct Vector {
    /// Variable bindings induced by unifying selected pattern atoms with
    /// their additions (both group and local variables).
    bindings: BTreeMap<String, Term>,
    /// Rigid equality conditions that must hold for the embedding.
    conditions: Vec<(Term, Term)>,
    /// Pattern atoms not matched to an addition, under `bindings`, with
    /// remaining local variables renamed fresh; these must hold in the
    /// *new* state and therefore move into the clause body.
    residuals: Vec<Atom>,
    /// Contribution bookkeeping.
    contribution: Contribution,
}

enum Contribution {
    /// +1 matching binding (Cnt / Cnt_D without a counted term).
    One,
    /// One new distinct counted value, a globally fresh parameter.
    DistinctParam(String),
    /// Sum contribution of a known integer amount.
    Amount(i64),
    /// Max/Min candidate value (constant or parameter).
    Candidate(Term),
}

/// Expands aggregate literals (whose patterns mention updated predicates)
/// starting at body index `idx`, recursing over later literals.
fn expand_aggregates(
    denial: Denial,
    idx: usize,
    update: &Update,
    config: &SimpConfig,
    gen: &mut VarGen,
) -> Result<Vec<Denial>, AfterError> {
    let mut i = idx;
    while i < denial.body.len() {
        if let Literal::Agg(agg, op, threshold) = &denial.body[i] {
            let relevant: Vec<usize> = agg
                .pattern
                .iter()
                .enumerate()
                .filter(|(_, a)| update.additions_on(&a.pred).next().is_some())
                .map(|(k, _)| k)
                .collect();
            if !relevant.is_empty() {
                let cases = aggregate_cases(
                    &denial,
                    i,
                    agg,
                    *op,
                    threshold,
                    &relevant,
                    update,
                    config,
                    gen,
                )?;
                let mut out = Vec::new();
                for case in cases {
                    out.extend(expand_aggregates(case, i + 1, update, config, gen)?);
                }
                return Ok(out);
            }
        }
        i += 1;
    }
    Ok(vec![denial])
}

/// Builds the case denials for one aggregate literal.
#[allow(clippy::too_many_arguments)]
fn aggregate_cases(
    denial: &Denial,
    lit_idx: usize,
    agg: &Aggregate,
    op: CompOp,
    threshold: &Term,
    relevant: &[usize],
    update: &Update,
    config: &SimpConfig,
    gen: &mut VarGen,
) -> Result<Vec<Denial>, AfterError> {
    let unsupported = |reason: &str| AfterError {
        denial: denial.to_string(),
        reason: reason.to_string(),
    };

    // Variables of the denial that occur outside this aggregate literal
    // (group variables stay; everything else in the pattern is local).
    let mut outer: HashSet<String> = HashSet::new();
    for (j, l) in denial.body.iter().enumerate() {
        if j != lit_idx {
            for v in l.vars() {
                outer.insert(v);
            }
        }
    }
    if let Term::Var(v) = threshold {
        outer.insert(v.clone());
    }

    let single_atom = agg.pattern.len() == 1;

    // Enumerate feasible embedding vectors: every assignment of relevant
    // pattern atoms to (DB | addition) with at least one addition.
    let mut vectors: Vec<Vector> = Vec::new();
    let choices: Vec<Vec<Option<&Atom>>> = relevant
        .iter()
        .map(|&k| {
            let mut c: Vec<Option<&Atom>> = vec![None];
            c.extend(update.additions_on(&agg.pattern[k].pred).map(Some));
            c
        })
        .collect();
    let mut pick = vec![0usize; relevant.len()];
    loop {
        let selected: Vec<(usize, &Atom)> = relevant
            .iter()
            .zip(&pick)
            .filter_map(|(&k, &p)| choices_get(&choices, relevant, k, p).map(|a| (k, a)))
            .collect();
        if !selected.is_empty() {
            if let Some(v) = build_vector(
                agg, &selected, &outer, op, threshold, config, single_atom, gen,
            )
            .map_err(|r| unsupported(&r))?
            {
                vectors.push(v);
            }
        }
        // Advance the mixed-radix counter.
        let mut done = true;
        for (slot, p) in pick.iter_mut().enumerate() {
            *p += 1;
            if *p < choices[slot].len() {
                done = false;
                break;
            }
            *p = 0;
        }
        if done {
            break;
        }
    }

    if vectors.is_empty() {
        // Every embedding is statically infeasible: the aggregate is
        // unaffected by the update.
        return Ok(vec![denial.clone()]);
    }
    if vectors.len() > 8 {
        return Err(unsupported(
            "too many aggregate embedding cases (more than 8)",
        ));
    }

    // Decide the expansion mode.
    let max_min = matches!(agg.func, AggFunc::Max | AggFunc::Min);
    if max_min {
        let ok = match agg.func {
            AggFunc::Max => op.is_lower_bound(),
            AggFunc::Min => op.is_upper_bound(),
            _ => unreachable!(),
        };
        if !ok {
            return Err(unsupported(
                "max/min aggregates support only the monotone comparison direction \
                 (max with >/>=, min with </<=)",
            ));
        }
        // Cases: unchanged literal, plus one case per vector where the
        // candidate value itself violates the bound.
        let mut out = vec![denial.clone()];
        for v in vectors {
            let Contribution::Candidate(val) = &v.contribution else {
                unreachable!("max/min vectors carry candidates")
            };
            let replacement = vec![Literal::Comp(val.clone(), op, threshold.clone())];
            out.push(assemble_case(denial, lit_idx, replacement, &[v], &outer, &[]));
        }
        return Ok(out);
    }

    // Counting/summing aggregates: threshold must be a compile-time
    // integer to shift.
    let k = match threshold {
        Term::Const(Value::Int(k)) => *k,
        _ if vectors.is_empty() => 0,
        _ => {
            return Err(unsupported(
                "aggregate threshold must be an integer constant to be shifted",
            ))
        }
    };

    let negative_sum = vectors.iter().any(|v| matches!(v.contribution, Contribution::Amount(a) if a < 0));
    let need_complements = op.is_upper_bound() || matches!(op, CompOp::Eq | CompOp::Ne) || negative_sum;
    if need_complements && !single_atom {
        return Err(unsupported(
            "non-monotone aggregate comparison over a multi-atom pattern",
        ));
    }

    // Enumerate subsets of vectors.
    let n = vectors.len();
    let mut out: Vec<Denial> = Vec::new();
    'subsets: for mask in 0u32..(1u32 << n) {
        let in_set: Vec<&Vector> = (0..n).filter(|b| mask & (1 << b) != 0).map(|b| &vectors[b]).collect();
        let out_set: Vec<&Vector> = (0..n).filter(|b| mask & (1 << b) == 0).map(|b| &vectors[b]).collect();

        // Shift for this subset.
        let mut shift: i64 = 0;
        let mut distinct: HashSet<&str> = HashSet::new();
        for v in &in_set {
            match &v.contribution {
                Contribution::One => shift += 1,
                Contribution::Amount(a) => shift += a,
                Contribution::DistinctParam(p) => {
                    if distinct.insert(p) {
                        shift += 1;
                    }
                }
                Contribution::Candidate(_) => unreachable!(),
            }
        }

        let kept = if shift == 0 {
            Literal::Agg(agg.clone(), op, threshold.clone())
        } else {
            Literal::Agg(agg.clone(), op, Term::int(k - shift))
        };

        if need_complements {
            // Exact partition: vectors outside the subset must provably
            // not contribute. Each complement picks one violated
            // condition; the product over out-vectors multiplies cases.
            let mut partial: Vec<Vec<Literal>> = vec![Vec::new()];
            for v in &out_set {
                let mut conds: Vec<(Term, Term)> = v
                    .bindings
                    .iter()
                    .filter(|(name, _)| outer.contains(*name))
                    .map(|(name, t)| (Term::var(name.clone()), t.clone()))
                    .collect();
                conds.extend(v.conditions.iter().cloned());
                if conds.is_empty() {
                    // This vector always contributes: subsets excluding it
                    // are empty cases.
                    continue 'subsets;
                }
                let mut next = Vec::new();
                for p in &partial {
                    for (a, b) in &conds {
                        let mut ext = p.clone();
                        ext.push(Literal::ne(a.clone(), b.clone()));
                        next.push(ext);
                    }
                }
                partial = next;
            }
            for extra in partial {
                out.push(assemble_case(
                    denial,
                    lit_idx,
                    vec![kept.clone()],
                    &in_set,
                    &outer,
                    &extra,
                ));
            }
        } else {
            out.push(assemble_case(denial, lit_idx, vec![kept], &in_set, &outer, &[]));
        }
    }
    Ok(out)
}

fn choices_get<'a>(
    choices: &'a [Vec<Option<&'a Atom>>],
    relevant: &[usize],
    atom_idx: usize,
    pick: usize,
) -> Option<&'a Atom> {
    let slot = relevant.iter().position(|&k| k == atom_idx)?;
    choices[slot][pick]
}

/// Unifies the selected pattern atoms with their additions, classifying
/// outcomes. Returns `Ok(None)` when the vector is statically infeasible
/// (it can never contribute), `Err(reason)` when the aggregate falls
/// outside the supported fragment.
#[allow(clippy::too_many_arguments)]
fn build_vector(
    agg: &Aggregate,
    selected: &[(usize, &Atom)],
    outer: &HashSet<String>,
    op: CompOp,
    _threshold: &Term,
    config: &SimpConfig,
    single_atom: bool,
    gen: &mut VarGen,
) -> Result<Option<Vector>, String> {
    let mut bindings: BTreeMap<String, Term> = BTreeMap::new();
    let mut conditions: Vec<(Term, Term)> = Vec::new();
    for (k, add) in selected {
        let pat = &agg.pattern[*k];
        if pat.args.len() != add.args.len() {
            return Ok(None);
        }
        for (t, u) in pat.args.iter().zip(&add.args) {
            match t {
                Term::Var(x) => match bindings.get(x) {
                    Some(prev) => conditions.push((prev.clone(), u.clone())),
                    None => {
                        bindings.insert(x.clone(), u.clone());
                    }
                },
                rigid => conditions.push((rigid.clone(), u.clone())),
            }
        }
    }
    // Resolve decidable conditions.
    let mut kept_conditions = Vec::new();
    for (a, b) in conditions {
        match (&a, &b) {
            (Term::Const(x), Term::Const(y)) => {
                if x != y {
                    return Ok(None);
                }
            }
            (Term::Param(p), Term::Param(q)) if p == q => {}
            _ => kept_conditions.push((a, b)),
        }
    }

    // Residual pattern atoms (everything not selected), grounded through
    // the bindings, locals renamed fresh.
    let selected_idx: HashSet<usize> = selected.iter().map(|(k, _)| *k).collect();
    let mut rename: BTreeMap<String, Term> = BTreeMap::new();
    let mut residuals = Vec::new();
    for (k, pat) in agg.pattern.iter().enumerate() {
        if selected_idx.contains(&k) {
            continue;
        }
        let args = pat
            .args
            .iter()
            .map(|t| match t {
                Term::Var(x) => {
                    if let Some(b) = bindings.get(x) {
                        b.clone()
                    } else if outer.contains(x) {
                        t.clone()
                    } else {
                        rename
                            .entry(x.clone())
                            .or_insert_with(|| Term::Var(gen.fresh(x)))
                            .clone()
                    }
                }
                rigid => rigid.clone(),
            })
            .collect();
        residuals.push(Atom::new(pat.pred.clone(), args));
    }

    // Contribution analysis.
    let resolve = |t: &Term| -> Term {
        match t {
            Term::Var(x) => bindings.get(x).cloned().unwrap_or_else(|| t.clone()),
            rigid => rigid.clone(),
        }
    };
    let all_fresh = selected
        .iter()
        .all(|(_, add)| config.fresh.addition_is_fresh(add));
    let contribution = match agg.func {
        AggFunc::Cnt | AggFunc::CntD if agg.term.is_none() => {
            if !single_atom {
                return Err(
                    "counting all bindings of a multi-atom pattern cannot be shifted \
                     by a constant"
                        .to_string(),
                );
            }
            if !all_fresh {
                return Err(
                    "count aggregate requires added tuples to be provably fresh \
                     (set a FreshSpec)"
                        .to_string(),
                );
            }
            Contribution::One
        }
        AggFunc::Cnt => {
            // Cnt with an explicit term counts bindings regardless of the
            // term: same as above.
            if !single_atom {
                return Err("multi-atom cnt cannot be shifted".to_string());
            }
            if !all_fresh {
                return Err("cnt requires fresh additions".to_string());
            }
            Contribution::One
        }
        AggFunc::CntD => {
            let t = agg.term.as_ref().expect("checked Some above");
            match resolve(t) {
                Term::Param(p) if is_fresh_param(&config.fresh, &p) => {
                    if !single_atom && !op.is_lower_bound() {
                        return Err(
                            "multi-atom cnt_d supports only >/>= comparisons".to_string()
                        );
                    }
                    Contribution::DistinctParam(p)
                }
                other => {
                    return Err(format!(
                        "cnt_d counted term resolves to {other}, which is not a \
                         provably fresh parameter"
                    ))
                }
            }
        }
        AggFunc::Sum => {
            if !single_atom {
                return Err("multi-atom sum cannot be shifted".to_string());
            }
            if !all_fresh {
                return Err("sum requires fresh additions".to_string());
            }
            let t = agg.term.as_ref().ok_or("sum requires a term")?;
            match resolve(t) {
                Term::Const(Value::Int(v)) => Contribution::Amount(v),
                other => {
                    return Err(format!(
                        "sum contribution {other} is not an integer constant"
                    ))
                }
            }
        }
        AggFunc::Max | AggFunc::Min => {
            if !single_atom {
                return Err("multi-atom max/min cannot be simplified".to_string());
            }
            let t = agg.term.as_ref().ok_or("max/min require a term")?;
            match resolve(t) {
                v @ (Term::Const(_) | Term::Param(_)) => Contribution::Candidate(v),
                other => {
                    return Err(format!(
                        "max/min candidate {other} is not rigid after unification"
                    ))
                }
            }
        }
    };

    Ok(Some(Vector {
        bindings,
        conditions: kept_conditions,
        residuals,
        contribution,
    }))
}

fn is_fresh_param(fresh: &crate::FreshSpec, p: &str) -> bool {
    match fresh {
        crate::FreshSpec::None => false,
        // AllFresh asserts tuple-level freshness, which does not imply any
        // particular column value is globally new.
        crate::FreshSpec::AllFresh => false,
        crate::FreshSpec::Params(ps) => ps.contains(p),
    }
}

/// Builds one case denial: the aggregate literal at `lit_idx` is replaced
/// by `replacement`, the in-vectors' conditions and residuals plus the
/// `complements` literals are added, and the merged group bindings are
/// applied as a substitution to the whole clause (complements included, so
/// exclusion conditions track the instantiated group variables).
fn assemble_case(
    denial: &Denial,
    lit_idx: usize,
    replacement: Vec<Literal>,
    in_set: &[impl std::borrow::Borrow<Vector>],
    outer: &HashSet<String>,
    complements: &[Literal],
) -> Denial {
    // Merge group bindings; conflicts become equality conditions between
    // the competing addition terms.
    let mut group: BTreeMap<String, Term> = BTreeMap::new();
    let mut extra: Vec<Literal> = Vec::new();
    for v in in_set {
        let v = v.borrow();
        for (name, t) in &v.bindings {
            if !outer.contains(name) {
                continue;
            }
            match group.get(name) {
                Some(prev) if prev != t => extra.push(Literal::eq(prev.clone(), t.clone())),
                Some(_) => {}
                None => {
                    group.insert(name.clone(), t.clone());
                }
            }
        }
        for (a, b) in &v.conditions {
            extra.push(Literal::eq(a.clone(), b.clone()));
        }
        for r in &v.residuals {
            extra.push(Literal::Pos(r.clone()));
        }
    }
    let mut body: Vec<Literal> = Vec::with_capacity(denial.body.len() + extra.len());
    for (j, l) in denial.body.iter().enumerate() {
        if j == lit_idx {
            body.extend(replacement.iter().cloned());
        } else {
            body.push(l.clone());
        }
    }
    body.extend(extra);
    body.extend(complements.iter().cloned());
    let mut s = Subst::new();
    for (name, t) in group {
        s.bind(&name, &t);
    }
    Denial::new(body.iter().map(|l| s.apply_literal(l)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FreshSpec;
    use xic_datalog::{parse_denial, parse_update};

    fn run(phi: &str, u: &str, fresh: FreshSpec) -> Result<Vec<String>, AfterError> {
        let cfg = SimpConfig { fresh };
        let out = after(
            &[parse_denial(phi).unwrap()],
            &parse_update(u).unwrap(),
            &cfg,
        )?;
        Ok(out.iter().map(std::string::ToString::to_string).collect())
    }

    #[test]
    fn example_4_after_shape() {
        // After reduction and variant dedup, Example 4 yields the original
        // plus the single instantiated case (the tautology is dropped and
        // the two symmetric cases collapse).
        let out = run("<- p(X,Y) & p(X,Z) & Y != Z", "{p($i,$t)}", FreshSpec::None).unwrap();
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().any(|s| s == "<- p(X, Y) & p(X, Z) & Y != Z"));
        assert!(out.iter().any(|s| s == "<- p($i, Y) & Y != $t"), "{out:?}");
    }

    #[test]
    fn unrelated_update_leaves_gamma() {
        let out = run("<- p(X)", "{q($a)}", FreshSpec::None).unwrap();
        assert_eq!(out, vec!["<- p(X)"]);
    }

    #[test]
    fn negated_atom_expansion() {
        // φ: every r-fact must be mirrored in s. Adding s($a) can only
        // help; adding r($a) threatens.
        let out = run("<- r(X) & not s(X)", "{s($a)}", FreshSpec::None).unwrap();
        // Cases: original with extra X != $a, i.e. the De Morgan dual.
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].contains("not s(X)"), "{out:?}");
        assert!(out[0].contains("X != $a"), "{out:?}");

        let out2 = run("<- r(X) & not s(X)", "{r($a)}", FreshSpec::None).unwrap();
        assert_eq!(out2.len(), 2, "{out2:?}");
        assert!(out2.iter().any(|s| s == "<- not s($a)"), "{out2:?}");
    }

    #[test]
    fn aggregate_simple_count_shift() {
        let out = run(
            "<- rev(Ir,_,_,_) & cntd(; sub(_,_,Ir,_)) > 4",
            "{sub($is,$ps,$ir,$t)}",
            FreshSpec::params(["is"]),
        )
        .unwrap();
        // Lower-bound comparisons need no complements: the base case is the
        // unchanged constraint, plus the shifted in-case.
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(
            out.iter()
                .any(|s| s.contains("cntd(; sub(") && s.contains("> 3") && s.contains("$ir")),
            "{out:?}"
        );
        assert!(out.iter().any(|s| s.contains("> 4")), "{out:?}");
    }

    #[test]
    fn aggregate_count_requires_freshness() {
        let err = run(
            "<- rev(Ir,_,_,_) & cnt(; sub(_,_,Ir,_)) > 4",
            "{sub($is,$ps,$ir,$t)}",
            FreshSpec::None,
        )
        .unwrap_err();
        assert!(err.reason.contains("fresh"), "{err}");
    }

    #[test]
    fn aggregate_multi_atom_cntd() {
        // Example 2's second aggregate: distinct submissions per reviewer
        // name across tracks.
        let out = run(
            "<- cntd(Is; rev(Ir2,_,_,R), sub(Is,_,Ir2,_)) > 10 & t(R)",
            "{sub($is,$ps,$ir,$t)}",
            FreshSpec::params(["is"]),
        )
        .unwrap();
        assert_eq!(out.len(), 2, "{out:?}");
        // The in-case: threshold drops to 9, residual rev atom appears.
        let in_case = out
            .iter()
            .find(|s| s.contains("> 9"))
            .unwrap_or_else(|| panic!("no shifted case in {out:?}"));
        assert!(in_case.contains("rev($ir,"), "{in_case}");
    }

    #[test]
    fn aggregate_multi_atom_upper_bound_unsupported() {
        let err = run(
            "<- cntd(Is; rev(Ir2,_,_,R), sub(Is,_,Ir2,_)) < 2 & t(R)",
            "{sub($is,$ps,$ir,$t)}",
            FreshSpec::params(["is"]),
        )
        .unwrap_err();
        assert!(
            err.reason.contains("multi-atom") || err.reason.contains(">/>="),
            "{err}"
        );
    }

    #[test]
    fn aggregate_upper_bound_single_atom_partition() {
        // cnt < 2: inserting can only reduce slack; exact partition keeps
        // both the in and out cases.
        let out = run(
            "<- r(G) & cnt(; s(_, G)) < 2",
            "{s($i, $g)}",
            FreshSpec::params(["i"]),
        )
        .unwrap();
        assert!(out.iter().any(|s| s.contains("< 1")), "{out:?}");
        assert!(
            out.iter().any(|s| s.contains("< 2") && s.contains("!=")),
            "{out:?}"
        );
    }

    #[test]
    fn sum_shift() {
        let out = run(
            "<- acct(A) & sum(V; txn(_, A, V)) > 100",
            "{txn($t, $a, 30)}",
            FreshSpec::params(["t"]),
        )
        .unwrap();
        assert!(out.iter().any(|s| s.contains("> 70")), "{out:?}");
    }

    #[test]
    fn sum_with_param_amount_unsupported() {
        let err = run(
            "<- acct(A) & sum(V; txn(_, A, V)) > 100",
            "{txn($t, $a, $v)}",
            FreshSpec::params(["t"]),
        )
        .unwrap_err();
        assert!(err.reason.contains("integer constant"), "{err}");
    }

    #[test]
    fn max_candidate_case() {
        let out = run(
            "<- lim(G) & max(V; m(_, G, V)) > 50",
            "{m($i, $g, $v)}",
            FreshSpec::None,
        )
        .unwrap();
        // One case compares the new candidate value directly.
        assert!(out.iter().any(|s| s.contains("$v > 50")), "{out:?}");
        // The base case is the unchanged constraint (anonymous variables
        // render with their generated names).
        assert!(
            out.iter().any(|s| s.contains("max(V; m(") && s.contains("> 50") && s.contains("lim(G)")),
            "{out:?}"
        );
    }

    #[test]
    fn max_wrong_direction_unsupported() {
        let err = run(
            "<- lim(G) & max(V; m(_, G, V)) < 50",
            "{m($i, $g, $v)}",
            FreshSpec::None,
        )
        .unwrap_err();
        assert!(err.reason.contains("monotone"), "{err}");
    }

    #[test]
    fn min_candidate_case() {
        let out = run(
            "<- lim(G) & min(V; m(_, G, V)) < 5",
            "{m($i, $g, $v)}",
            FreshSpec::None,
        )
        .unwrap();
        assert!(out.iter().any(|s| s.contains("$v < 5")), "{out:?}");
    }

    #[test]
    fn two_additions_cumulative_shift() {
        let out = run(
            "<- r(G) & cnt(; s(_, G)) > 3",
            "{s($i1, $g1), s($i2, $g2)}",
            FreshSpec::params(["i1", "i2"]),
        )
        .unwrap();
        // Subset with both additions in the same group shifts by 2 and
        // requires the two group parameters to coincide.
        assert!(
            out.iter()
                .any(|s| s.contains("> 1") && s.contains("$g1 = $g2")),
            "{out:?}"
        );
        assert!(out.iter().any(|s| s.contains("> 2")), "{out:?}");
    }
}

//! Automatic generation of trusted hypotheses Δ from an update pattern.
//!
//! In Example 6 the fact that `is` and `ia` are *new* node identifiers is
//! expressed as extra hypotheses: `← sub(is,_,_,_)`, `← auts(_,_,is,_)`,
//! `← auts(ia,_,_,_)`. This module derives exactly that shape from any
//! update pattern: for every parameter declared fresh,
//!
//! * if it occurs in the **id column** (first argument) of an added atom on
//!   predicate `p`, the present state contains no `p` tuple with that id;
//! * if it occurs in the **parent column** (third argument) of an added
//!   atom on `p`, the present state contains no `p` tuple with that parent
//!   (the parent is itself a new node, so it has no pre-existing children).
//!
//! Both follow from node-id freshness in the XML store, where identifiers
//! are allocated from a monotone counter and never reused.

use std::collections::BTreeSet;
use xic_datalog::{Atom, Denial, Literal, Term, Update};

/// Column layout constants of the XML relational mapping (Section 4.1).
const ID_COL: usize = 0;
/// Parent-id column in the XML relational mapping.
const PARENT_COL: usize = 2;

/// Generates freshness hypotheses for `update`, where `fresh_params` names
/// the parameters standing for newly allocated node ids.
pub fn freshness_hypotheses(update: &Update, fresh_params: &BTreeSet<String>) -> Vec<Denial> {
    let mut out: Vec<Denial> = Vec::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut push = |pred: &str, arity: usize, col: usize, param: &str| {
        let args: Vec<Term> = (0..arity)
            .map(|j| {
                if j == col {
                    Term::param(param)
                } else {
                    Term::var(format!("_F{j}"))
                }
            })
            .collect();
        let d = Denial::new(vec![Literal::Pos(Atom::new(pred, args))]);
        if seen.insert(d.canonical_key()) {
            out.push(d);
        }
    };
    for a in &update.additions {
        for col in [ID_COL, PARENT_COL] {
            if let Some(Term::Param(p)) = a.args.get(col) {
                if fresh_params.contains(p) {
                    push(&a.pred, a.args.len(), col, p);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xic_datalog::parse_update;

    #[test]
    fn example_6_hypotheses() {
        let u = parse_update("{sub($is, $ps, $ir, $t), auts($ia, $pa, $is, $n)}").unwrap();
        let fresh: BTreeSet<String> = ["is", "ia"].iter().map(|s| (*s).to_string()).collect();
        let hs = freshness_hypotheses(&u, &fresh);
        let strs: Vec<String> = hs.iter().map(std::string::ToString::to_string).collect();
        // sub id fresh, auts id fresh, auts parent fresh. $ir is not fresh
        // (it is the pre-existing target reviewer), so no sub-parent
        // hypothesis is produced.
        assert_eq!(hs.len(), 3, "{strs:?}");
        assert!(strs.iter().any(|s| s.starts_with("<- sub($is")), "{strs:?}");
        assert!(strs.iter().any(|s| s.starts_with("<- auts($ia")), "{strs:?}");
        assert!(
            strs.iter().any(|s| s.contains("auts(") && s.contains("$is)")
                || s.contains("auts(_F0, _F1, $is")),
            "{strs:?}"
        );
    }

    #[test]
    fn no_fresh_params_no_hypotheses() {
        let u = parse_update("{p($a, $b, $c, $d)}").unwrap();
        assert!(freshness_hypotheses(&u, &BTreeSet::new()).is_empty());
    }

    #[test]
    fn short_atoms_without_parent_column() {
        let u = parse_update("{p($a)}").unwrap();
        let fresh: BTreeSet<String> = std::iter::once("a".to_string()).collect();
        let hs = freshness_hypotheses(&u, &fresh);
        assert_eq!(hs.len(), 1);
        assert_eq!(hs[0].to_string(), "<- p($a)");
    }
}

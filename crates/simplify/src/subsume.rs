//! θ-subsumption between denials, with mild semantic entailment on
//! comparison and aggregate thresholds.
//!
//! A denial φ *subsumes* ψ when there is a substitution θ over φ's
//! variables such that every literal of φθ is entailed by some literal of
//! ψ. Since denials are negative clauses, this means ψ's body is at least
//! as constrained as φ's: whenever φ holds (its body is unsatisfiable), ψ
//! holds too, so ψ is redundant in any set containing φ. This unit-proof
//! restriction of the resolution-based redundancy check of \[16\] suffices
//! for every example in the paper and keeps `Optimize` trivially
//! terminating.

use std::collections::HashSet;
use xic_datalog::{Aggregate, Atom, CompOp, Denial, Literal, Subst, Term, Value, VarGen};

/// Returns true if `phi` θ-subsumes `psi`, i.e. some substitution of
/// `phi`'s variables maps each of its literals to a literal of `psi` (or
/// one entailed by it).
///
/// `phi`'s variables are renamed apart internally, so the two clauses may
/// share variable names.
pub fn subsumes(phi: &Denial, psi: &Denial) -> bool {
    let mut gen = VarGen::new();
    // Avoid collisions with psi's variables.
    for v in psi.vars() {
        gen.fresh(&v);
    }
    let phi = phi.rename_apart(&mut gen);
    let m = Matcher {
        pattern_vars: phi.vars().into_iter().collect(),
    };
    let mut s = Subst::new();
    m.try_match(&phi.body, 0, &psi.body, &mut s)
}

/// One-sided matcher: only variables of the pattern clause may be bound.
/// Target variables are rigid symbols — binding them would wrongly let
/// `← p(X,X)` subsume `← p(A,B)`.
struct Matcher {
    pattern_vars: HashSet<String>,
}

impl Matcher {
    fn try_match(&self, pattern: &[Literal], idx: usize, target: &[Literal], s: &mut Subst) -> bool {
        if idx == pattern.len() {
            return true;
        }
        for t in target {
            // A comparison literal can entail the pattern under several
            // distinct substitutions (direct/flipped orientation, with or
            // without threshold weakening); each is a separate choice
            // point for the backtracking search.
            for variant in 0..Self::VARIANTS {
                let saved = s.clone();
                if self.literal_entails(t, &pattern[idx], s, variant)
                    && self.try_match(pattern, idx + 1, target, s)
                {
                    return true;
                }
                *s = saved;
                if !matches!(pattern[idx], Literal::Comp(..)) {
                    break; // non-comparison literals have one variant
                }
            }
        }
        false
    }

    fn match_term(&self, pattern: &Term, target: &Term, s: &mut Subst) -> bool {
        let rp = s.resolve(pattern);
        match &rp {
            Term::Var(x) if self.pattern_vars.contains(x) => {
                s.bind(x, target);
                true
            }
            other => other == target,
        }
    }

    fn match_atom(&self, pattern: &Atom, target: &Atom, s: &mut Subst) -> bool {
        pattern.pred == target.pred
            && pattern.args.len() == target.args.len()
            && pattern
                .args
                .iter()
                .zip(&target.args)
                .all(|(p, t)| self.match_term(p, t, s))
    }

    /// Number of distinct entailment variants tried per comparison literal.
    const VARIANTS: usize = 4;

    /// True if target literal `t` entails pattern literal `p·θ` for some
    /// extension of `s`, using the selected match `variant` for comparison
    /// literals (0: direct, 1: flipped, 2/3: same with threshold
    /// weakening). Non-comparison literals ignore the variant beyond 0.
    fn literal_entails(&self, t: &Literal, p: &Literal, s: &mut Subst, variant: usize) -> bool {
        match (p, t) {
            (Literal::Pos(pa), Literal::Pos(ta)) | (Literal::Neg(pa), Literal::Neg(ta)) => {
                self.match_atom(pa, ta, s)
            }
            (Literal::Comp(pl, pop, pr), Literal::Comp(tl, top, tr)) => {
                let weaken = variant >= 2;
                if variant % 2 == 0 {
                    self.comp_entails(*top, tl, tr, *pop, pl, pr, s, weaken)
                } else {
                    self.comp_entails(top.flip(), tr, tl, *pop, pl, pr, s, weaken)
                }
            }
            (Literal::Agg(pagg, pop, pt), Literal::Agg(tagg, top, tt)) => {
                self.agg_entails(tagg, *top, tt, pagg, *pop, pt, s)
            }
            _ => false,
        }
    }

    /// True if `a top b` entails `(pl pop pr)·θ` where θ extends `s`.
    #[allow(clippy::too_many_arguments)]
    fn comp_entails(
        &self,
        top: CompOp,
        a: &Term,
        b: &Term,
        pop: CompOp,
        pl: &Term,
        pr: &Term,
        s: &mut Subst,
        weaken: bool,
    ) -> bool {
        if !weaken {
            // Syntactic matching of both sides.
            return self.match_term(pl, a, s)
                && self.match_term(pr, b, s)
                && op_implies(top, pop, None);
        }
        // Threshold weakening on constant right-hand sides:
        // `x top c'` entails `x pop c` for suitable c, c'.
        if let (Term::Const(cp), Term::Const(ct)) = (&s.resolve(pr), b) {
            let (cp, ct) = (cp.clone(), ct.clone());
            return self.match_term(pl, a, s) && op_implies(top, pop, Some((&ct, &cp)));
        }
        false
    }

    /// True if target aggregate literal entails pattern aggregate literal:
    /// same function, patterns equal as multisets under θ, threshold
    /// weakened at most.
    #[allow(clippy::too_many_arguments)]
    fn agg_entails(
        &self,
        tagg: &Aggregate,
        top: CompOp,
        tt: &Term,
        pagg: &Aggregate,
        pop: CompOp,
        pt: &Term,
        s: &mut Subst,
    ) -> bool {
        if pagg.func != tagg.func || pagg.pattern.len() != tagg.pattern.len() {
            return false;
        }
        match (&pagg.term, &tagg.term) {
            (None, None) => {}
            (Some(p), Some(t)) => {
                if !self.match_term(p, t, s) {
                    return false;
                }
            }
            _ => return false,
        }
        let mut used = vec![false; tagg.pattern.len()];
        if !self.match_pattern(&pagg.pattern, 0, &tagg.pattern, &mut used, s) {
            return false;
        }
        // Thresholds: the aggregate values coincide (same pattern), so the
        // entailment table applies with identical left-hand sides.
        let rpt = s.resolve(pt);
        if rpt == *tt {
            return op_implies(top, pop, None);
        }
        if let (Term::Const(cp), Term::Const(ct)) = (&rpt, tt) {
            return op_implies(top, pop, Some((ct, cp)));
        }
        self.match_term(pt, tt, s) && op_implies(top, pop, None)
    }

    /// Injective multiset matching of pattern atoms onto target atoms.
    fn match_pattern(
        &self,
        pattern: &[Atom],
        idx: usize,
        target: &[Atom],
        used: &mut Vec<bool>,
        s: &mut Subst,
    ) -> bool {
        if idx == pattern.len() {
            return true;
        }
        for i in 0..target.len() {
            if used[i] {
                continue;
            }
            let saved = s.clone();
            used[i] = true;
            if self.match_atom(&pattern[idx], &target[i], s)
                && self.match_pattern(pattern, idx + 1, target, used, s)
            {
                return true;
            }
            used[i] = false;
            *s = saved;
        }
        false
    }
}

/// Does `x top c'` imply `x pop c`? With `consts = None`, requires the
/// right-hand sides to be syntactically equal (already matched); with
/// `Some((c', c))`, applies interval reasoning valid over any totally
/// ordered domain (no integer-adjacency tricks, so it is sound for strings
/// too).
fn op_implies(top: CompOp, pop: CompOp, consts: Option<(&Value, &Value)>) -> bool {
    use CompOp::{Eq, Ge, Gt, Le, Lt, Ne};
    match consts {
        None => {
            matches!(
                (top, pop),
                (Eq, Eq)
                    | (Ne, Ne)
                    | (Lt, Lt)
                    | (Le, Le)
                    | (Gt, Gt)
                    | (Ge, Ge)
                    | (Lt, Le)
                    | (Gt, Ge)
                    | (Lt, Ne)
                    | (Gt, Ne)
                    | (Eq, Le)
                    | (Eq, Ge)
            )
        }
        Some((ct, cp)) => match (top, pop) {
            // x = c' ⟹ x pop c  iff  c' pop c.
            (Eq, p) => p.eval(ct, cp),
            // Lower bounds.
            (Gt, Gt) | (Gt, Ge) | (Ge, Ge) => cp <= ct,
            (Ge, Gt) => cp < ct,
            // Upper bounds.
            (Lt, Lt) | (Lt, Le) | (Le, Le) => cp >= ct,
            (Le, Lt) => cp > ct,
            _ => false,
        },
    }
}

/// True if the two denials are variants of each other (mutual
/// θ-subsumption). Exact, unlike
/// [`Denial::canonical_key`](xic_datalog::Denial::canonical_key) which can
/// report false negatives when literal sorting is perturbed by variable
/// names.
pub fn variants(a: &Denial, b: &Denial) -> bool {
    subsumes(a, b) && subsumes(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xic_datalog::parse_denial;

    fn sub(a: &str, b: &str) -> bool {
        subsumes(&parse_denial(a).unwrap(), &parse_denial(b).unwrap())
    }

    #[test]
    fn identity_and_renaming() {
        assert!(sub("<- p(X, Y)", "<- p(A, B)"));
        assert!(sub("<- p(X, Y)", "<- p(X, Y)"));
    }

    #[test]
    fn instance_subsumed_by_general() {
        assert!(sub("<- p(X, Y)", "<- p(1, 2)"));
        assert!(!sub("<- p(1, 2)", "<- p(X, Y)"));
    }

    #[test]
    fn subset_body_subsumes_superset() {
        assert!(sub("<- p(X)", "<- p(3) & q(3)"));
        assert!(!sub("<- p(X) & q(X)", "<- p(3)"));
    }

    #[test]
    fn shared_variables_constrain() {
        assert!(sub("<- p(X, X)", "<- p(A, A)"));
        assert!(!sub("<- p(X, X)", "<- p(A, B)"));
        assert!(sub("<- p(X, Y)", "<- p(A, A)"));
    }

    #[test]
    fn freshness_hypothesis_subsumes_expanded_denial() {
        // The Example 6 removal: Δ's `<- sub($is,_,_,_)` kills any denial
        // still touching the database sub relation with the fresh id.
        assert!(sub(
            "<- sub($is, _, _, _)",
            "<- rev(Ir,_,_,$n) & sub($is,_,Ir,_)"
        ));
        assert!(!sub(
            "<- sub($other, _, _, _)",
            "<- rev(Ir,_,_,$n) & sub($is,_,Ir,_)"
        ));
    }

    #[test]
    fn params_are_rigid() {
        assert!(!sub("<- p($a)", "<- p($b)"));
        assert!(!sub("<- p($a)", "<- p(1)"));
        assert!(sub("<- p(X)", "<- p($b)"));
    }

    #[test]
    fn original_does_not_subsume_instantiated_disequality() {
        // Regression for Example 4/5: the original uniqueness constraint
        // must NOT subsume the instantiated case `<- p($i,Y) & Y != $t`,
        // because mapping both p-atoms to the same target atom forces the
        // disequality into the reflexive (false) form.
        assert!(!sub(
            "<- p(X, Y) & p(X, Z) & Y != Z",
            "<- p($i, Y) & Y != $t"
        ));
    }

    #[test]
    fn comparison_orientation() {
        assert!(sub("<- X != Y & p(X, Y)", "<- A != B & p(A, B)"));
        assert!(sub("<- X != Y & p(X, Y)", "<- B != A & p(A, B)"));
        assert!(sub("<- X < Y & p(X, Y)", "<- B > A & p(A, B)"));
    }

    #[test]
    fn comparison_strengthening() {
        assert!(sub("<- p(X) & X <= 5", "<- p(Y) & Y < 5"));
        assert!(!sub("<- p(X) & X < 5", "<- p(Y) & Y <= 5"));
        assert!(sub("<- p(X) & X != 5", "<- p(Y) & Y < 5"));
        assert!(sub("<- p(X) & X > 3", "<- p(Y) & Y > 7"));
        assert!(!sub("<- p(X) & X > 7", "<- p(Y) & Y > 3"));
        assert!(sub("<- p(X) & X >= 4", "<- p(Y) & Y = 9"));
    }

    #[test]
    fn negated_atoms_match_only_negated() {
        assert!(sub("<- not p(X) & q(X)", "<- not p(3) & q(3)"));
        assert!(!sub("<- not p(X) & q(X)", "<- p(3) & q(3)"));
    }

    #[test]
    fn aggregate_threshold_weakening() {
        // cnt > 3 is implied by cnt > 4: target with > 4 entails pattern > 3.
        assert!(sub(
            "<- r(Ir) & cntd(; sub(_, Ir)) > 3",
            "<- r(J) & cntd(; sub(_, J)) > 4"
        ));
        assert!(!sub(
            "<- r(Ir) & cntd(; sub(_, Ir)) > 4",
            "<- r(J) & cntd(; sub(_, J)) > 3"
        ));
        // Different aggregate functions never match.
        assert!(!sub(
            "<- cnt(; s(_, R)) > 3 & r(R)",
            "<- cntd(; s(_, R)) > 3 & r(R)"
        ));
    }

    #[test]
    fn aggregate_pattern_multiset_matching() {
        assert!(sub(
            "<- cntd(S; a(S, R), b(R)) > 2",
            "<- cntd(T; b(Q), a(T, Q)) > 2"
        ));
        assert!(!sub(
            "<- cntd(S; a(S, R), b(R)) > 2",
            "<- cntd(T; a(T, Q), c(Q)) > 2"
        ));
    }

    #[test]
    fn empty_body_subsumes_everything() {
        assert!(sub("<- true", "<- p(X)"));
        assert!(!sub("<- p(X)", "<- true"));
    }

    #[test]
    fn two_pattern_literals_one_target() {
        // θ-subsumption does not require injectivity on plain literals.
        assert!(sub("<- p(X, Y) & p(Y, X)", "<- p(A, A)"));
    }

    #[test]
    fn variants_detects_renamings_with_different_sort_order() {
        let a = parse_denial("<- aut(_,_,Ip,$n) & aut(_,_,Ip,R) & rev($ir,_,_,R)").unwrap();
        let b = parse_denial("<- rev($ir,_,_,Z) & aut(_,_,Q,Z) & aut(_,_,Q,$n)").unwrap();
        assert!(variants(&a, &b));
        let c = parse_denial("<- rev($ir,_,_,Z) & aut(_,_,Q,Z) & aut(_,_,Q,Z)").unwrap();
        assert!(!variants(&a, &c));
    }
}

//! The `Optimize_Δ` operator: redundancy elimination against trusted
//! hypotheses.
//!
//! Given a set of denials (typically the output of
//! [`after`](crate::after::after)) and a set Δ of denials known to hold in
//! the present state (the original constraints plus, e.g., node-id
//! freshness hypotheses), `optimize`:
//!
//! 1. normalizes every denial with [`reduce`],
//!    discarding trivially satisfied ones;
//! 2. de-duplicates variants;
//! 3. removes every denial subsumed by a hypothesis in Δ (it is redundant
//!    in any state consistent with Δ);
//! 4. removes every denial subsumed by another kept denial.
//!
//! Each step only ever shrinks clauses or the clause set, so the procedure
//! terminates trivially — the restriction-to-unit-proofs counterpart of
//! the size-restricted resolution proofs of \[16\].

use crate::reduce::{reduce, Reduced};
use crate::subsume::subsumes;
use std::collections::HashSet;
use xic_datalog::Denial;

/// Runs `Optimize_Δ` over `denials`. The hypotheses `delta` are assumed to
/// hold in the state where the result will be evaluated.
pub fn optimize(denials: Vec<Denial>, delta: &[Denial]) -> Vec<Denial> {
    // Phase 1 + 2: reduce and de-duplicate.
    let mut list: Vec<Denial> = Vec::with_capacity(denials.len());
    let mut seen: HashSet<String> = HashSet::new();
    for d in denials {
        if let Reduced::Denial(r) = reduce(&d) {
            if seen.insert(r.canonical_key()) {
                list.push(r);
            }
        }
    }

    // Phase 3: hypothesis subsumption. Hypotheses are reduced first so
    // that, e.g., `← q(X,X,Y) ∧ X=X` still subsumes its own normal form.
    let before_subsumption = list.len();
    let delta: Vec<Denial> = delta
        .iter()
        .filter_map(|h| reduce(h).into_denial())
        .collect();
    list.retain(|d| !delta.iter().any(|h| subsumes(h, d)));

    // Phase 4: internal subsumption. Shorter clauses are stronger
    // subsumers, so process in ascending body length; a clause is dropped
    // if an already-kept clause subsumes it.
    list.sort_by_key(|d| d.body.len());
    let mut kept: Vec<Denial> = Vec::with_capacity(list.len());
    for d in list {
        if !kept.iter().any(|k| subsumes(k, &d)) {
            kept.push(d);
        }
    }
    xic_obs::add(
        xic_obs::Counter::DenialsSubsumed,
        (before_subsumption - kept.len()) as u64,
    );
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use xic_datalog::{parse_denial, parse_denials};

    fn opt(input: &str, delta: &str) -> Vec<String> {
        let ds = parse_denials(input).unwrap();
        let hs = parse_denials(delta).unwrap();
        optimize(ds, &hs)
            .iter()
            .map(std::string::ToString::to_string)
            .collect()
    }

    #[test]
    fn removes_copies_of_hypotheses() {
        let out = opt("<- p(X, Y) & p(X, Z) & Y != Z", "<- p(A, B) & p(A, C) & B != C");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn removes_tautologies_and_duplicates() {
        let out = opt(
            "<- p(X) & 1 = 2. <- p(X) & q(X). <- p(A) & q(A).",
            "",
        );
        assert_eq!(out, vec!["<- p(X) & q(X)"]);
    }

    #[test]
    fn internal_subsumption_keeps_strongest() {
        let out = opt("<- p(X) & q(X). <- p(Y).", "");
        assert_eq!(out, vec!["<- p(Y)"]);
    }

    #[test]
    fn freshness_hypothesis_removal() {
        let ds = parse_denials("<- rev(Ir,_,_,$n) & sub($is,_,Ir,_). <- rev($ir,_,_,$n).")
            .unwrap();
        let hs = parse_denials("<- sub($is,_,_,_)").unwrap();
        let out = optimize(ds, &hs);
        assert_eq!(out.len(), 1, "{out:?}");
        let want = parse_denial("<- rev($ir,_,_,$n)").unwrap();
        assert!(crate::subsume::variants(&out[0], &want), "{}", out[0]);
    }

    #[test]
    fn empty_body_denial_dominates() {
        let out = opt("<- true. <- p(X).", "");
        assert_eq!(out, vec!["<- true"]);
    }

    #[test]
    fn keeps_unrelated_denials() {
        let out = opt("<- p(X). <- q(X).", "<- r(X)");
        assert_eq!(out.len(), 2);
    }
}

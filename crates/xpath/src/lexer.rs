//! Tokenizer shared by the XPath parser (and reused by `xic-xquery`).

use std::fmt;

/// A token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Name or keyword (axis names, `and`, `div`, function names, …).
    Name(String),
    /// `$name`
    Var(String),
    /// Numeric literal.
    Number(f64),
    /// String literal (quotes removed).
    Literal(String),
    /// `/`
    Slash,
    /// `//`
    DoubleSlash,
    /// `::`
    DoubleColon,
    /// `..`
    DotDot,
    /// `.`
    Dot,
    /// `@`
    At,
    /// `*`
    Star,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `|`
    Pipe,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `:=` (XQuery let binding)
    Assign,
    /// `{` (XQuery constructors)
    LBrace,
    /// `}`
    RBrace,
    /// `;` (XQuery separators in some dialects)
    Semi,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Name(n) => write!(f, "{n}"),
            Tok::Var(v) => write!(f, "${v}"),
            Tok::Number(n) => write!(f, "{n}"),
            Tok::Literal(s) => write!(f, "{s:?}"),
            Tok::Slash => write!(f, "/"),
            Tok::DoubleSlash => write!(f, "//"),
            Tok::DoubleColon => write!(f, "::"),
            Tok::DotDot => write!(f, ".."),
            Tok::Dot => write!(f, "."),
            Tok::At => write!(f, "@"),
            Tok::Star => write!(f, "*"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::Comma => write!(f, ","),
            Tok::Pipe => write!(f, "|"),
            Tok::Eq => write!(f, "="),
            Tok::Ne => write!(f, "!="),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Assign => write!(f, ":="),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::Semi => write!(f, ";"),
        }
    }
}

/// Tokenizes an XPath/XQuery-core expression. Returns tokens with their
/// byte offsets.
pub fn tokenize(input: &str) -> Result<Vec<(usize, Tok)>, String> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        let tok = match c {
            '/' => {
                if bytes.get(i + 1) == Some(&b'/') {
                    i += 2;
                    Tok::DoubleSlash
                } else {
                    i += 1;
                    Tok::Slash
                }
            }
            ':' => {
                if bytes.get(i + 1) == Some(&b':') {
                    i += 2;
                    Tok::DoubleColon
                } else if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    Tok::Assign
                } else {
                    return Err(format!("stray ':' at byte {i}"));
                }
            }
            '.' => {
                if bytes.get(i + 1) == Some(&b'.') {
                    i += 2;
                    Tok::DotDot
                } else if bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
                    // .5 style number
                    let (n, len) = lex_number(&input[i..])?;
                    i += len;
                    Tok::Number(n)
                } else {
                    i += 1;
                    Tok::Dot
                }
            }
            '@' => {
                i += 1;
                Tok::At
            }
            '*' => {
                i += 1;
                Tok::Star
            }
            '(' => {
                // XQuery comment `(: … :)`.
                if bytes.get(i + 1) == Some(&b':') {
                    let rest = &input[i + 2..];
                    let close = rest.find(":)").ok_or("unterminated (: comment")?;
                    i += 2 + close + 2;
                    continue;
                }
                i += 1;
                Tok::LParen
            }
            ')' => {
                i += 1;
                Tok::RParen
            }
            '[' => {
                i += 1;
                Tok::LBracket
            }
            ']' => {
                i += 1;
                Tok::RBracket
            }
            ',' => {
                i += 1;
                Tok::Comma
            }
            '|' => {
                i += 1;
                Tok::Pipe
            }
            '{' => {
                i += 1;
                Tok::LBrace
            }
            '}' => {
                i += 1;
                Tok::RBrace
            }
            ';' => {
                i += 1;
                Tok::Semi
            }
            '=' => {
                i += 1;
                Tok::Eq
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    Tok::Ne
                } else {
                    return Err(format!("stray '!' at byte {i}"));
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    Tok::Le
                } else {
                    i += 1;
                    Tok::Lt
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    Tok::Ge
                } else {
                    i += 1;
                    Tok::Gt
                }
            }
            '+' => {
                i += 1;
                Tok::Plus
            }
            '-' => {
                i += 1;
                Tok::Minus
            }
            '$' => {
                i += 1;
                let (name, len) = lex_name(&input[i..])
                    .ok_or_else(|| format!("expected variable name at byte {i}"))?;
                i += len;
                Tok::Var(name)
            }
            '"' | '\'' => {
                let quote = c;
                let rest = &input[i + 1..];
                let end = rest
                    .find(quote)
                    .ok_or_else(|| format!("unterminated string literal at byte {i}"))?;
                let lit = rest[..end].to_string();
                i += 1 + end + 1;
                Tok::Literal(lit)
            }
            d if d.is_ascii_digit() => {
                let (n, len) = lex_number(&input[i..])?;
                i += len;
                Tok::Number(n)
            }
            a if a.is_alphabetic() || a == '_' => {
                let (name, len) = lex_name(&input[i..]).expect("starts with name char");
                i += len;
                Tok::Name(name)
            }
            other => return Err(format!("unexpected character {other:?} at byte {i}")),
        };
        out.push((start, tok));
    }
    Ok(out)
}

fn lex_name(s: &str) -> Option<(String, usize)> {
    let mut end = 0;
    for (i, c) in s.char_indices() {
        let ok = if i == 0 {
            c.is_alphabetic() || c == '_'
        } else {
            c.is_alphanumeric() || matches!(c, '_' | '-' | '.')
        };
        if ok {
            end = i + c.len_utf8();
        } else {
            break;
        }
    }
    // Names must not swallow a trailing '.' or '-' followed by non-name
    // context… XPath names may contain '-' and '.'; a name followed by `..`
    // is ambiguous but does not occur in our inputs. Trim a trailing dot so
    // `name.` lexes as name + dot.
    let mut name = &s[..end];
    while name.ends_with('.') {
        name = &name[..name.len() - 1];
    }
    if name.is_empty() {
        None
    } else {
        Some((name.to_string(), name.len()))
    }
}

fn lex_number(s: &str) -> Result<(f64, usize), String> {
    let mut end = 0;
    let mut seen_dot = false;
    for (i, c) in s.char_indices() {
        if c.is_ascii_digit() {
            end = i + 1;
        } else if c == '.' && !seen_dot && s[i + 1..].starts_with(|d: char| d.is_ascii_digit()) {
            seen_dot = true;
            end = i + 1;
        } else {
            break;
        }
    }
    s[..end]
        .parse::<f64>()
        .map(|n| (n, end))
        .map_err(|e| format!("bad number: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Tok> {
        tokenize(s).unwrap().into_iter().map(|(_, t)| t).collect()
    }

    #[test]
    fn basic_path() {
        assert_eq!(
            toks("//rev/name/text()"),
            vec![
                Tok::DoubleSlash,
                Tok::Name("rev".into()),
                Tok::Slash,
                Tok::Name("name".into()),
                Tok::Slash,
                Tok::Name("text".into()),
                Tok::LParen,
                Tok::RParen,
            ]
        );
    }

    #[test]
    fn predicates_and_ops() {
        assert_eq!(
            toks("a[position() >= 2 and @x != 'y']"),
            vec![
                Tok::Name("a".into()),
                Tok::LBracket,
                Tok::Name("position".into()),
                Tok::LParen,
                Tok::RParen,
                Tok::Ge,
                Tok::Number(2.0),
                Tok::Name("and".into()),
                Tok::At,
                Tok::Name("x".into()),
                Tok::Ne,
                Tok::Literal("y".into()),
                Tok::RBracket,
            ]
        );
    }

    #[test]
    fn variables_and_assign() {
        assert_eq!(
            toks("$x := $y"),
            vec![Tok::Var("x".into()), Tok::Assign, Tok::Var("y".into())]
        );
    }

    #[test]
    fn dotdot_and_numbers() {
        assert_eq!(toks(".."), vec![Tok::DotDot]);
        assert_eq!(toks("3.25"), vec![Tok::Number(3.25)]);
        assert_eq!(toks(".5"), vec![Tok::Number(0.5)]);
        assert_eq!(
            toks("1..2"),
            vec![Tok::Number(1.0), Tok::DotDot, Tok::Number(2.0)]
        );
    }

    #[test]
    fn axis_names_with_dashes() {
        assert_eq!(
            toks("preceding-sibling::a"),
            vec![
                Tok::Name("preceding-sibling".into()),
                Tok::DoubleColon,
                Tok::Name("a".into()),
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(toks("a (: hi :) / b"), vec![
            Tok::Name("a".into()),
            Tok::Slash,
            Tok::Name("b".into())
        ]);
    }

    #[test]
    fn errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("#").is_err());
        assert!(tokenize("(: unterminated").is_err());
    }
}

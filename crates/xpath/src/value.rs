//! The XPath 1.0 value model: node-sets, strings, numbers, booleans.

use xic_xml::{Document, NodeId, NodeKind};

/// A reference to a tree node or an attribute "node".
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeRef {
    /// A tree node (document, element, text, comment, PI).
    Node(NodeId),
    /// An attribute of an element.
    Attr {
        /// Owning element.
        owner: NodeId,
        /// Attribute name.
        name: String,
    },
}

impl NodeRef {
    /// The owning tree node (the element itself for attributes).
    pub fn anchor(&self) -> NodeId {
        match self {
            NodeRef::Node(n) => *n,
            NodeRef::Attr { owner, .. } => *owner,
        }
    }

    /// The XPath string-value of this node.
    pub fn string_value(&self, doc: &Document) -> String {
        match self {
            NodeRef::Node(n) => match &doc.node(*n).kind {
                NodeKind::Text(t) => t.clone(),
                NodeKind::Comment(t) => t.clone(),
                NodeKind::Pi { data, .. } => data.clone(),
                _ => doc.text_content(*n),
            },
            NodeRef::Attr { owner, name } => {
                doc.attr(*owner, name).unwrap_or_default().to_string()
            }
        }
    }
}

/// An XPath value.
#[derive(Debug, Clone, PartialEq)]
pub enum XValue {
    /// A node-set in document order without duplicates.
    Nodes(Vec<NodeRef>),
    /// A string.
    Str(String),
    /// A number (IEEE double, as in XPath 1.0).
    Num(f64),
    /// A boolean.
    Bool(bool),
}

impl XValue {
    /// Boolean coercion (XPath 1.0 `boolean()`).
    pub fn to_bool(&self) -> bool {
        match self {
            XValue::Nodes(ns) => !ns.is_empty(),
            XValue::Str(s) => !s.is_empty(),
            XValue::Num(n) => *n != 0.0 && !n.is_nan(),
            XValue::Bool(b) => *b,
        }
    }

    /// String coercion (XPath 1.0 `string()`): first node's string-value
    /// for node-sets.
    pub fn to_str(&self, doc: &Document) -> String {
        match self {
            XValue::Nodes(ns) => ns.first().map(|n| n.string_value(doc)).unwrap_or_default(),
            XValue::Str(s) => s.clone(),
            XValue::Num(n) => format_number(*n),
            XValue::Bool(b) => b.to_string(),
        }
    }

    /// Number coercion (XPath 1.0 `number()`).
    pub fn to_num(&self, doc: &Document) -> f64 {
        match self {
            XValue::Num(n) => *n,
            XValue::Bool(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            other => {
                let s = other.to_str(doc);
                s.trim().parse::<f64>().unwrap_or(f64::NAN)
            }
        }
    }

    /// The node-set, if this is one.
    pub fn as_nodes(&self) -> Option<&[NodeRef]> {
        match self {
            XValue::Nodes(ns) => Some(ns),
            _ => None,
        }
    }
}

/// XPath 1.0 number formatting: integers render without a decimal point.
pub fn format_number(n: f64) -> String {
    if n.is_nan() {
        "NaN".to_string()
    } else if n.is_infinite() {
        if n > 0.0 { "Infinity" } else { "-Infinity" }.to_string()
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xic_xml::parse_document;

    #[test]
    fn coercions() {
        let (doc, _) = parse_document("<a x=\"7\">text</a>").unwrap();
        assert!(XValue::Str("x".into()).to_bool());
        assert!(!XValue::Str(String::new()).to_bool());
        assert!(XValue::Num(1.5).to_bool());
        assert!(!XValue::Num(0.0).to_bool());
        assert!(!XValue::Num(f64::NAN).to_bool());
        assert!(!XValue::Nodes(vec![]).to_bool());
        assert_eq!(XValue::Num(3.0).to_str(&doc), "3");
        assert_eq!(XValue::Num(3.5).to_str(&doc), "3.5");
        assert_eq!(XValue::Bool(true).to_str(&doc), "true");
        assert_eq!(XValue::Str("4.5".into()).to_num(&doc), 4.5);
        assert!(XValue::Str("zz".into()).to_num(&doc).is_nan());
    }

    #[test]
    fn node_string_values() {
        let (doc, _) = parse_document("<a x=\"7\"><b>hi</b> there</a>").unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(NodeRef::Node(root).string_value(&doc), "hi there");
        let attr = NodeRef::Attr {
            owner: root,
            name: "x".into(),
        };
        assert_eq!(attr.string_value(&doc), "7");
        assert_eq!(attr.anchor(), root);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_number(42.0), "42");
        assert_eq!(format_number(-1.25), "-1.25");
        assert_eq!(format_number(f64::NAN), "NaN");
        assert_eq!(format_number(f64::INFINITY), "Infinity");
    }
}

//! XPath evaluation over a document.

use crate::ast::{Axis, BinOp, Expr, NodeTest, Path, PathStart, Step};
use crate::value::{NodeRef, XValue};
use std::collections::HashMap;
use std::fmt;
use xic_xml::{Document, NodeKind};

/// Evaluation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// Reference to an unbound variable.
    UndefinedVariable(String),
    /// Unknown function or wrong arity.
    BadCall(String),
    /// An operation received a value of the wrong kind (e.g. union of
    /// non-node-sets).
    Type(String),
    /// The armed [`crate::budget::EvalBudget`] ran out of steps; the
    /// caller should retry unbudgeted (e.g. fall back to the baseline
    /// full check) or report the evaluation as too expensive.
    BudgetExhausted,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UndefinedVariable(v) => write!(f, "undefined variable ${v}"),
            EvalError::BadCall(m) | EvalError::Type(m) => f.write_str(m),
            EvalError::BudgetExhausted => f.write_str("evaluation step budget exhausted"),
        }
    }
}

impl std::error::Error for EvalError {}

/// The evaluation context: document, context item, position/size, and
/// variable bindings (populated by the XQuery layer).
#[derive(Debug, Clone)]
pub struct Context<'d> {
    /// The document.
    pub doc: &'d Document,
    /// Context item.
    pub item: NodeRef,
    /// 1-based context position.
    pub position: usize,
    /// Context size.
    pub size: usize,
    /// In-scope variables.
    pub vars: HashMap<String, XValue>,
}

impl<'d> Context<'d> {
    /// A context positioned at the document node.
    pub fn root(doc: &'d Document) -> Context<'d> {
        Context {
            doc,
            item: NodeRef::Node(doc.document_node()),
            position: 1,
            size: 1,
            vars: HashMap::new(),
        }
    }

    /// Returns a copy with a variable bound.
    #[must_use]
    pub fn bind(&self, name: impl Into<String>, value: XValue) -> Context<'d> {
        let mut c = self.clone();
        c.vars.insert(name.into(), value);
        c
    }

    fn at(&self, item: NodeRef, position: usize, size: usize) -> Context<'d> {
        let mut c = self.clone();
        c.item = item;
        c.position = position;
        c.size = size;
        c
    }
}

/// Evaluates an expression.
pub fn evaluate(expr: &Expr, ctx: &Context) -> Result<XValue, EvalError> {
    match expr {
        Expr::Literal(s) => Ok(XValue::Str(s.clone())),
        Expr::Number(n) => Ok(XValue::Num(*n)),
        Expr::Neg(e) => Ok(XValue::Num(-evaluate(e, ctx)?.to_num(ctx.doc))),
        Expr::Path(p) => Ok(XValue::Nodes(eval_path(p, ctx)?)),
        Expr::Filter {
            primary,
            predicates,
            steps,
        } => {
            let v = evaluate(primary, ctx)?;
            let mut nodes = match v {
                XValue::Nodes(ns) => ns,
                other if predicates.is_empty() && steps.is_empty() => return Ok(other),
                other => {
                    return Err(EvalError::Type(format!(
                        "cannot filter non-node-set value {other:?}"
                    )))
                }
            };
            for pred in predicates {
                nodes = apply_predicate(&nodes, pred, ctx, false)?;
            }
            for step in steps {
                nodes = eval_step(&nodes, step, ctx)?;
            }
            Ok(XValue::Nodes(nodes))
        }
        Expr::Binary(a, op, b) => eval_binary(a, *op, b, ctx),
        Expr::Call(name, args) => eval_call(name, args, ctx),
    }
}

/// Evaluates an expression that must produce a node-set.
pub fn evaluate_nodes(expr: &Expr, ctx: &Context) -> Result<Vec<NodeRef>, EvalError> {
    match evaluate(expr, ctx)? {
        XValue::Nodes(ns) => Ok(ns),
        other => Err(EvalError::Type(format!(
            "expected a node-set, got {other:?}"
        ))),
    }
}

/// Existential evaluation: the expression's boolean value, computed with
/// first-witness short-circuit wherever the answer cannot depend on the
/// rest of the node-set. Equivalent to `evaluate(expr, ctx)?.to_bool()`
/// (the difftest oracle enforces this), but a path stops descending at
/// the first node it reaches, `or`/`and`/`not`/`boolean` recurse lazily,
/// and no document-order normalization ever happens — a constraint check
/// asking "is there a violation witness?" touches only the nodes up to
/// that witness.
pub fn evaluate_exists(expr: &Expr, ctx: &Context) -> Result<bool, EvalError> {
    match expr {
        Expr::Literal(s) => Ok(!s.is_empty()),
        Expr::Number(n) => Ok(*n != 0.0 && !n.is_nan()),
        Expr::Path(p) => {
            // A bare `$x` has the truth value of whatever it holds.
            if let PathStart::Variable(v) = &p.start {
                if p.steps.is_empty() {
                    return ctx
                        .vars
                        .get(v)
                        .map(XValue::to_bool)
                        .ok_or_else(|| EvalError::UndefinedVariable(v.clone()));
                }
            }
            let start = path_start_nodes(p, ctx)?;
            path_exists_from(&start, &p.steps, ctx)
        }
        Expr::Filter {
            primary,
            predicates,
            steps,
        } if predicates.is_empty() => match evaluate(primary, ctx)? {
            XValue::Nodes(ns) => path_exists_from(&ns, steps, ctx),
            other if steps.is_empty() => Ok(other.to_bool()),
            other => Err(EvalError::Type(format!(
                "cannot filter non-node-set value {other:?}"
            ))),
        },
        Expr::Binary(a, BinOp::Or, b) => {
            Ok(evaluate_exists(a, ctx)? || evaluate_exists(b, ctx)?)
        }
        Expr::Binary(a, BinOp::And, b) => {
            Ok(evaluate_exists(a, ctx)? && evaluate_exists(b, ctx)?)
        }
        Expr::Call(name, args) => match (name.as_str(), args.len()) {
            ("true", 0) => Ok(true),
            ("false", 0) => Ok(false),
            ("not", 1) => Ok(!evaluate_exists(&args[0], ctx)?),
            ("boolean", 1) => evaluate_exists(&args[0], ctx),
            _ => Ok(evaluate(expr, ctx)?.to_bool()),
        },
        _ => Ok(evaluate(expr, ctx)?.to_bool()),
    }
}

/// Sequence-nonemptiness counterpart of [`evaluate_exists`], for the
/// XQuery `exists()`/`empty()` functions: `[""]` is non-empty even though
/// its effective boolean value is false. Equivalent to
/// `!evaluate_nodes(expr, ctx)?.is_empty()` for node-set expressions;
/// atomic values count as one-item sequences.
pub fn evaluate_nonempty(expr: &Expr, ctx: &Context) -> Result<bool, EvalError> {
    match expr {
        Expr::Path(p) => {
            if let PathStart::Variable(v) = &p.start {
                if p.steps.is_empty() {
                    return match ctx.vars.get(v) {
                        Some(XValue::Nodes(ns)) => Ok(!ns.is_empty()),
                        Some(_) => Ok(true),
                        None => Err(EvalError::UndefinedVariable(v.clone())),
                    };
                }
            }
            let start = path_start_nodes(p, ctx)?;
            path_exists_from(&start, &p.steps, ctx)
        }
        Expr::Filter {
            primary,
            predicates,
            steps,
        } if predicates.is_empty() => match evaluate(primary, ctx)? {
            XValue::Nodes(ns) => path_exists_from(&ns, steps, ctx),
            _ if steps.is_empty() => Ok(true),
            other => Err(EvalError::Type(format!(
                "cannot filter non-node-set value {other:?}"
            ))),
        },
        _ => Ok(match evaluate(expr, ctx)? {
            XValue::Nodes(ns) => !ns.is_empty(),
            _ => true,
        }),
    }
}

/// Deducts `n` axis-candidate visits from the thread's armed step budget
/// (free when no budget is armed — the production default).
#[inline]
fn charge_budget(n: u64) -> Result<(), EvalError> {
    crate::budget::charge(n).map_err(|_| EvalError::BudgetExhausted)
}

/// Depth-first existential path evaluation: true iff applying `steps` to
/// `input` yields at least one node. Predicate-free steps stream their
/// axis candidates and recurse one node at a time, so the walk stops at
/// the first witness; steps with predicates materialize that single
/// step's per-item result (positional predicates need the whole candidate
/// list) and continue existentially from it.
fn path_exists_from(input: &[NodeRef], steps: &[Step], ctx: &Context) -> Result<bool, EvalError> {
    let Some((step, rest)) = steps.split_first() else {
        return Ok(!input.is_empty());
    };
    for item in input {
        if step.predicates.is_empty() {
            for n in axis_iter(ctx.doc, item, step.axis) {
                xic_obs::incr(xic_obs::Counter::XpathNodesVisited);
                charge_budget(1)?;
                if node_test(ctx.doc, &n, step.axis, &step.test)
                    && path_exists_from(std::slice::from_ref(&n), rest, ctx)?
                {
                    return Ok(true);
                }
            }
        } else {
            let tested = step_once(item, step, ctx)?;
            if path_exists_from(&tested, rest, ctx)? {
                return Ok(true);
            }
        }
    }
    Ok(false)
}

/// Resolves a path's start into its initial node-set (shared by the
/// materializing and existential evaluators).
fn path_start_nodes(path: &Path, ctx: &Context) -> Result<Vec<NodeRef>, EvalError> {
    match &path.start {
        PathStart::Root => Ok(vec![NodeRef::Node(ctx.doc.document_node())]),
        PathStart::Context => Ok(vec![ctx.item.clone()]),
        PathStart::Variable(v) => match ctx.vars.get(v) {
            Some(XValue::Nodes(ns)) => Ok(ns.clone()),
            Some(other) => {
                if path.steps.is_empty() {
                    return Err(EvalError::Type(format!(
                        "variable ${v} holds a non-node-set {other:?} (evaluate it as an \
                         expression instead)"
                    )));
                }
                Err(EvalError::Type(format!(
                    "cannot navigate from non-node-set variable ${v}"
                )))
            }
            None => Err(EvalError::UndefinedVariable(v.clone())),
        },
    }
}

fn eval_path(path: &Path, ctx: &Context) -> Result<Vec<NodeRef>, EvalError> {
    // A bare `$x` path returns the variable's nodes.
    let mut cur = path_start_nodes(path, ctx)?;
    for step in &path.steps {
        cur = eval_step(&cur, step, ctx)?;
    }
    Ok(cur)
}

/// Evaluates `$x` that may hold any value (used by the XQuery layer, which
/// also stores strings/numbers in variables).
pub fn eval_variable(path: &Path, ctx: &Context) -> Result<XValue, EvalError> {
    if let PathStart::Variable(v) = &path.start {
        if path.steps.is_empty() {
            return ctx
                .vars
                .get(v)
                .cloned()
                .ok_or_else(|| EvalError::UndefinedVariable(v.clone()));
        }
    }
    Ok(XValue::Nodes(eval_path(path, ctx)?))
}

/// Applies one step to a *single* context item: axis traversal (lazy),
/// node test, then predicates over the per-item candidate list.
/// Positional predicates see exactly the positions the materializing
/// evaluator always gave them, because predicates were always applied per
/// input item.
fn step_once(item: &NodeRef, step: &Step, ctx: &Context) -> Result<Vec<NodeRef>, EvalError> {
    let mut visited = 0u64;
    let mut tested: Vec<NodeRef> = axis_iter(ctx.doc, item, step.axis)
        .inspect(|_| visited += 1)
        .filter(|n| node_test(ctx.doc, n, step.axis, &step.test))
        .collect();
    xic_obs::add(xic_obs::Counter::XpathNodesVisited, visited);
    charge_budget(visited)?;
    for pred in &step.predicates {
        tested = apply_predicate(&tested, pred, ctx, step.axis.is_reverse())?;
    }
    Ok(tested)
}

fn eval_step(input: &[NodeRef], step: &Step, ctx: &Context) -> Result<Vec<NodeRef>, EvalError> {
    let mut merged: Vec<NodeRef> = Vec::new();
    for item in input {
        merged.extend(step_once(item, step, ctx)?);
    }
    // Normalization (document-order sort + dedup) is the dominant cost on
    // large documents; skip it when the result is ordered and duplicate-
    // free by construction: a single context node with a forward axis, or
    // doc-ordered non-nested inputs stepped through child/attribute/self
    // (disjoint result sets, concatenated in input order). Non-nesting is
    // guaranteed when all inputs sit at the same tree depth — the common
    // case for homogeneous steps like `$x/sub/auts`.
    if input.len() <= 1 {
        if step.axis.is_reverse() {
            // Reverse-axis results from one node: flip into document order
            // (already duplicate-free).
            merged.reverse();
        }
        return Ok(merged);
    }
    let sibling_safe = matches!(step.axis, Axis::Child | Axis::Attribute | Axis::SelfAxis)
        && same_depth(ctx.doc, input);
    if !sibling_safe {
        dedupe_doc_order(ctx.doc, &mut merged);
    }
    Ok(merged)
}

/// True if all tree-node inputs share one depth (attribute refs anchor at
/// their owner).
pub(crate) fn same_depth(doc: &Document, input: &[NodeRef]) -> bool {
    let depth = |n: &NodeRef| -> usize {
        let mut d = 0;
        let mut cur = n.anchor();
        while let Some(p) = doc.node(cur).parent {
            d += 1;
            cur = p;
        }
        d
    };
    let first = depth(&input[0]);
    input[1..].iter().all(|n| depth(n) == first)
}

fn apply_predicate(
    nodes: &[NodeRef],
    pred: &Expr,
    ctx: &Context,
    reverse: bool,
) -> Result<Vec<NodeRef>, EvalError> {
    let size = nodes.len();
    let mut out = Vec::with_capacity(size);
    for (i, n) in nodes.iter().enumerate() {
        let position = if reverse { size - i } else { i + 1 };
        let sub = ctx.at(n.clone(), position, size);
        let v = evaluate(pred, &sub)?;
        let keep = match v {
            XValue::Num(k) => (position as f64) == k,
            other => other.to_bool(),
        };
        if keep {
            out.push(n.clone());
        }
    }
    Ok(out)
}

/// Lazy axis traversal: yields candidates one at a time so existential
/// evaluation can stop at the first witness, and `step_once` never
/// materializes an intermediate candidate `Vec` (descendant axes stream
/// straight out of [`Document::descendants`]).
pub(crate) fn axis_iter<'d>(
    doc: &'d Document,
    item: &NodeRef,
    axis: Axis,
) -> Box<dyn Iterator<Item = NodeRef> + 'd> {
    let ancestors = move |from: Option<xic_xml::NodeId>| {
        std::iter::successors(from, move |&p| doc.node(p).parent).map(NodeRef::Node)
    };
    match item {
        NodeRef::Attr { owner, .. } => match axis {
            Axis::Parent => Box::new(std::iter::once(NodeRef::Node(*owner))),
            // The attribute's ancestors start at (and include) its owner.
            Axis::Ancestor => Box::new(ancestors(Some(*owner))),
            Axis::AncestorOrSelf => {
                Box::new(std::iter::once(item.clone()).chain(ancestors(Some(*owner))))
            }
            Axis::SelfAxis => Box::new(std::iter::once(item.clone())),
            _ => Box::new(std::iter::empty()),
        },
        NodeRef::Node(n) => {
            let n = *n;
            match axis {
                Axis::Child => Box::new(doc.node(n).children.iter().map(|&c| NodeRef::Node(c))),
                Axis::Descendant => Box::new(doc.descendants(n).map(NodeRef::Node)),
                Axis::DescendantOrSelf => Box::new(
                    std::iter::once(NodeRef::Node(n)).chain(doc.descendants(n).map(NodeRef::Node)),
                ),
                Axis::Parent => Box::new(doc.node(n).parent.into_iter().map(NodeRef::Node)),
                Axis::Ancestor => Box::new(ancestors(doc.node(n).parent)),
                Axis::AncestorOrSelf => Box::new(
                    std::iter::once(NodeRef::Node(n)).chain(ancestors(doc.node(n).parent)),
                ),
                Axis::SelfAxis => Box::new(std::iter::once(NodeRef::Node(n))),
                Axis::Attribute => match &doc.node(n).kind {
                    NodeKind::Element { attrs, .. } => {
                        Box::new(attrs.iter().map(move |(name, _)| NodeRef::Attr {
                            owner: n,
                            name: name.clone(),
                        }))
                    }
                    _ => Box::new(std::iter::empty()),
                },
                Axis::PrecedingSibling | Axis::FollowingSibling => {
                    let Some(parent) = doc.node(n).parent else {
                        return Box::new(std::iter::empty());
                    };
                    let siblings = &doc.node(parent).children;
                    let idx = siblings
                        .iter()
                        .position(|&c| c == n)
                        .expect("attached node is among its parent's children");
                    if axis == Axis::PrecedingSibling {
                        // Nearest first (reverse document order).
                        Box::new(siblings[..idx].iter().rev().map(|&c| NodeRef::Node(c)))
                    } else {
                        Box::new(siblings[idx + 1..].iter().map(|&c| NodeRef::Node(c)))
                    }
                }
            }
        }
    }
}

fn node_test(doc: &Document, item: &NodeRef, axis: Axis, test: &NodeTest) -> bool {
    match item {
        NodeRef::Attr { name, .. } => match test {
            NodeTest::Name(n) => n == name,
            NodeTest::Wildcard | NodeTest::Node => true,
            _ => false,
        },
        NodeRef::Node(n) => {
            let kind = &doc.node(*n).kind;
            match test {
                NodeTest::Name(name) => doc.name(*n) == Some(name.as_str()),
                NodeTest::Wildcard => {
                    // The principal node type of every non-attribute axis
                    // is element.
                    let _ = axis;
                    matches!(kind, NodeKind::Element { .. })
                }
                NodeTest::Text => matches!(kind, NodeKind::Text(_)),
                NodeTest::Node => true,
                NodeTest::Comment => matches!(kind, NodeKind::Comment(_)),
            }
        }
    }
}

/// Kind discriminant for ordering mixed node/attribute refs that share an
/// anchor: a node sorts before the attributes it owns.
fn ref_kind(n: &NodeRef) -> u8 {
    match n {
        NodeRef::Node(_) => 0,
        NodeRef::Attr { .. } => 1,
    }
}

/// Attribute name for ordering attributes of one owner (empty for nodes)
/// — borrowed, never cloned.
fn ref_name(n: &NodeRef) -> &str {
    match n {
        NodeRef::Node(_) => "",
        NodeRef::Attr { name, .. } => name,
    }
}

/// Sorts a node-set into document order and removes duplicates.
///
/// When every anchor is attached and the document's rank cache is
/// enabled, comparisons are O(1) rank lookups — no per-node `order_key`
/// `Vec` and no per-attribute `String` clone for the dedup key. Sets
/// containing detached nodes (or a cache-disabled document) fall back to
/// the historical path-key sort, which orders detached nodes relative to
/// their own subtree roots.
pub fn dedupe_doc_order(doc: &Document, nodes: &mut Vec<NodeRef>) {
    if nodes.len() <= 1 {
        return;
    }
    if let Some(ranks) = doc.order_ranks() {
        if nodes.iter().all(|n| ranks.rank(n.anchor()).is_some()) {
            xic_obs::incr(xic_obs::Counter::DocOrderFastSort);
            nodes.sort_unstable_by(|a, b| {
                let ra = ranks.rank(a.anchor()).expect("all anchors checked attached");
                let rb = ranks.rank(b.anchor()).expect("all anchors checked attached");
                ra.cmp(&rb)
                    .then_with(|| ref_kind(a).cmp(&ref_kind(b)))
                    .then_with(|| ref_name(a).cmp(ref_name(b)))
            });
            nodes.dedup();
            return;
        }
    }
    xic_obs::incr(xic_obs::Counter::DocOrderPathSort);
    let mut keyed: Vec<(Vec<u32>, NodeRef)> = nodes
        .drain(..)
        .map(|n| (doc.order_key(n.anchor()), n))
        .collect();
    keyed.sort_by(|(ka, a), (kb, b)| {
        ka.cmp(kb)
            .then_with(|| ref_kind(a).cmp(&ref_kind(b)))
            .then_with(|| ref_name(a).cmp(ref_name(b)))
    });
    nodes.extend(keyed.into_iter().map(|(_, n)| n));
    nodes.dedup();
}

/// True if the expression mentions variable `name` (used by the XQuery
/// engine to hoist loop-invariant quantifier sources).
pub fn expr_mentions_var(e: &Expr, name: &str) -> bool {
    fn path(p: &Path, name: &str) -> bool {
        if matches!(&p.start, PathStart::Variable(v) if v == name) {
            return true;
        }
        p.steps
            .iter()
            .any(|s| s.predicates.iter().any(|q| expr_mentions_var(q, name)))
    }
    match e {
        Expr::Path(p) => path(p, name),
        Expr::Filter { primary, predicates, steps } => {
            expr_mentions_var(primary, name)
                || predicates.iter().any(|q| expr_mentions_var(q, name))
                || steps
                    .iter()
                    .any(|s| s.predicates.iter().any(|q| expr_mentions_var(q, name)))
        }
        Expr::Literal(_) | Expr::Number(_) => false,
        Expr::Binary(a, _, b) => expr_mentions_var(a, name) || expr_mentions_var(b, name),
        Expr::Neg(x) => expr_mentions_var(x, name),
        Expr::Call(_, args) => args.iter().any(|a| expr_mentions_var(a, name)),
    }
}

fn eval_binary(a: &Expr, op: BinOp, b: &Expr, ctx: &Context) -> Result<XValue, EvalError> {
    match op {
        BinOp::Or => {
            return Ok(XValue::Bool(
                evaluate(a, ctx)?.to_bool() || evaluate(b, ctx)?.to_bool(),
            ))
        }
        BinOp::And => {
            return Ok(XValue::Bool(
                evaluate(a, ctx)?.to_bool() && evaluate(b, ctx)?.to_bool(),
            ))
        }
        _ => {}
    }
    let va = eval_operand(a, ctx)?;
    let vb = eval_operand(b, ctx)?;
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
            let x = va.to_num(ctx.doc);
            let y = vb.to_num(ctx.doc);
            let r = match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
                BinOp::Mod => x % y,
                _ => unreachable!(),
            };
            Ok(XValue::Num(r))
        }
        BinOp::Union => match (va, vb) {
            (XValue::Nodes(mut x), XValue::Nodes(y)) => {
                x.extend(y);
                dedupe_doc_order(ctx.doc, &mut x);
                Ok(XValue::Nodes(x))
            }
            _ => Err(EvalError::Type("union of non-node-sets".to_string())),
        },
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            Ok(XValue::Bool(compare_values(&va, op, &vb, ctx.doc)))
        }
        BinOp::Or | BinOp::And => unreachable!("handled above"),
    }
}

/// Evaluates an operand, resolving bare variables to their full value (so
/// `$x = 3` works when `$x` holds a number).
fn eval_operand(e: &Expr, ctx: &Context) -> Result<XValue, EvalError> {
    if let Expr::Path(p) = e {
        return eval_variable(p, ctx);
    }
    evaluate(e, ctx)
}

/// XPath 1.0 comparison semantics: existential over node-sets. Public so
/// the XQuery layer can reuse the exact same general-comparison rules.
pub fn compare_values(a: &XValue, op: BinOp, b: &XValue, doc: &Document) -> bool {
    let cmp_num = |x: f64, y: f64| match op {
        BinOp::Eq => x == y,
        BinOp::Ne => x != y,
        BinOp::Lt => x < y,
        BinOp::Le => x <= y,
        BinOp::Gt => x > y,
        BinOp::Ge => x >= y,
        _ => unreachable!(),
    };
    let cmp_str = |x: &str, y: &str| match op {
        BinOp::Eq => x == y,
        BinOp::Ne => x != y,
        // Relational comparisons on strings go through numbers in XPath 1.0.
        _ => cmp_num(
            x.trim().parse().unwrap_or(f64::NAN),
            y.trim().parse().unwrap_or(f64::NAN),
        ),
    };
    match (a, b) {
        (XValue::Nodes(xs), XValue::Nodes(ys)) => xs.iter().any(|x| {
            let sx = x.string_value(doc);
            ys.iter().any(|y| cmp_str(&sx, &y.string_value(doc)))
        }),
        (XValue::Nodes(xs), other) | (other, XValue::Nodes(xs)) => {
            let flipped = !matches!(a, XValue::Nodes(_));
            let eff_op = if flipped { flip(op) } else { op };
            match other {
                XValue::Num(n) => xs.iter().any(|x| {
                    let v = x.string_value(doc).trim().parse().unwrap_or(f64::NAN);
                    match eff_op {
                        BinOp::Eq => v == *n,
                        BinOp::Ne => v != *n,
                        BinOp::Lt => v < *n,
                        BinOp::Le => v <= *n,
                        BinOp::Gt => v > *n,
                        BinOp::Ge => v >= *n,
                        _ => unreachable!(),
                    }
                }),
                XValue::Str(s) => xs.iter().any(|x| {
                    let sv = x.string_value(doc);
                    match eff_op {
                        BinOp::Eq => sv == *s,
                        BinOp::Ne => sv != *s,
                        _ => cmp_num(
                            sv.trim().parse().unwrap_or(f64::NAN),
                            s.trim().parse().unwrap_or(f64::NAN),
                        ),
                    }
                }),
                XValue::Bool(bv) => {
                    let nb = !xs.is_empty();
                    match eff_op {
                        BinOp::Eq => nb == *bv,
                        BinOp::Ne => nb != *bv,
                        _ => cmp_num(f64::from(u8::from(nb)), f64::from(u8::from(*bv))),
                    }
                }
                XValue::Nodes(_) => unreachable!(),
            }
        }
        _ => {
            // Neither side is a node-set.
            if matches!(op, BinOp::Eq | BinOp::Ne) {
                if matches!(a, XValue::Bool(_)) || matches!(b, XValue::Bool(_)) {
                    let r = a.to_bool() == b.to_bool();
                    return if op == BinOp::Eq { r } else { !r };
                }
                if matches!(a, XValue::Num(_)) || matches!(b, XValue::Num(_)) {
                    return cmp_num(a.to_num(doc), b.to_num(doc));
                }
                return cmp_str(&a.to_str(doc), &b.to_str(doc));
            }
            cmp_num(a.to_num(doc), b.to_num(doc))
        }
    }
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

fn eval_call(name: &str, args: &[Expr], ctx: &Context) -> Result<XValue, EvalError> {
    let arity = |n: usize| -> Result<(), EvalError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(EvalError::BadCall(format!(
                "{name}() expects {n} argument(s), got {}",
                args.len()
            )))
        }
    };
    match name {
        "position" => {
            arity(0)?;
            Ok(XValue::Num(ctx.position as f64))
        }
        "last" => {
            arity(0)?;
            Ok(XValue::Num(ctx.size as f64))
        }
        "true" => {
            arity(0)?;
            Ok(XValue::Bool(true))
        }
        "false" => {
            arity(0)?;
            Ok(XValue::Bool(false))
        }
        "count" => {
            arity(1)?;
            match eval_operand(&args[0], ctx)? {
                XValue::Nodes(ns) => Ok(XValue::Num(ns.len() as f64)),
                other => Err(EvalError::Type(format!("count() of {other:?}"))),
            }
        }
        "sum" => {
            arity(1)?;
            match eval_operand(&args[0], ctx)? {
                XValue::Nodes(ns) => Ok(XValue::Num(
                    ns.iter()
                        .map(|n| n.string_value(ctx.doc).trim().parse().unwrap_or(f64::NAN))
                        .sum(),
                )),
                other => Err(EvalError::Type(format!("sum() of {other:?}"))),
            }
        }
        "not" => {
            arity(1)?;
            Ok(XValue::Bool(!eval_operand(&args[0], ctx)?.to_bool()))
        }
        "boolean" => {
            arity(1)?;
            Ok(XValue::Bool(eval_operand(&args[0], ctx)?.to_bool()))
        }
        "string" => {
            if args.is_empty() {
                return Ok(XValue::Str(ctx.item.string_value(ctx.doc)));
            }
            arity(1)?;
            Ok(XValue::Str(eval_operand(&args[0], ctx)?.to_str(ctx.doc)))
        }
        "number" => {
            if args.is_empty() {
                return Ok(XValue::Num(
                    ctx.item
                        .string_value(ctx.doc)
                        .trim()
                        .parse()
                        .unwrap_or(f64::NAN),
                ));
            }
            arity(1)?;
            Ok(XValue::Num(eval_operand(&args[0], ctx)?.to_num(ctx.doc)))
        }
        "concat" => {
            if args.len() < 2 {
                return Err(EvalError::BadCall(
                    "concat() expects at least 2 arguments".to_string(),
                ));
            }
            let mut out = String::new();
            for a in args {
                out.push_str(&eval_operand(a, ctx)?.to_str(ctx.doc));
            }
            Ok(XValue::Str(out))
        }
        "contains" => {
            arity(2)?;
            let h = eval_operand(&args[0], ctx)?.to_str(ctx.doc);
            let n = eval_operand(&args[1], ctx)?.to_str(ctx.doc);
            Ok(XValue::Bool(h.contains(&n)))
        }
        "starts-with" => {
            arity(2)?;
            let h = eval_operand(&args[0], ctx)?.to_str(ctx.doc);
            let n = eval_operand(&args[1], ctx)?.to_str(ctx.doc);
            Ok(XValue::Bool(h.starts_with(&n)))
        }
        "string-length" => {
            arity(1)?;
            Ok(XValue::Num(
                eval_operand(&args[0], ctx)?.to_str(ctx.doc).chars().count() as f64,
            ))
        }
        "normalize-space" => {
            let s = if args.is_empty() {
                ctx.item.string_value(ctx.doc)
            } else {
                arity(1)?;
                eval_operand(&args[0], ctx)?.to_str(ctx.doc)
            };
            Ok(XValue::Str(
                s.split_whitespace().collect::<Vec<_>>().join(" "),
            ))
        }
        "name" | "local-name" => {
            let target = if args.is_empty() {
                ctx.item.clone()
            } else {
                arity(1)?;
                match eval_operand(&args[0], ctx)? {
                    XValue::Nodes(ns) => match ns.first() {
                        Some(n) => n.clone(),
                        None => return Ok(XValue::Str(String::new())),
                    },
                    other => return Err(EvalError::Type(format!("name() of {other:?}"))),
                }
            };
            let full = match &target {
                NodeRef::Node(n) => ctx.doc.name(*n).unwrap_or("").to_string(),
                NodeRef::Attr { name, .. } => name.clone(),
            };
            let out = if name == "local-name" {
                full.rsplit(':').next().unwrap_or("").to_string()
            } else {
                full
            };
            Ok(XValue::Str(out))
        }
        other => Err(EvalError::BadCall(format!("unknown function {other}()"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use xic_xml::parse_document;

    const DOC: &str = "<review>\
        <track><name>DB</name>\
          <rev><name>Ann</name>\
            <sub><title>S1</title><auts><name>Bob</name></auts></sub>\
            <sub><title>S2</title><auts><name>Cat</name><name>Ann</name></auts></sub>\
          </rev>\
          <rev><name>Dan</name>\
            <sub><title>S3</title><auts><name>Eve</name></auts></sub>\
          </rev>\
        </track>\
        <track><name>AI</name>\
          <rev><name>Ann</name><sub><title>S4</title><auts><name>Flo</name></auts></sub></rev>\
        </track>\
      </review>";

    fn eval_str(doc_src: &str, xpath: &str) -> XValue {
        let (doc, _) = parse_document(doc_src).unwrap();
        let e = parse(xpath).unwrap();
        let ctx = Context::root(&doc);
        evaluate(&e, &ctx).unwrap()
    }

    fn count_nodes(doc_src: &str, xpath: &str) -> usize {
        match eval_str(doc_src, xpath) {
            XValue::Nodes(ns) => ns.len(),
            other => panic!("expected node-set, got {other:?}"),
        }
    }

    #[test]
    fn descendant_queries() {
        assert_eq!(count_nodes(DOC, "//rev"), 3);
        assert_eq!(count_nodes(DOC, "//sub"), 4);
        assert_eq!(count_nodes(DOC, "//rev/name/text()"), 3);
        assert_eq!(count_nodes(DOC, "/review/track"), 2);
        assert_eq!(count_nodes(DOC, "/review/track/rev/sub/auts/name"), 5);
    }

    #[test]
    fn positional_predicates() {
        let (doc, _) = parse_document(DOC).unwrap();
        let e = parse("/review/track[2]/rev[1]/name/text()").unwrap();
        let v = evaluate(&e, &Context::root(&doc)).unwrap();
        assert_eq!(v.to_str(&doc), "Ann");
        assert_eq!(count_nodes(DOC, "//sub[1]"), 3, "first sub of each rev");
        assert_eq!(count_nodes(DOC, "//sub[position() = last()]"), 3);
        assert_eq!(count_nodes(DOC, "(//sub)[1]"), 1);
    }

    #[test]
    fn value_predicates() {
        assert_eq!(count_nodes(DOC, "//rev[name/text() = 'Ann']"), 2);
        assert_eq!(count_nodes(DOC, "//rev[name = 'Ann']/sub"), 3);
        assert_eq!(
            count_nodes(DOC, "//sub[auts/name/text() = 'Ann']"),
            1,
            "existential over multiple auts names"
        );
    }

    #[test]
    fn parent_and_ancestor() {
        assert_eq!(count_nodes(DOC, "//name/.."), 9, "every named element");
        assert_eq!(count_nodes(DOC, "//auts/ancestor::track"), 2);
        // 4 auts + 4 subs + 3 revs + 2 tracks + review = 14 distinct.
        assert_eq!(count_nodes(DOC, "//auts/ancestor-or-self::*"), 14);
        // aut/../aut style used by the paper's translation.
        assert_eq!(count_nodes(DOC, "//auts/name/../name"), 5);
    }

    #[test]
    fn siblings() {
        assert_eq!(count_nodes(DOC, "//sub[2]/preceding-sibling::sub"), 1);
        assert_eq!(count_nodes(DOC, "//name/following-sibling::rev"), 3);
        // Reverse-axis positions count from the nearest.
        assert_eq!(
            count_nodes(DOC, "//sub[2]/preceding-sibling::*[1]"),
            1
        );
    }

    #[test]
    fn attributes() {
        let src = "<r><a id=\"1\" lang=\"en\"/><a id=\"2\"/></r>";
        assert_eq!(count_nodes(src, "//a/@id"), 2);
        assert_eq!(count_nodes(src, "//a[@id = '2']"), 1);
        assert_eq!(count_nodes(src, "//a[@lang]"), 1);
        assert_eq!(count_nodes(src, "//a/@*"), 3);
        let v = eval_str(src, "string(//a/@id)");
        assert_eq!(v, XValue::Str("1".into()));
    }

    #[test]
    fn functions() {
        let (doc, _) = parse_document(DOC).unwrap();
        let ctx = Context::root(&doc);
        let v = evaluate(&parse("count(//sub)").unwrap(), &ctx).unwrap();
        assert_eq!(v, XValue::Num(4.0));
        let v = evaluate(&parse("not(//zzz)").unwrap(), &ctx).unwrap();
        assert_eq!(v, XValue::Bool(true));
        let v = evaluate(&parse("concat('a', 'b', 'c')").unwrap(), &ctx).unwrap();
        assert_eq!(v, XValue::Str("abc".into()));
        let v = evaluate(&parse("contains(//rev[1]/name, 'nn')").unwrap(), &ctx).unwrap();
        assert_eq!(v, XValue::Bool(true));
        let v = evaluate(&parse("string-length('héllo')").unwrap(), &ctx).unwrap();
        assert_eq!(v, XValue::Num(5.0));
        let v = evaluate(&parse("normalize-space('  a   b ')").unwrap(), &ctx).unwrap();
        assert_eq!(v, XValue::Str("a b".into()));
        let v = evaluate(&parse("name(//track[1])").unwrap(), &ctx).unwrap();
        assert_eq!(v, XValue::Str("track".into()));
    }

    #[test]
    fn arithmetic_and_comparison() {
        let (doc, _) = parse_document("<r/>").unwrap();
        let ctx = Context::root(&doc);
        let n = |s: &str| evaluate(&parse(s).unwrap(), &ctx).unwrap();
        assert_eq!(n("1 + 2 * 3"), XValue::Num(7.0));
        assert_eq!(n("7 mod 3"), XValue::Num(1.0));
        assert_eq!(n("7 div 2"), XValue::Num(3.5));
        assert_eq!(n("-(3)"), XValue::Num(-3.0));
        assert_eq!(n("1 < 2"), XValue::Bool(true));
        assert_eq!(n("'2' = 2"), XValue::Bool(true));
        assert_eq!(n("true() = '1'"), XValue::Bool(true), "bool wins coercion");
        assert_eq!(n("2 >= 3 or 1 = 1"), XValue::Bool(true));
        assert_eq!(n("2 >= 3 and 1 = 1"), XValue::Bool(false));
    }

    #[test]
    fn node_set_comparisons_are_existential() {
        // Two different subs share no author, but the name sets overlap on
        // "Ann" between rev names and auts names.
        let v = eval_str(DOC, "//rev/name/text() = //auts/name/text()");
        assert_eq!(v, XValue::Bool(true));
        let v2 = eval_str(DOC, "//track/name/text() = //auts/name/text()");
        assert_eq!(v2, XValue::Bool(false));
    }

    #[test]
    fn variables() {
        let (doc, _) = parse_document(DOC).unwrap();
        let revs = evaluate_nodes(&parse("//rev").unwrap(), &Context::root(&doc)).unwrap();
        let ctx = Context::root(&doc).bind("lr", XValue::Nodes(vec![revs[0].clone()]));
        let v = evaluate(&parse("$lr/sub").unwrap(), &ctx).unwrap();
        assert_eq!(v.as_nodes().unwrap().len(), 2);
        let v = evaluate(&parse("$lr/name/text() = 'Ann'").unwrap(), &ctx).unwrap();
        assert_eq!(v, XValue::Bool(true));
        assert!(matches!(
            evaluate(&parse("$nope").unwrap(), &ctx),
            Err(EvalError::UndefinedVariable(_))
        ));
    }

    #[test]
    fn union() {
        assert_eq!(count_nodes(DOC, "//track/name | //rev/name"), 5);
        // Dedup across operands.
        assert_eq!(count_nodes(DOC, "//rev | //rev"), 3);
    }

    #[test]
    fn document_order_and_dedup() {
        let (doc, _) = parse_document(DOC).unwrap();
        // `//name/..` visits parents multiple times but yields unique nodes
        // in document order.
        let ns = evaluate_nodes(&parse("//auts/name/..").unwrap(), &Context::root(&doc)).unwrap();
        assert_eq!(ns.len(), 4);
        let mut sorted = ns.clone();
        let mut ids: Vec<_> = sorted
            .iter()
            .map(|n| match n {
                NodeRef::Node(i) => *i,
                NodeRef::Attr { .. } => panic!(),
            })
            .collect();
        doc.sort_document_order(&mut ids);
        let resorted: Vec<_> = ids.into_iter().map(NodeRef::Node).collect();
        sorted.clone_from(&resorted);
        assert_eq!(ns, resorted);
    }

    #[test]
    fn evaluate_exists_agrees_with_effective_boolean() {
        let (doc, _) = parse_document(DOC).unwrap();
        let ctx = Context::root(&doc);
        for src in [
            "//rev",
            "//zzz",
            "//rev/name/text()",
            "//sub[auts/name/text() = 'Ann']",
            "//sub[2]",
            "//sub[position() = last()]",
            "(//sub)[1]",
            "//auts/name/..",
            "//rev | //zzz",
            "not(//zzz)",
            "boolean(//track)",
            "//rev/name/text() = //auts/name/text()",
            "count(//sub) > 3",
            "//track and //rev",
            "//zzz or //track",
            "'x'",
            "''",
            "0",
            "3",
            "//sub/preceding-sibling::name",
            "//auts/ancestor::track",
            "//name/@missing",
        ] {
            let e = parse(src).unwrap();
            let full = evaluate(&e, &ctx).unwrap().to_bool();
            let lazy = evaluate_exists(&e, &ctx).unwrap();
            assert_eq!(lazy, full, "evaluate_exists disagrees on {src}");
        }
    }

    #[test]
    fn evaluate_nonempty_agrees_with_node_count() {
        let (doc, _) = parse_document(DOC).unwrap();
        let ctx = Context::root(&doc);
        for src in ["//rev", "//zzz", "//sub[7]", "//name/text()", "//a/@id"] {
            let e = parse(src).unwrap();
            let full = !evaluate_nodes(&e, &ctx).unwrap().is_empty();
            let lazy = evaluate_nonempty(&e, &ctx).unwrap();
            assert_eq!(lazy, full, "evaluate_nonempty disagrees on {src}");
        }
        // An atomic value is a one-item sequence even when its EBV is
        // false — the distinction between exists() and boolean().
        let e = parse("''").unwrap();
        assert!(evaluate_nonempty(&e, &ctx).unwrap());
        assert!(!evaluate_exists(&e, &ctx).unwrap());
    }

    #[test]
    fn evaluate_exists_short_circuits_node_visits() {
        let (doc, _) = parse_document(DOC).unwrap();
        let ctx = Context::root(&doc);
        let e = parse("//sub").unwrap();
        xic_obs::reset();
        assert!(evaluate_exists(&e, &ctx).unwrap());
        let lazy = xic_obs::counter(xic_obs::Counter::XpathNodesVisited);
        xic_obs::reset();
        assert!(!evaluate_nodes(&e, &ctx).unwrap().is_empty());
        let full = xic_obs::counter(xic_obs::Counter::XpathNodesVisited);
        assert!(
            lazy < full,
            "existential walk visited {lazy} nodes, full walk {full}"
        );
    }

    #[test]
    fn dedupe_drops_duplicates_without_cache_too() {
        let (doc, _) = parse_document(DOC).unwrap();
        let mut with_cache =
            evaluate_nodes(&parse("//name").unwrap(), &Context::root(&doc)).unwrap();
        let dup = with_cache.clone();
        with_cache.extend(dup);
        let mut no_cache = with_cache.clone();
        dedupe_doc_order(&doc, &mut with_cache);
        let mut plain = doc.clone();
        plain.disable_order_cache();
        dedupe_doc_order(&plain, &mut no_cache);
        assert_eq!(with_cache, no_cache);
        assert_eq!(with_cache.len(), 10);
    }

    #[test]
    fn type_errors() {
        let (doc, _) = parse_document("<r/>").unwrap();
        let ctx = Context::root(&doc);
        assert!(matches!(
            evaluate(&parse("count(1)").unwrap(), &ctx),
            Err(EvalError::Type(_))
        ));
        assert!(matches!(
            evaluate(&parse("1 | 2").unwrap(), &ctx),
            Err(EvalError::Type(_))
        ));
        assert!(matches!(
            evaluate(&parse("frob()").unwrap(), &ctx),
            Err(EvalError::BadCall(_))
        ));
        assert!(matches!(
            evaluate(&parse("position(1)").unwrap(), &ctx),
            Err(EvalError::BadCall(_))
        ));
    }
}

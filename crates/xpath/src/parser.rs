//! Recursive-descent parser for the XPath subset.

use crate::ast::{Axis, BinOp, Expr, NodeTest, Path, PathStart, Step};
use crate::lexer::{tokenize, Tok};
use std::fmt;

/// XPath parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct XPathParseError {
    /// Byte offset (best effort).
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for XPathParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XPath parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XPathParseError {}

/// Parses an XPath expression.
pub fn parse(input: &str) -> Result<Expr, XPathParseError> {
    let toks = tokenize(input).map_err(|message| XPathParseError { offset: 0, message })?;
    let mut p = P::new(toks);
    let e = p.expr()?;
    if !p.at_eof() {
        return Err(p.err("unexpected trailing tokens"));
    }
    Ok(e)
}

/// A token-level parser, public so that the XQuery front-end can embed
/// XPath sub-expressions in a shared token stream.
pub struct P {
    pub(crate) toks: Vec<(usize, Tok)>,
    pub(crate) pos: usize,
}

impl P {
    /// Wraps a token stream produced by [`crate::lexer::tokenize`].
    pub fn new(toks: Vec<(usize, Tok)>) -> P {
        P { toks, pos: 0 }
    }

    /// True when every token has been consumed.
    pub fn at_eof(&self) -> bool {
        self.pos >= self.toks.len()
    }

    /// Current position in the token stream.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Rewinds/advances to a saved position.
    pub fn set_position(&mut self, pos: usize) {
        self.pos = pos;
    }
}

impl P {
    pub fn err(&self, message: impl Into<String>) -> XPathParseError {
        let offset = self.toks.get(self.pos).map_or(usize::MAX, |(o, _)| *o);
        XPathParseError {
            offset,
            message: message.into(),
        }
    }

    pub fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    pub fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|(_, t)| t)
    }

    pub fn next_tok(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    pub fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    pub fn eat_name(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Name(n)) if n == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    pub fn expect(&mut self, t: &Tok) -> Result<(), XPathParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {t}")))
        }
    }

    pub fn expr(&mut self) -> Result<Expr, XPathParseError> {
        self.or_expr()
    }

    fn binary_chain(
        &mut self,
        next: fn(&mut Self) -> Result<Expr, XPathParseError>,
        ops: &[(&Tok, BinOp)],
        kw_ops: &[(&str, BinOp)],
    ) -> Result<Expr, XPathParseError> {
        let mut lhs = next(self)?;
        'outer: loop {
            for (t, op) in ops {
                if self.eat(t) {
                    let rhs = next(self)?;
                    lhs = Expr::Binary(Box::new(lhs), *op, Box::new(rhs));
                    continue 'outer;
                }
            }
            for (kw, op) in kw_ops {
                if self.eat_name(kw) {
                    let rhs = next(self)?;
                    lhs = Expr::Binary(Box::new(lhs), *op, Box::new(rhs));
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn or_expr(&mut self) -> Result<Expr, XPathParseError> {
        self.binary_chain(Self::and_expr, &[], &[("or", BinOp::Or)])
    }

    fn and_expr(&mut self) -> Result<Expr, XPathParseError> {
        self.binary_chain(Self::eq_expr, &[], &[("and", BinOp::And)])
    }

    fn eq_expr(&mut self) -> Result<Expr, XPathParseError> {
        self.binary_chain(
            Self::rel_expr,
            &[(&Tok::Eq, BinOp::Eq), (&Tok::Ne, BinOp::Ne)],
            &[],
        )
    }

    fn rel_expr(&mut self) -> Result<Expr, XPathParseError> {
        self.binary_chain(
            Self::add_expr,
            &[
                (&Tok::Le, BinOp::Le),
                (&Tok::Ge, BinOp::Ge),
                (&Tok::Lt, BinOp::Lt),
                (&Tok::Gt, BinOp::Gt),
            ],
            &[],
        )
    }

    fn add_expr(&mut self) -> Result<Expr, XPathParseError> {
        self.binary_chain(
            Self::mul_expr,
            &[(&Tok::Plus, BinOp::Add), (&Tok::Minus, BinOp::Sub)],
            &[],
        )
    }

    fn mul_expr(&mut self) -> Result<Expr, XPathParseError> {
        self.binary_chain(
            Self::unary_expr,
            &[(&Tok::Star, BinOp::Mul)],
            &[("div", BinOp::Div), ("mod", BinOp::Mod)],
        )
    }

    fn unary_expr(&mut self) -> Result<Expr, XPathParseError> {
        if self.eat(&Tok::Minus) {
            Ok(Expr::Neg(Box::new(self.unary_expr()?)))
        } else {
            self.union_expr()
        }
    }

    fn union_expr(&mut self) -> Result<Expr, XPathParseError> {
        let mut lhs = self.path_expr()?;
        while self.eat(&Tok::Pipe) {
            let rhs = self.path_expr()?;
            lhs = Expr::Binary(Box::new(lhs), BinOp::Union, Box::new(rhs));
        }
        Ok(lhs)
    }

    /// True if the current token can start a location path step.
    fn at_step_start(&self) -> bool {
        match self.peek() {
            Some(Tok::Dot | Tok::DotDot | Tok::At | Tok::Star) => true,
            Some(Tok::Name(n)) => {
                // A name starts a step unless it is a function call — but
                // node-test "functions" (text/node/comment) are steps.
                if self.peek2() == Some(&Tok::LParen) {
                    matches!(n.as_str(), "text" | "node" | "comment")
                } else {
                    true
                }
            }
            _ => false,
        }
    }

    pub fn path_expr(&mut self) -> Result<Expr, XPathParseError> {
        match self.peek() {
            Some(Tok::Slash) => {
                self.pos += 1;
                let steps = if self.at_step_start() {
                    self.relative_steps()?
                } else {
                    Vec::new()
                };
                Ok(Expr::Path(Path {
                    start: PathStart::Root,
                    steps,
                }))
            }
            Some(Tok::DoubleSlash) => {
                self.pos += 1;
                let mut steps = vec![descendant_or_self_node()];
                steps.extend(self.relative_steps()?);
                Ok(Expr::Path(Path {
                    start: PathStart::Root,
                    steps,
                }))
            }
            Some(Tok::Var(_)) => {
                let Some(Tok::Var(name)) = self.next_tok() else {
                    unreachable!()
                };
                // $x, $x/steps, $x[pred]…
                if self.peek() == Some(&Tok::LBracket) {
                    let predicates = self.predicates()?;
                    let steps = self.trailing_steps()?;
                    return Ok(Expr::Filter {
                        primary: Box::new(Expr::Path(Path {
                            start: PathStart::Variable(name),
                            steps: Vec::new(),
                        })),
                        predicates,
                        steps,
                    });
                }
                let steps = self.trailing_steps()?;
                Ok(Expr::Path(Path {
                    start: PathStart::Variable(name),
                    steps,
                }))
            }
            Some(Tok::LParen | Tok::Literal(_) | Tok::Number(_)) => self.filter_expr(),
            Some(Tok::Name(_)) if !self.at_step_start() => self.filter_expr(),
            _ if self.at_step_start() => {
                let steps = self.relative_steps()?;
                Ok(Expr::Path(Path {
                    start: PathStart::Context,
                    steps,
                }))
            }
            _ => Err(self.err("expected an expression")),
        }
    }

    fn filter_expr(&mut self) -> Result<Expr, XPathParseError> {
        let primary = match self.next_tok() {
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                e
            }
            Some(Tok::Literal(s)) => Expr::Literal(s),
            Some(Tok::Number(n)) => Expr::Number(n),
            Some(Tok::Name(name)) => {
                // Function call.
                self.expect(&Tok::LParen)?;
                let mut args = Vec::new();
                if self.peek() != Some(&Tok::RParen) {
                    loop {
                        args.push(self.expr()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RParen)?;
                Expr::Call(name, args)
            }
            other => {
                return Err(self.err(format!(
                    "unexpected token {} in expression",
                    other.map_or_else(|| "<eof>".to_string(), |t| t.to_string())
                )))
            }
        };
        let predicates = self.predicates()?;
        let steps = self.trailing_steps()?;
        if predicates.is_empty() && steps.is_empty() {
            Ok(primary)
        } else {
            Ok(Expr::Filter {
                primary: Box::new(primary),
                predicates,
                steps,
            })
        }
    }

    /// Steps following a primary/variable: `/a/b`, `//c`, or nothing.
    fn trailing_steps(&mut self) -> Result<Vec<Step>, XPathParseError> {
        let mut steps = Vec::new();
        loop {
            if self.eat(&Tok::Slash) {
                steps.push(self.step()?);
            } else if self.eat(&Tok::DoubleSlash) {
                steps.push(descendant_or_self_node());
                steps.push(self.step()?);
            } else {
                return Ok(steps);
            }
        }
    }

    fn relative_steps(&mut self) -> Result<Vec<Step>, XPathParseError> {
        let mut steps = vec![self.step()?];
        steps.extend(self.trailing_steps()?);
        Ok(steps)
    }

    fn predicates(&mut self) -> Result<Vec<Expr>, XPathParseError> {
        let mut out = Vec::new();
        while self.eat(&Tok::LBracket) {
            out.push(self.expr()?);
            self.expect(&Tok::RBracket)?;
        }
        Ok(out)
    }

    fn step(&mut self) -> Result<Step, XPathParseError> {
        // Abbreviations.
        if self.eat(&Tok::Dot) {
            return Ok(Step {
                axis: Axis::SelfAxis,
                test: NodeTest::Node,
                predicates: self.predicates()?,
            });
        }
        if self.eat(&Tok::DotDot) {
            return Ok(Step {
                axis: Axis::Parent,
                test: NodeTest::Node,
                predicates: self.predicates()?,
            });
        }
        let axis = if self.eat(&Tok::At) {
            Axis::Attribute
        } else if let (Some(Tok::Name(n)), Some(Tok::DoubleColon)) = (self.peek(), self.peek2()) {
            let axis = Axis::from_name(n).ok_or_else(|| self.err(format!("unknown axis {n}")))?;
            self.pos += 2;
            axis
        } else {
            Axis::Child
        };
        let test = match self.next_tok() {
            Some(Tok::Star) => NodeTest::Wildcard,
            Some(Tok::Name(n)) => {
                if self.peek() == Some(&Tok::LParen) {
                    let t = match n.as_str() {
                        "text" => NodeTest::Text,
                        "node" => NodeTest::Node,
                        "comment" => NodeTest::Comment,
                        other => return Err(self.err(format!("unknown node test {other}()"))),
                    };
                    self.pos += 1;
                    self.expect(&Tok::RParen)?;
                    t
                } else {
                    NodeTest::Name(n)
                }
            }
            other => {
                return Err(self.err(format!(
                    "expected a node test, found {}",
                    other.map_or_else(|| "<eof>".to_string(), |t| t.to_string())
                )))
            }
        };
        Ok(Step {
            axis,
            test,
            predicates: self.predicates()?,
        })
    }
}

/// The `descendant-or-self::node()` step inserted by the `//` abbreviation.
pub(crate) fn descendant_or_self_node() -> Step {
    Step {
        axis: Axis::DescendantOrSelf,
        test: NodeTest::Node,
        predicates: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Expr {
        parse(s).unwrap_or_else(|e| panic!("{s}: {e}"))
    }

    #[test]
    fn absolute_and_abbreviated() {
        assert_eq!(p("/").to_string(), "/");
        assert_eq!(p("/review/track").to_string(), "/review/track");
        assert_eq!(p("//rev/name/text()").to_string(), "//rev/name/text()");
        assert_eq!(p("a//b").to_string(), "a//b");
    }

    #[test]
    fn predicates_positions() {
        assert_eq!(
            p("/review/track[2]/rev[5]").to_string(),
            "/review/track[2]/rev[5]"
        );
        match p("a[position() = last()]") {
            Expr::Path(path) => {
                assert_eq!(path.steps[0].predicates.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn axes() {
        assert_eq!(p("..").to_string(), "..");
        assert_eq!(p("a/..").to_string(), "a/..");
        assert_eq!(p("@id").to_string(), "@id");
        assert_eq!(
            p("ancestor::track/preceding-sibling::*").to_string(),
            "ancestor::track/preceding-sibling::*"
        );
    }

    #[test]
    fn variables() {
        assert_eq!(p("$x").to_string(), "$x");
        assert_eq!(p("$lr/sub/auts").to_string(), "$lr/sub/auts");
        assert_eq!(p("$x[1]/a").to_string(), "($x)[1]/a");
        assert_eq!(p("$H/../aut").to_string(), "$H/../aut");
    }

    #[test]
    fn functions_and_operators() {
        assert_eq!(p("count($D) > 4").to_string(), "count($D) > 4");
        assert_eq!(
            p("not(a = 'x') and b != 2").to_string(),
            "not(a = \"x\") and b != 2"
        );
        assert_eq!(p("1 + 2 * 3").to_string(), "1 + 2 * 3");
        match p("1 + 2 * 3") {
            Expr::Binary(_, BinOp::Add, rhs) => {
                assert!(matches!(*rhs, Expr::Binary(_, BinOp::Mul, _)));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(p("-a").to_string(), "-a");
        assert_eq!(p("a | b").to_string(), "a | b");
        assert_eq!(p("6 div 2 mod 2").to_string(), "6 div 2 mod 2");
    }

    #[test]
    fn star_disambiguation() {
        // Wildcard in step position, multiplication in operator position.
        assert_eq!(p("a/*").to_string(), "a/*");
        match p("2 * 3") {
            Expr::Binary(_, BinOp::Mul, _) => {}
            other => panic!("{other:?}"),
        }
        match p("a[b * 2]") {
            Expr::Path(path) => {
                assert!(matches!(
                    path.steps[0].predicates[0],
                    Expr::Binary(_, BinOp::Mul, _)
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nested_paths_in_predicates() {
        let e = p("//rev[name/text() = 'Ann']/sub");
        assert_eq!(e.to_string(), "//rev[name/text() = \"Ann\"]/sub");
    }

    #[test]
    fn parenthesized_filter() {
        assert_eq!(p("(//a)[1]").to_string(), "(//a)[1]");
        assert_eq!(p("(1 + 2)").to_string(), "1 + 2");
    }

    #[test]
    fn errors() {
        assert!(parse("").is_err());
        assert!(parse("/a[").is_err());
        assert!(parse("/a]").is_err());
        assert!(parse("sideways::a").is_err());
        assert!(parse("f(,)").is_err());
        assert!(parse("a/frob()").is_err());
    }
}

//! Thread-local evaluation step budget.
//!
//! A *step* is one node considered by XPath axis traversal or one binding
//! iterated by XQuery FLWOR/quantifier evaluation — the same events the
//! `xpath_nodes_visited` / `xquery_bindings_visited` observability
//! counters record. Arming a budget caps the total steps the current
//! thread may spend before evaluation bails out with
//! `EvalError::BudgetExhausted`; the checker uses this to bound its
//! optimized pre-update check and degrade gracefully to the baseline pass
//! instead of hanging on a pathological constraint/document pair.
//!
//! The budget is thread-local and scoped by an RAII [`BudgetGuard`], so a
//! budgeted region cannot leak into later evaluations (including the
//! baseline fallback, which must run unbudgeted) even on early return or
//! panic.

use std::cell::Cell;

thread_local! {
    static REMAINING: Cell<Option<u64>> = const { Cell::new(None) };
}

/// A step allowance for one budgeted evaluation region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalBudget {
    steps: u64,
}

impl EvalBudget {
    /// A budget of `steps` evaluation steps.
    pub fn new(steps: u64) -> EvalBudget {
        EvalBudget { steps }
    }

    /// The step allowance.
    pub fn steps(self) -> u64 {
        self.steps
    }
}

/// The marker error returned by [`charge`] when the armed budget runs out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exhausted;

/// Scope guard restoring the previously armed budget (usually none) on
/// drop.
#[derive(Debug)]
pub struct BudgetGuard {
    prev: Option<u64>,
}

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        REMAINING.with(|r| r.set(self.prev));
    }
}

/// Arm `budget` for the current thread until the returned guard drops.
/// Nested arms stack: the inner guard restores the outer allowance.
#[must_use = "the budget is disarmed when the guard drops"]
pub fn arm(budget: EvalBudget) -> BudgetGuard {
    let prev = REMAINING.with(|r| r.replace(Some(budget.steps)));
    BudgetGuard { prev }
}

/// The remaining allowance, or `None` when no budget is armed.
pub fn remaining() -> Option<u64> {
    REMAINING.with(|r| r.get())
}

/// Deduct `n` steps from the armed budget (no-op when disarmed). Fails
/// once the allowance would go negative; the allowance is pinned at zero
/// so every later charge also fails until the guard drops.
#[inline]
pub fn charge(n: u64) -> Result<(), Exhausted> {
    REMAINING.with(|r| match r.get() {
        None => Ok(()),
        Some(rem) if rem >= n => {
            r.set(Some(rem - n));
            Ok(())
        }
        Some(_) => {
            r.set(Some(0));
            Err(Exhausted)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_charge_is_free() {
        assert_eq!(remaining(), None);
        assert!(charge(u64::MAX).is_ok());
    }

    #[test]
    fn charges_deduct_and_exhaust() {
        let g = arm(EvalBudget::new(5));
        assert!(charge(3).is_ok());
        assert_eq!(remaining(), Some(2));
        assert!(charge(3).is_err());
        assert_eq!(remaining(), Some(0));
        assert!(charge(0).is_ok());
        assert!(charge(1).is_err());
        drop(g);
        assert_eq!(remaining(), None);
        assert!(charge(100).is_ok());
    }

    #[test]
    fn guards_nest_and_restore() {
        let outer = arm(EvalBudget::new(10));
        assert!(charge(4).is_ok());
        {
            let _inner = arm(EvalBudget::new(2));
            assert!(charge(2).is_ok());
            assert_eq!(remaining(), Some(0));
        }
        // Outer allowance unaffected by the inner region.
        assert_eq!(remaining(), Some(6));
        drop(outer);
        assert_eq!(remaining(), None);
    }
}

//! Flat XPath IR: a compile-once form of [`crate::ast::Expr`] with
//! interned name tests, slot-numbered variables and a stack-driven
//! existential walk.
//!
//! The tree-walking interpreter in [`crate::eval`] re-resolves variable
//! names through a `HashMap` environment and compares tag names as
//! strings on every candidate. Compiling flattens the expression tree
//! into one arena ([`Program::exprs`]) addressed by `u32` ids, replaces
//! variable names with dense slot numbers, and pools every name test in
//! [`Program::names`]. At evaluation start the pool is resolved *once*
//! against the document's [`xic_xml::SymbolTable`]; from then on an
//! element name test is a single integer compare (a name the table has
//! never seen matches nothing, soundly, because the table is
//! append-only).
//!
//! The evaluator mirrors the interpreter's observable semantics exactly —
//! same short-circuit rules, same document-order normalization and
//! `sibling_safe` skip, same `EvalBudget` charging and `xic-obs`
//! counters, same error messages. The hot existential path walk
//! (`path_exists_from`), whose recursion depth scales with the number
//! of location steps times the tree fan-out, runs on an explicit frame
//! stack instead of the call stack; fixed-depth structural recursion
//! (predicate expressions, operand trees) remains recursive. The
//! difftest three-way oracle holds this file to the interpreter answer
//! for every generated query.

use crate::ast::{Axis, BinOp, Expr, NodeTest, PathStart, Step};
use crate::eval::{axis_iter, compare_values, dedupe_doc_order, same_depth, EvalError};
use crate::value::{NodeRef, XValue};
use std::collections::HashMap;
use xic_xml::{Document, NodeKind, Symbol};

/// Index of an expression node in [`Program::exprs`].
pub type ExprId = u32;

/// Index into the compile-time name pool ([`Program::names`]).
pub type NameId = u32;

/// Index of a variable slot.
pub type SlotId = u32;

/// A pre-resolved node test: element names are pool indexes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrTest {
    /// Name test (pool index).
    Name(NameId),
    /// `*`
    Wildcard,
    /// `text()`
    Text,
    /// `node()`
    Node,
    /// `comment()`
    Comment,
}

/// One compiled location step.
#[derive(Debug, Clone, PartialEq)]
pub struct IrStep {
    /// The axis.
    pub axis: Axis,
    /// The pre-resolved node test.
    pub test: IrTest,
    /// Predicates, applied in order.
    pub predicates: Box<[ExprId]>,
}

/// Where a compiled path starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrStart {
    /// Absolute: the document node.
    Root,
    /// The context item.
    Context,
    /// A variable slot.
    Slot(SlotId),
}

/// Pre-resolved function discriminant (no per-call string matching).
/// Arity is still checked at evaluation time, like the interpreter.
#[derive(Debug, Clone, PartialEq)]
pub enum FnOp {
    /// `position()`
    Position,
    /// `last()`
    Last,
    /// `true()`
    True,
    /// `false()`
    False,
    /// `count(ns)`
    Count,
    /// `sum(ns)`
    Sum,
    /// `not(v)`
    Not,
    /// `boolean(v)`
    Boolean,
    /// `string([v])`
    String,
    /// `number([v])`
    Number,
    /// `concat(a, b, …)`
    Concat,
    /// `contains(h, n)`
    Contains,
    /// `starts-with(h, n)`
    StartsWith,
    /// `string-length(s)`
    StringLength,
    /// `normalize-space([s])`
    NormalizeSpace,
    /// `name([ns])`
    Name,
    /// `local-name([ns])`
    LocalName,
    /// A function the compiler does not know; errors when evaluated,
    /// exactly like the interpreter's eval-time dispatch.
    Unknown(Box<str>),
}

impl FnOp {
    fn display_name(&self) -> &str {
        match self {
            FnOp::Position => "position",
            FnOp::Last => "last",
            FnOp::True => "true",
            FnOp::False => "false",
            FnOp::Count => "count",
            FnOp::Sum => "sum",
            FnOp::Not => "not",
            FnOp::Boolean => "boolean",
            FnOp::String => "string",
            FnOp::Number => "number",
            FnOp::Concat => "concat",
            FnOp::Contains => "contains",
            FnOp::StartsWith => "starts-with",
            FnOp::StringLength => "string-length",
            FnOp::NormalizeSpace => "normalize-space",
            FnOp::Name => "name",
            FnOp::LocalName => "local-name",
            FnOp::Unknown(n) => n,
        }
    }

    fn from_name(name: &str) -> FnOp {
        match name {
            "position" => FnOp::Position,
            "last" => FnOp::Last,
            "true" => FnOp::True,
            "false" => FnOp::False,
            "count" => FnOp::Count,
            "sum" => FnOp::Sum,
            "not" => FnOp::Not,
            "boolean" => FnOp::Boolean,
            "string" => FnOp::String,
            "number" => FnOp::Number,
            "concat" => FnOp::Concat,
            "contains" => FnOp::Contains,
            "starts-with" => FnOp::StartsWith,
            "string-length" => FnOp::StringLength,
            "normalize-space" => FnOp::NormalizeSpace,
            "name" => FnOp::Name,
            "local-name" => FnOp::LocalName,
            other => FnOp::Unknown(other.into()),
        }
    }
}

/// One flat expression node.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// String literal.
    Literal(String),
    /// Numeric literal.
    Number(f64),
    /// Unary minus.
    Neg(ExprId),
    /// A location path.
    Path {
        /// Starting point.
        start: IrStart,
        /// Compiled steps.
        steps: Box<[IrStep]>,
    },
    /// `(expr)[pred]/steps`.
    Filter {
        /// The primary expression.
        primary: ExprId,
        /// Predicates on the primary.
        predicates: Box<[ExprId]>,
        /// Trailing steps.
        steps: Box<[IrStep]>,
    },
    /// Binary operation.
    Binary(ExprId, BinOp, ExprId),
    /// Function call.
    Call(FnOp, Box<[ExprId]>),
}

/// A compiled XPath program: a flat expression arena plus its name pool
/// and slot table. One program may hold several independently rooted
/// expressions (the XQuery compiler pools every embedded XPath leaf of a
/// query into a single program).
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Flat expression arena.
    pub exprs: Vec<Inst>,
    /// Name-test pool (strings, document-independent).
    pub names: Vec<String>,
    /// Slot → variable name (used for error messages and late binding).
    pub var_names: Vec<String>,
}

impl Program {
    /// Resolves the name pool against a document's symbol table. Done
    /// once per evaluation; `None` means the name was never interned, so
    /// the corresponding element name test can never match.
    pub fn resolve(&self, doc: &Document) -> Vec<Option<Symbol>> {
        let table = doc.symbols();
        self.names.iter().map(|n| table.lookup(n)).collect()
    }

    /// Number of variable slots (bound or free).
    pub fn num_slots(&self) -> usize {
        self.var_names.len()
    }

    /// The slot of a variable name, if the program references it.
    pub fn slot_of(&self, name: &str) -> Option<SlotId> {
        self.var_names
            .iter()
            .position(|v| v == name)
            .map(|i| u32::try_from(i).expect("slot count fits u32"))
    }

    /// Evaluates a rooted expression to a node-set from the document
    /// node, with no variables bound (the difftest oracle's entry point).
    pub fn evaluate_nodes(&self, root: ExprId, doc: &Document) -> Result<Vec<NodeRef>, EvalError> {
        let resolved = self.resolve(doc);
        let slots = vec![None; self.num_slots()];
        let scope = Scope {
            prog: self,
            doc,
            item: NodeRef::Node(doc.document_node()),
            position: 1,
            size: 1,
            slots: &slots,
            resolved: &resolved,
        };
        match eval(root, &scope)? {
            XValue::Nodes(ns) => Ok(ns),
            other => Err(EvalError::Type(format!(
                "expected a node-set, got {other:?}"
            ))),
        }
    }

    /// Existential evaluation of a rooted expression from the document
    /// node with no variables bound.
    pub fn evaluate_exists(&self, root: ExprId, doc: &Document) -> Result<bool, EvalError> {
        let resolved = self.resolve(doc);
        let slots = vec![None; self.num_slots()];
        let scope = Scope {
            prog: self,
            doc,
            item: NodeRef::Node(doc.document_node()),
            position: 1,
            size: 1,
            slots: &slots,
            resolved: &resolved,
        };
        eval_exists(root, &scope)
    }
}

/// Compiles one expression into a fresh single-rooted program. Free
/// variables get never-bound slots that raise `UndefinedVariable` when
/// (and only when) the evaluator actually reads them, mirroring the
/// interpreter.
pub fn compile(expr: &Expr) -> (Program, ExprId) {
    let mut b = Builder::new();
    let root = b.add_expr(expr, &|_| None);
    (b.finish(), root)
}

/// Incremental program builder; the XQuery compiler drives one of these
/// across every embedded XPath leaf so they share a pool and slot table.
#[derive(Debug, Default)]
pub struct Builder {
    prog: Program,
    name_ids: HashMap<String, NameId>,
    /// Free variables (not resolved by any scope) share one slot per name.
    free_slots: HashMap<String, SlotId>,
}

impl Builder {
    /// An empty builder.
    pub fn new() -> Builder {
        Builder::default()
    }

    /// Allocates a fresh slot for `name` (one per binding site; the
    /// caller manages lexical scoping).
    pub fn fresh_slot(&mut self, name: &str) -> SlotId {
        let id = u32::try_from(self.prog.var_names.len()).expect("slot count fits u32");
        self.prog.var_names.push(name.to_string());
        id
    }

    fn name_id(&mut self, name: &str) -> NameId {
        if let Some(&id) = self.name_ids.get(name) {
            return id;
        }
        let id = u32::try_from(self.prog.names.len()).expect("name pool fits u32");
        self.prog.names.push(name.to_string());
        self.name_ids.insert(name.to_string(), id);
        id
    }

    fn slot_for_var(&mut self, name: &str, scope: &dyn Fn(&str) -> Option<SlotId>) -> SlotId {
        if let Some(s) = scope(name) {
            return s;
        }
        if let Some(&s) = self.free_slots.get(name) {
            return s;
        }
        let s = self.fresh_slot(name);
        self.free_slots.insert(name.to_string(), s);
        s
    }

    fn push(&mut self, inst: Inst) -> ExprId {
        let id = u32::try_from(self.prog.exprs.len()).expect("expr arena fits u32");
        self.prog.exprs.push(inst);
        id
    }

    fn add_test(&mut self, test: &NodeTest) -> IrTest {
        match test {
            NodeTest::Name(n) => IrTest::Name(self.name_id(n)),
            NodeTest::Wildcard => IrTest::Wildcard,
            NodeTest::Text => IrTest::Text,
            NodeTest::Node => IrTest::Node,
            NodeTest::Comment => IrTest::Comment,
        }
    }

    fn add_steps(&mut self, steps: &[Step], scope: &dyn Fn(&str) -> Option<SlotId>) -> Box<[IrStep]> {
        steps
            .iter()
            .map(|s| IrStep {
                axis: s.axis,
                test: self.add_test(&s.test),
                predicates: s
                    .predicates
                    .iter()
                    .map(|p| self.add_expr(p, scope))
                    .collect(),
            })
            .collect()
    }

    /// Compiles `expr` into the arena, resolving variable names through
    /// `scope` (a name the scope does not know becomes a shared free
    /// slot). Returns the root id.
    pub fn add_expr(&mut self, expr: &Expr, scope: &dyn Fn(&str) -> Option<SlotId>) -> ExprId {
        match expr {
            Expr::Literal(s) => self.push(Inst::Literal(s.clone())),
            Expr::Number(n) => self.push(Inst::Number(*n)),
            Expr::Neg(e) => {
                let inner = self.add_expr(e, scope);
                self.push(Inst::Neg(inner))
            }
            Expr::Path(p) => {
                let start = match &p.start {
                    PathStart::Root => IrStart::Root,
                    PathStart::Context => IrStart::Context,
                    PathStart::Variable(v) => IrStart::Slot(self.slot_for_var(v, scope)),
                };
                let steps = self.add_steps(&p.steps, scope);
                self.push(Inst::Path { start, steps })
            }
            Expr::Filter {
                primary,
                predicates,
                steps,
            } => {
                let primary = self.add_expr(primary, scope);
                let predicates = predicates.iter().map(|p| self.add_expr(p, scope)).collect();
                let steps = self.add_steps(steps, scope);
                self.push(Inst::Filter {
                    primary,
                    predicates,
                    steps,
                })
            }
            Expr::Binary(a, op, b) => {
                let a = self.add_expr(a, scope);
                let b = self.add_expr(b, scope);
                self.push(Inst::Binary(a, *op, b))
            }
            Expr::Call(name, args) => {
                let args = args.iter().map(|a| self.add_expr(a, scope)).collect();
                self.push(Inst::Call(FnOp::from_name(name), args))
            }
        }
    }

    /// Finalizes the program.
    pub fn finish(self) -> Program {
        self.prog
    }
}

/// The dynamic context for compiled evaluation: document, context item,
/// slot values, and the per-evaluation resolved name pool. Borrowed
/// slices make per-predicate context copies slot-free and cheap — the
/// compiled counterpart of [`crate::eval::Context`] minus the `HashMap`
/// clone on every rebind.
#[derive(Debug, Clone)]
pub struct Scope<'p, 'd, 'a> {
    /// The owning program.
    pub prog: &'p Program,
    /// The document.
    pub doc: &'d Document,
    /// Context item.
    pub item: NodeRef,
    /// 1-based context position.
    pub position: usize,
    /// Context size.
    pub size: usize,
    /// Slot values; `None` is "unbound" and reads raise
    /// `UndefinedVariable`.
    pub slots: &'a [Option<XValue>],
    /// `resolved[name_id]`: the document symbol for each pooled name.
    pub resolved: &'a [Option<Symbol>],
}

impl<'p, 'd, 'a> Scope<'p, 'd, 'a> {
    fn at(&self, item: NodeRef, position: usize, size: usize) -> Scope<'p, 'd, 'a> {
        Scope {
            item,
            position,
            size,
            ..self.clone()
        }
    }

    fn slot(&self, s: SlotId) -> Result<&'a XValue, EvalError> {
        self.slots[s as usize]
            .as_ref()
            .ok_or_else(|| EvalError::UndefinedVariable(self.prog.var_names[s as usize].clone()))
    }

    fn var_name(&self, s: SlotId) -> &str {
        &self.prog.var_names[s as usize]
    }

    fn inst(&self, id: ExprId) -> &'p Inst {
        &self.prog.exprs[id as usize]
    }
}

#[inline]
fn charge_budget(n: u64) -> Result<(), EvalError> {
    crate::budget::charge(n).map_err(|_| EvalError::BudgetExhausted)
}

/// Pre-resolved node test. Element name tests are integer compares
/// against the node's cached symbol; attribute name tests remain string
/// compares (attribute refs carry their name).
fn node_test(scope: &Scope, item: &NodeRef, test: &IrTest) -> bool {
    match item {
        NodeRef::Attr { name, .. } => match test {
            IrTest::Name(nid) => scope.prog.names[*nid as usize] == *name,
            IrTest::Wildcard | IrTest::Node => true,
            _ => false,
        },
        NodeRef::Node(n) => match test {
            IrTest::Name(nid) => match scope.resolved[*nid as usize] {
                Some(sym) => scope.doc.symbol(*n) == Some(sym),
                // Never-interned name: no element can carry it.
                None => false,
            },
            // Elements are exactly the nodes with a tag-name symbol.
            IrTest::Wildcard => scope.doc.symbol(*n).is_some(),
            IrTest::Text => matches!(scope.doc.node(*n).kind, NodeKind::Text(_)),
            IrTest::Node => true,
            IrTest::Comment => matches!(scope.doc.node(*n).kind, NodeKind::Comment(_)),
        },
    }
}

/// Evaluates a compiled expression (materializing), mirroring
/// [`crate::eval::evaluate`].
pub fn eval(id: ExprId, scope: &Scope) -> Result<XValue, EvalError> {
    match scope.inst(id) {
        Inst::Literal(s) => Ok(XValue::Str(s.clone())),
        Inst::Number(n) => Ok(XValue::Num(*n)),
        Inst::Neg(e) => Ok(XValue::Num(-eval(*e, scope)?.to_num(scope.doc))),
        Inst::Path { start, steps } => Ok(XValue::Nodes(eval_path(*start, steps, scope)?)),
        Inst::Filter {
            primary,
            predicates,
            steps,
        } => {
            let v = eval(*primary, scope)?;
            let mut nodes = match v {
                XValue::Nodes(ns) => ns,
                other if predicates.is_empty() && steps.is_empty() => return Ok(other),
                other => {
                    return Err(EvalError::Type(format!(
                        "cannot filter non-node-set value {other:?}"
                    )))
                }
            };
            for &pred in predicates.iter() {
                nodes = apply_predicate(&nodes, pred, scope, false)?;
            }
            for step in steps.iter() {
                nodes = eval_step(&nodes, step, scope)?;
            }
            Ok(XValue::Nodes(nodes))
        }
        Inst::Binary(a, op, b) => eval_binary(*a, *op, *b, scope),
        Inst::Call(op, args) => eval_call(op, args, scope),
    }
}

/// Existential evaluation, mirroring [`crate::eval::evaluate_exists`].
pub fn eval_exists(id: ExprId, scope: &Scope) -> Result<bool, EvalError> {
    match scope.inst(id) {
        Inst::Literal(s) => Ok(!s.is_empty()),
        Inst::Number(n) => Ok(*n != 0.0 && !n.is_nan()),
        Inst::Path { start, steps } => {
            if let IrStart::Slot(s) = start {
                if steps.is_empty() {
                    return Ok(scope.slot(*s)?.to_bool());
                }
            }
            let input = path_start_nodes(*start, steps, scope)?;
            path_exists_from(&input, steps, scope)
        }
        Inst::Filter {
            primary,
            predicates,
            steps,
        } if predicates.is_empty() => match eval(*primary, scope)? {
            XValue::Nodes(ns) => path_exists_from(&ns, steps, scope),
            other if steps.is_empty() => Ok(other.to_bool()),
            other => Err(EvalError::Type(format!(
                "cannot filter non-node-set value {other:?}"
            ))),
        },
        Inst::Binary(a, BinOp::Or, b) => Ok(eval_exists(*a, scope)? || eval_exists(*b, scope)?),
        Inst::Binary(a, BinOp::And, b) => Ok(eval_exists(*a, scope)? && eval_exists(*b, scope)?),
        Inst::Call(op, args) => match (op, args.len()) {
            (FnOp::True, 0) => Ok(true),
            (FnOp::False, 0) => Ok(false),
            (FnOp::Not, 1) => Ok(!eval_exists(args[0], scope)?),
            (FnOp::Boolean, 1) => eval_exists(args[0], scope),
            _ => Ok(eval(id, scope)?.to_bool()),
        },
        _ => Ok(eval(id, scope)?.to_bool()),
    }
}

/// Sequence-nonemptiness counterpart, mirroring
/// [`crate::eval::evaluate_nonempty`].
pub fn eval_nonempty(id: ExprId, scope: &Scope) -> Result<bool, EvalError> {
    match scope.inst(id) {
        Inst::Path { start, steps } => {
            if let IrStart::Slot(s) = start {
                if steps.is_empty() {
                    return match scope.slot(*s)? {
                        XValue::Nodes(ns) => Ok(!ns.is_empty()),
                        _ => Ok(true),
                    };
                }
            }
            let input = path_start_nodes(*start, steps, scope)?;
            path_exists_from(&input, steps, scope)
        }
        Inst::Filter {
            primary,
            predicates,
            steps,
        } if predicates.is_empty() => match eval(*primary, scope)? {
            XValue::Nodes(ns) => path_exists_from(&ns, steps, scope),
            _ if steps.is_empty() => Ok(true),
            other => Err(EvalError::Type(format!(
                "cannot filter non-node-set value {other:?}"
            ))),
        },
        _ => Ok(match eval(id, scope)? {
            XValue::Nodes(ns) => !ns.is_empty(),
            _ => true,
        }),
    }
}

/// Evaluates a rooted expression that may be a bare `$x` holding any
/// value — the compiled counterpart of [`crate::eval::eval_variable`],
/// used for operands and by the XQuery layer.
pub fn eval_operand(id: ExprId, scope: &Scope) -> Result<XValue, EvalError> {
    if let Inst::Path { start, steps } = scope.inst(id) {
        if let IrStart::Slot(s) = start {
            if steps.is_empty() {
                return scope.slot(*s).cloned();
            }
        }
        return Ok(XValue::Nodes(eval_path(*start, steps, scope)?));
    }
    eval(id, scope)
}

fn path_start_nodes(
    start: IrStart,
    steps: &[IrStep],
    scope: &Scope,
) -> Result<Vec<NodeRef>, EvalError> {
    match start {
        IrStart::Root => Ok(vec![NodeRef::Node(scope.doc.document_node())]),
        IrStart::Context => Ok(vec![scope.item.clone()]),
        IrStart::Slot(s) => match scope.slot(s)? {
            XValue::Nodes(ns) => Ok(ns.clone()),
            other => {
                let v = scope.var_name(s);
                if steps.is_empty() {
                    return Err(EvalError::Type(format!(
                        "variable ${v} holds a non-node-set {other:?} (evaluate it as an \
                         expression instead)"
                    )));
                }
                Err(EvalError::Type(format!(
                    "cannot navigate from non-node-set variable ${v}"
                )))
            }
        },
    }
}

fn eval_path(start: IrStart, steps: &[IrStep], scope: &Scope) -> Result<Vec<NodeRef>, EvalError> {
    let mut cur = path_start_nodes(start, steps, scope)?;
    for step in steps {
        cur = eval_step(&cur, step, scope)?;
    }
    Ok(cur)
}

/// One frame of the explicit existential walk: a source of candidate
/// items entering step `depth`.
enum Frame<'d> {
    /// Raw axis candidates for the *previous* step, still to be charged
    /// and node-tested before they become inputs of step `depth`.
    Axis {
        depth: usize,
        iter: Box<dyn Iterator<Item = NodeRef> + 'd>,
    },
    /// Already-tested items entering step `depth` (the initial input, or
    /// a materialized predicate-step result).
    Ready {
        depth: usize,
        iter: std::vec::IntoIter<NodeRef>,
    },
}

/// Depth-first existential path evaluation on an explicit frame stack:
/// true iff applying `steps` to `input` yields at least one node. Same
/// traversal order, budget charges and obs counters as the interpreter's
/// recursive [`crate::eval`] version — predicate-free steps stream their
/// axis candidates one at a time (each charged before its node test) and
/// descend immediately, so the walk stops at the first witness; steps
/// with predicates materialize one step's per-item result and continue
/// existentially from it.
pub(crate) fn path_exists_from(
    input: &[NodeRef],
    steps: &[IrStep],
    scope: &Scope,
) -> Result<bool, EvalError> {
    if steps.is_empty() {
        return Ok(!input.is_empty());
    }
    let mut stack: Vec<Frame> = vec![Frame::Ready {
        depth: 0,
        iter: Vec::from(input).into_iter(),
    }];
    while let Some(top) = stack.last_mut() {
        // Pull the next item entering `depth`, charging raw axis
        // candidates exactly as the interpreter does.
        let (depth, item) = match top {
            Frame::Ready { depth, iter } => match iter.next() {
                Some(item) => (*depth, item),
                None => {
                    stack.pop();
                    continue;
                }
            },
            Frame::Axis { depth, iter } => {
                let step = &steps[*depth - 1];
                let mut found = None;
                for n in iter.by_ref() {
                    xic_obs::incr(xic_obs::Counter::XpathNodesVisited);
                    charge_budget(1)?;
                    if node_test(scope, &n, &step.test) {
                        found = Some(n);
                        break;
                    }
                }
                match found {
                    Some(item) => (*depth, item),
                    None => {
                        stack.pop();
                        continue;
                    }
                }
            }
        };
        if depth == steps.len() {
            return Ok(true);
        }
        let step = &steps[depth];
        if step.predicates.is_empty() {
            stack.push(Frame::Axis {
                depth: depth + 1,
                iter: axis_iter(scope.doc, &item, step.axis),
            });
        } else {
            let tested = step_once(&item, step, scope)?;
            stack.push(Frame::Ready {
                depth: depth + 1,
                iter: tested.into_iter(),
            });
        }
    }
    Ok(false)
}

fn step_once(item: &NodeRef, step: &IrStep, scope: &Scope) -> Result<Vec<NodeRef>, EvalError> {
    let mut visited = 0u64;
    let mut tested: Vec<NodeRef> = axis_iter(scope.doc, item, step.axis)
        .inspect(|_| visited += 1)
        .filter(|n| node_test(scope, n, &step.test))
        .collect();
    xic_obs::add(xic_obs::Counter::XpathNodesVisited, visited);
    charge_budget(visited)?;
    for &pred in step.predicates.iter() {
        tested = apply_predicate(&tested, pred, scope, step.axis.is_reverse())?;
    }
    Ok(tested)
}

fn eval_step(input: &[NodeRef], step: &IrStep, scope: &Scope) -> Result<Vec<NodeRef>, EvalError> {
    let mut merged: Vec<NodeRef> = Vec::new();
    for item in input {
        merged.extend(step_once(item, step, scope)?);
    }
    if input.len() <= 1 {
        if step.axis.is_reverse() {
            merged.reverse();
        }
        return Ok(merged);
    }
    let sibling_safe = matches!(step.axis, Axis::Child | Axis::Attribute | Axis::SelfAxis)
        && same_depth(scope.doc, input);
    if !sibling_safe {
        dedupe_doc_order(scope.doc, &mut merged);
    }
    Ok(merged)
}

fn apply_predicate(
    nodes: &[NodeRef],
    pred: ExprId,
    scope: &Scope,
    reverse: bool,
) -> Result<Vec<NodeRef>, EvalError> {
    let size = nodes.len();
    let mut out = Vec::with_capacity(size);
    for (i, n) in nodes.iter().enumerate() {
        let position = if reverse { size - i } else { i + 1 };
        let sub = scope.at(n.clone(), position, size);
        let v = eval(pred, &sub)?;
        let keep = match v {
            XValue::Num(k) => (position as f64) == k,
            other => other.to_bool(),
        };
        if keep {
            out.push(n.clone());
        }
    }
    Ok(out)
}

fn eval_binary(a: ExprId, op: BinOp, b: ExprId, scope: &Scope) -> Result<XValue, EvalError> {
    match op {
        BinOp::Or => {
            return Ok(XValue::Bool(
                eval(a, scope)?.to_bool() || eval(b, scope)?.to_bool(),
            ))
        }
        BinOp::And => {
            return Ok(XValue::Bool(
                eval(a, scope)?.to_bool() && eval(b, scope)?.to_bool(),
            ))
        }
        _ => {}
    }
    let va = eval_operand(a, scope)?;
    let vb = eval_operand(b, scope)?;
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
            let x = va.to_num(scope.doc);
            let y = vb.to_num(scope.doc);
            let r = match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
                BinOp::Mod => x % y,
                _ => unreachable!(),
            };
            Ok(XValue::Num(r))
        }
        BinOp::Union => match (va, vb) {
            (XValue::Nodes(mut x), XValue::Nodes(y)) => {
                x.extend(y);
                dedupe_doc_order(scope.doc, &mut x);
                Ok(XValue::Nodes(x))
            }
            _ => Err(EvalError::Type("union of non-node-sets".to_string())),
        },
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            Ok(XValue::Bool(compare_values(&va, op, &vb, scope.doc)))
        }
        BinOp::Or | BinOp::And => unreachable!("handled above"),
    }
}

fn eval_call(op: &FnOp, args: &[ExprId], scope: &Scope) -> Result<XValue, EvalError> {
    let name = op.display_name();
    let arity = |n: usize| -> Result<(), EvalError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(EvalError::BadCall(format!(
                "{name}() expects {n} argument(s), got {}",
                args.len()
            )))
        }
    };
    match op {
        FnOp::Position => {
            arity(0)?;
            Ok(XValue::Num(scope.position as f64))
        }
        FnOp::Last => {
            arity(0)?;
            Ok(XValue::Num(scope.size as f64))
        }
        FnOp::True => {
            arity(0)?;
            Ok(XValue::Bool(true))
        }
        FnOp::False => {
            arity(0)?;
            Ok(XValue::Bool(false))
        }
        FnOp::Count => {
            arity(1)?;
            match eval_operand(args[0], scope)? {
                XValue::Nodes(ns) => Ok(XValue::Num(ns.len() as f64)),
                other => Err(EvalError::Type(format!("count() of {other:?}"))),
            }
        }
        FnOp::Sum => {
            arity(1)?;
            match eval_operand(args[0], scope)? {
                XValue::Nodes(ns) => Ok(XValue::Num(
                    ns.iter()
                        .map(|n| {
                            n.string_value(scope.doc)
                                .trim()
                                .parse()
                                .unwrap_or(f64::NAN)
                        })
                        .sum(),
                )),
                other => Err(EvalError::Type(format!("sum() of {other:?}"))),
            }
        }
        FnOp::Not => {
            arity(1)?;
            Ok(XValue::Bool(!eval_operand(args[0], scope)?.to_bool()))
        }
        FnOp::Boolean => {
            arity(1)?;
            Ok(XValue::Bool(eval_operand(args[0], scope)?.to_bool()))
        }
        FnOp::String => {
            if args.is_empty() {
                return Ok(XValue::Str(scope.item.string_value(scope.doc)));
            }
            arity(1)?;
            Ok(XValue::Str(eval_operand(args[0], scope)?.to_str(scope.doc)))
        }
        FnOp::Number => {
            if args.is_empty() {
                return Ok(XValue::Num(
                    scope
                        .item
                        .string_value(scope.doc)
                        .trim()
                        .parse()
                        .unwrap_or(f64::NAN),
                ));
            }
            arity(1)?;
            Ok(XValue::Num(eval_operand(args[0], scope)?.to_num(scope.doc)))
        }
        FnOp::Concat => {
            if args.len() < 2 {
                return Err(EvalError::BadCall(
                    "concat() expects at least 2 arguments".to_string(),
                ));
            }
            let mut out = String::new();
            for &a in args {
                out.push_str(&eval_operand(a, scope)?.to_str(scope.doc));
            }
            Ok(XValue::Str(out))
        }
        FnOp::Contains => {
            arity(2)?;
            let h = eval_operand(args[0], scope)?.to_str(scope.doc);
            let n = eval_operand(args[1], scope)?.to_str(scope.doc);
            Ok(XValue::Bool(h.contains(&n)))
        }
        FnOp::StartsWith => {
            arity(2)?;
            let h = eval_operand(args[0], scope)?.to_str(scope.doc);
            let n = eval_operand(args[1], scope)?.to_str(scope.doc);
            Ok(XValue::Bool(h.starts_with(&n)))
        }
        FnOp::StringLength => {
            arity(1)?;
            Ok(XValue::Num(
                eval_operand(args[0], scope)?
                    .to_str(scope.doc)
                    .chars()
                    .count() as f64,
            ))
        }
        FnOp::NormalizeSpace => {
            let s = if args.is_empty() {
                scope.item.string_value(scope.doc)
            } else {
                arity(1)?;
                eval_operand(args[0], scope)?.to_str(scope.doc)
            };
            Ok(XValue::Str(
                s.split_whitespace().collect::<Vec<_>>().join(" "),
            ))
        }
        FnOp::Name | FnOp::LocalName => {
            let target = if args.is_empty() {
                scope.item.clone()
            } else {
                arity(1)?;
                match eval_operand(args[0], scope)? {
                    XValue::Nodes(ns) => match ns.first() {
                        Some(n) => n.clone(),
                        None => return Ok(XValue::Str(String::new())),
                    },
                    other => return Err(EvalError::Type(format!("name() of {other:?}"))),
                }
            };
            let full = match &target {
                NodeRef::Node(n) => scope.doc.name(*n).unwrap_or("").to_string(),
                NodeRef::Attr { name, .. } => name.clone(),
            };
            let out = if matches!(op, FnOp::LocalName) {
                full.rsplit(':').next().unwrap_or("").to_string()
            } else {
                full
            };
            Ok(XValue::Str(out))
        }
        FnOp::Unknown(other) => Err(EvalError::BadCall(format!("unknown function {other}()"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{evaluate, evaluate_exists, evaluate_nodes, Context};
    use crate::parser::parse;
    use xic_xml::parse_document;

    const DOC: &str = "<review>\
        <track><name>DB</name>\
          <rev><name>Ann</name>\
            <sub><title>S1</title><auts><name>Bob</name></auts></sub>\
            <sub><title>S2</title><auts><name>Cat</name><name>Ann</name></auts></sub>\
          </rev>\
          <rev><name>Dan</name>\
            <sub><title>S3</title><auts><name>Eve</name></auts></sub>\
          </rev>\
        </track>\
        <track><name>AI</name>\
          <rev><name>Ann</name><sub><title>S4</title><auts><name>Flo</name></auts></sub></rev>\
        </track>\
      </review>";

    /// Every query both engines can evaluate must agree on the
    /// materialized value and the existential answer.
    #[test]
    fn compiled_agrees_with_interpreter() {
        let (doc, _) = parse_document(DOC).unwrap();
        let ctx = Context::root(&doc);
        for src in [
            "//rev",
            "//zzz",
            "//never-seen-name",
            "//rev/name/text()",
            "//sub[auts/name/text() = 'Ann']",
            "//sub[2]",
            "//sub[position() = last()]",
            "(//sub)[1]",
            "//auts/name/..",
            "//rev | //zzz",
            "not(//zzz)",
            "boolean(//track)",
            "//rev/name/text() = //auts/name/text()",
            "count(//sub) > 3",
            "//track and //rev",
            "//zzz or //track",
            "'x'",
            "''",
            "0",
            "3",
            "1 + 2 * 3",
            "7 mod 3",
            "-(3)",
            "'2' = 2",
            "true() = '1'",
            "//sub/preceding-sibling::name",
            "//auts/ancestor::track",
            "//auts/ancestor-or-self::*",
            "//track/name | //rev/name",
            "//sub[2]/preceding-sibling::*[1]",
            "concat('a', 'b')",
            "string-length('héllo')",
            "normalize-space('  a   b ')",
            "name(//track[1])",
            "string(//rev[1]/name)",
            "sum(//zzz)",
            "contains(//rev[1]/name, 'nn')",
        ] {
            let ast = parse(src).unwrap();
            let (prog, root) = compile(&ast);
            let interp = evaluate(&ast, &ctx).unwrap();
            let resolved = prog.resolve(&doc);
            let slots = vec![None; prog.num_slots()];
            let scope = Scope {
                prog: &prog,
                doc: &doc,
                item: NodeRef::Node(doc.document_node()),
                position: 1,
                size: 1,
                slots: &slots,
                resolved: &resolved,
            };
            let compiled = eval(root, &scope).unwrap();
            assert_eq!(compiled, interp, "materialized value differs on {src}");
            let lazy_i = evaluate_exists(&ast, &ctx).unwrap();
            let lazy_c = eval_exists(root, &scope).unwrap();
            assert_eq!(lazy_c, lazy_i, "existential answer differs on {src}");
        }
    }

    #[test]
    fn compiled_attribute_queries_agree() {
        let src = "<r><a id=\"1\" lang=\"en\"/><a id=\"2\"/></r>";
        let (doc, _) = parse_document(src).unwrap();
        let ctx = Context::root(&doc);
        for q in ["//a/@id", "//a[@id = '2']", "//a[@lang]", "//a/@*", "//a/@nope"] {
            let ast = parse(q).unwrap();
            let (prog, root) = compile(&ast);
            assert_eq!(
                prog.evaluate_nodes(root, &doc).unwrap(),
                evaluate_nodes(&ast, &ctx).unwrap(),
                "attribute query differs on {q}"
            );
        }
    }

    #[test]
    fn slots_bind_variables() {
        let (doc, _) = parse_document(DOC).unwrap();
        let ast = parse("$lr/sub").unwrap();
        let (prog, root) = compile(&ast);
        let lr = prog.slot_of("lr").expect("free variable got a slot");
        let revs = {
            let a = parse("//rev").unwrap();
            evaluate_nodes(&a, &Context::root(&doc)).unwrap()
        };
        let mut slots = vec![None; prog.num_slots()];
        slots[lr as usize] = Some(XValue::Nodes(vec![revs[0].clone()]));
        let resolved = prog.resolve(&doc);
        let scope = Scope {
            prog: &prog,
            doc: &doc,
            item: NodeRef::Node(doc.document_node()),
            position: 1,
            size: 1,
            slots: &slots,
            resolved: &resolved,
        };
        let v = eval(root, &scope).unwrap();
        assert_eq!(v.as_nodes().unwrap().len(), 2);
    }

    #[test]
    fn unbound_slot_errors_like_interpreter() {
        let (doc, _) = parse_document(DOC).unwrap();
        let ast = parse("$nope").unwrap();
        let (prog, root) = compile(&ast);
        let err = prog.evaluate_nodes(root, &doc).unwrap_err();
        assert_eq!(err, EvalError::UndefinedVariable("nope".to_string()));
        // …but a short-circuit that never reads the slot never errors.
        let ast2 = parse("//track or $nope").unwrap();
        let (prog2, root2) = compile(&ast2);
        assert!(prog2.evaluate_exists(root2, &doc).unwrap());
    }

    #[test]
    fn errors_match_interpreter() {
        let (doc, _) = parse_document("<r/>").unwrap();
        let ctx = Context::root(&doc);
        for src in ["count(1)", "1 | 2", "frob()", "position(1)", "concat('a')"] {
            let ast = parse(src).unwrap();
            let (prog, root) = compile(&ast);
            let ie = evaluate(&ast, &ctx).unwrap_err();
            let ce = prog
                .evaluate_nodes(root, &doc)
                .map(|_| ())
                .unwrap_err();
            assert_eq!(ce.to_string(), ie.to_string(), "error differs on {src}");
        }
    }

    #[test]
    fn visit_counters_match_interpreter() {
        let (doc, _) = parse_document(DOC).unwrap();
        let ctx = Context::root(&doc);
        for src in ["//sub", "//rev[name = 'Ann']/sub", "//zzz", "//auts/name/.."] {
            let ast = parse(src).unwrap();
            let (prog, root) = compile(&ast);
            xic_obs::reset();
            let _ = evaluate_exists(&ast, &ctx).unwrap();
            let interp_visits = xic_obs::counter(xic_obs::Counter::XpathNodesVisited);
            xic_obs::reset();
            let _ = prog.evaluate_exists(root, &doc).unwrap();
            let ir_visits = xic_obs::counter(xic_obs::Counter::XpathNodesVisited);
            assert_eq!(
                ir_visits, interp_visits,
                "existential visit count differs on {src}"
            );
        }
    }

    #[test]
    fn budget_exhaustion_matches() {
        let (doc, _) = parse_document(DOC).unwrap();
        let ast = parse("//sub/auts/name").unwrap();
        let (prog, root) = compile(&ast);
        let guard = crate::budget::arm(crate::budget::EvalBudget::new(3));
        let err = prog.evaluate_nodes(root, &doc).unwrap_err();
        drop(guard);
        assert_eq!(err, EvalError::BudgetExhausted);
    }
}

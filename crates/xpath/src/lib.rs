//! An XPath 1.0 subset engine over `xic-xml` documents.
//!
//! Supported: all the axes the paper's XPathLog uses (child, attribute,
//! parent, ancestor, descendant, self, preceding-sibling,
//! following-sibling, plus the `-or-self` variants), name/wildcard/text()/
//! node()/comment() node tests, full predicate expressions with
//! `position()`/`last()`, the abbreviations `//`, `@`, `.` and `..`,
//! variable references (used by the XQuery layer), the XPath 1.0 value
//! model (node-set / string / number / boolean) with its coercion and
//! existential comparison rules, and a core function library.
//!
//! # Example
//!
//! ```
//! use xic_xml::parse_document;
//! use xic_xpath::{evaluate, parse as parse_xpath, Context, XValue};
//!
//! let (doc, _) = parse_document(
//!     "<review><track><name>DB</name><rev><name>Ann</name></rev></track></review>",
//! ).unwrap();
//! let path = parse_xpath("//rev/name/text()").unwrap();
//! let ctx = Context::root(&doc);
//! match evaluate(&path, &ctx).unwrap() {
//!     XValue::Nodes(ns) => assert_eq!(ns.len(), 1),
//!     other => panic!("{other:?}"),
//! }
//! ```
//!
//! In the system-inventory table of `DESIGN.md` this crate is item 4 (XPath engine).

pub mod ast;
pub mod budget;
pub mod eval;
pub mod ir;
pub mod lexer;
pub mod parser;
pub mod value;

pub use ast::{Axis, BinOp, Expr, NodeTest, Path, PathStart, Step};
pub use budget::{BudgetGuard, EvalBudget};
pub use eval::{
    compare_values, dedupe_doc_order, eval_variable, evaluate, evaluate_exists, evaluate_nodes,
    evaluate_nonempty, expr_mentions_var, Context, EvalError,
};
pub use parser::{parse, XPathParseError, P};
pub use lexer::{tokenize, Tok};
pub use value::{NodeRef, XValue};

//! XPath abstract syntax.

use std::fmt;

/// A navigation axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// `child::`
    Child,
    /// `descendant::`
    Descendant,
    /// `descendant-or-self::`
    DescendantOrSelf,
    /// `parent::`
    Parent,
    /// `ancestor::`
    Ancestor,
    /// `ancestor-or-self::`
    AncestorOrSelf,
    /// `self::`
    SelfAxis,
    /// `attribute::`
    Attribute,
    /// `preceding-sibling::`
    PrecedingSibling,
    /// `following-sibling::`
    FollowingSibling,
}

impl Axis {
    /// Parses an axis name.
    pub fn from_name(s: &str) -> Option<Axis> {
        Some(match s {
            "child" => Axis::Child,
            "descendant" => Axis::Descendant,
            "descendant-or-self" => Axis::DescendantOrSelf,
            "parent" => Axis::Parent,
            "ancestor" => Axis::Ancestor,
            "ancestor-or-self" => Axis::AncestorOrSelf,
            "self" => Axis::SelfAxis,
            "attribute" => Axis::Attribute,
            "preceding-sibling" => Axis::PrecedingSibling,
            "following-sibling" => Axis::FollowingSibling,
            _ => return None,
        })
    }

    /// True for axes that deliver nodes in reverse document order
    /// (affects `position()` numbering).
    pub fn is_reverse(self) -> bool {
        matches!(self, Axis::Parent | Axis::Ancestor | Axis::AncestorOrSelf | Axis::PrecedingSibling)
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Axis::Child => "child",
            Axis::Descendant => "descendant",
            Axis::DescendantOrSelf => "descendant-or-self",
            Axis::Parent => "parent",
            Axis::Ancestor => "ancestor",
            Axis::AncestorOrSelf => "ancestor-or-self",
            Axis::SelfAxis => "self",
            Axis::Attribute => "attribute",
            Axis::PrecedingSibling => "preceding-sibling",
            Axis::FollowingSibling => "following-sibling",
        };
        f.write_str(s)
    }
}

/// A node test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeTest {
    /// A (qualified) name test.
    Name(String),
    /// `*`
    Wildcard,
    /// `text()`
    Text,
    /// `node()`
    Node,
    /// `comment()`
    Comment,
}

impl fmt::Display for NodeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeTest::Name(n) => f.write_str(n),
            NodeTest::Wildcard => f.write_str("*"),
            NodeTest::Text => f.write_str("text()"),
            NodeTest::Node => f.write_str("node()"),
            NodeTest::Comment => f.write_str("comment()"),
        }
    }
}

/// One location step: `axis::test[predicate]*`.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// The axis.
    pub axis: Axis,
    /// The node test.
    pub test: NodeTest,
    /// Predicates, applied in order.
    pub predicates: Vec<Expr>,
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.axis, &self.test) {
            (Axis::Child, t) => write!(f, "{t}")?,
            (Axis::Attribute, t) => write!(f, "@{t}")?,
            (Axis::Parent, NodeTest::Node) => write!(f, "..")?,
            (Axis::SelfAxis, NodeTest::Node) => write!(f, ".")?,
            (axis, t) => write!(f, "{axis}::{t}")?,
        }
        for p in &self.predicates {
            write!(f, "[{p}]")?;
        }
        Ok(())
    }
}

/// Where a path starts.
#[derive(Debug, Clone, PartialEq)]
pub enum PathStart {
    /// Absolute (`/…`): the document node.
    Root,
    /// Relative: the context node.
    Context,
    /// A variable reference (`$x/…`), resolved by the dynamic context.
    Variable(String),
}

/// A location path.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// Starting point.
    pub start: PathStart,
    /// Steps, in order.
    pub steps: Vec<Step>,
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.start {
            PathStart::Root => {
                if self.steps.is_empty() {
                    return f.write_str("/");
                }
            }
            PathStart::Context => {}
            PathStart::Variable(v) => write!(f, "${v}")?,
        }
        for (i, s) in self.steps.iter().enumerate() {
            let skip_slash = i == 0 && matches!(self.start, PathStart::Context);
            // `//` abbreviation.
            if s.axis == Axis::DescendantOrSelf
                && s.test == NodeTest::Node
                && s.predicates.is_empty()
            {
                write!(f, "/")?;
                continue;
            }
            if !skip_slash {
                write!(f, "/")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

/// Binary operators (XPath 1.0 set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `or`
    Or,
    /// `and`
    And,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `div`
    Div,
    /// `mod`
    Mod,
    /// `|` node-set union
    Union,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Or => "or",
            BinOp::And => "and",
            BinOp::Eq => "=",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "div",
            BinOp::Mod => "mod",
            BinOp::Union => "|",
        };
        f.write_str(s)
    }
}

/// An XPath expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A location path (possibly starting from a variable).
    Path(Path),
    /// A path applied to a filtered primary: `(expr)[pred]/steps`.
    Filter {
        /// The primary expression.
        primary: Box<Expr>,
        /// Predicates on the primary.
        predicates: Vec<Expr>,
        /// Trailing steps (may be empty).
        steps: Vec<Step>,
    },
    /// String literal.
    Literal(String),
    /// Numeric literal.
    Number(f64),
    /// Binary operation.
    Binary(Box<Expr>, BinOp, Box<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
    /// Function call.
    Call(String, Vec<Expr>),
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Path(p) => write!(f, "{p}"),
            Expr::Filter { primary, predicates, steps } => {
                write!(f, "({primary})")?;
                for p in predicates {
                    write!(f, "[{p}]")?;
                }
                for s in steps {
                    write!(f, "/{s}")?;
                }
                Ok(())
            }
            Expr::Literal(s) => write!(f, "{s:?}"),
            Expr::Number(n) => {
                if n.fract() == 0.0 && n.is_finite() {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Expr::Binary(a, op, b) => write!(f, "{a} {op} {b}"),
            Expr::Neg(e) => write!(f, "-{e}"),
            Expr::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_roundtrip() {
        for name in [
            "child",
            "descendant",
            "descendant-or-self",
            "parent",
            "ancestor",
            "ancestor-or-self",
            "self",
            "attribute",
            "preceding-sibling",
            "following-sibling",
        ] {
            let a = Axis::from_name(name).unwrap();
            assert_eq!(a.to_string(), name);
        }
        assert!(Axis::from_name("sideways").is_none());
    }

    #[test]
    fn reverse_axes() {
        assert!(Axis::Ancestor.is_reverse());
        assert!(Axis::PrecedingSibling.is_reverse());
        assert!(!Axis::Child.is_reverse());
        assert!(!Axis::FollowingSibling.is_reverse());
    }
}

//! Property tests for the XPath engine's structural invariants.
//!
//! Every node-set result must be in document order without duplicates —
//! this guards the normalization fast paths in `eval_step` (single-input
//! forward axes, equal-depth child steps), which skip the explicit
//! sort-and-dedup when the result is ordered by construction.

use proptest::prelude::*;
use xic_xpath::{evaluate, parse, Context, NodeRef, XValue};
use xic_xml::{Document, NodeId};

const TAGS: &[&str] = &["a", "b", "c"];

/// Builds a random tree: a sequence of (depth-delta, tag) instructions.
fn build_doc(instr: &[(i8, usize)]) -> Document {
    let mut doc = Document::new();
    let root = doc.create_element("root");
    doc.append_child(doc.document_node(), root);
    let mut stack: Vec<NodeId> = vec![root];
    for &(delta, tag) in instr {
        if delta < 0 {
            for _ in 0..(-delta) {
                if stack.len() > 1 {
                    stack.pop();
                }
            }
        }
        let el = doc.create_element(TAGS[tag % TAGS.len()]);
        let parent = *stack.last().expect("root always present");
        doc.append_child(parent, el);
        if delta > 0 && stack.len() < 6 {
            stack.push(el);
        }
        // Sprinkle text so string-values are non-trivial.
        if tag % 2 == 0 {
            let t = doc.create_text(format!("t{tag}"));
            doc.append_child(el, t);
        }
    }
    doc
}

fn path_strategy() -> impl Strategy<Value = String> {
    let step = prop_oneof![
        prop::sample::select(TAGS).prop_map(|t| t.to_string()),
        Just("*".to_string()),
        Just("..".to_string()),
        Just("node()".to_string()),
        Just("text()".to_string()),
        prop::sample::select(TAGS).prop_map(|t| format!("{t}[1]")),
        prop::sample::select(TAGS).prop_map(|t| format!("ancestor::{t}")),
        prop::sample::select(TAGS).prop_map(|t| format!("preceding-sibling::{t}")),
        prop::sample::select(TAGS).prop_map(|t| format!("following-sibling::{t}")),
        prop::sample::select(TAGS).prop_map(|t| format!("descendant-or-self::{t}")),
    ];
    (
        prop::sample::select(&["//", "/", "//root/"][..]),
        prop::collection::vec((step, prop::bool::ANY), 1..4),
    )
        .prop_map(|(start, steps)| {
            let mut s = start.to_string();
            for (i, (st, dbl)) in steps.iter().enumerate() {
                if i > 0 {
                    s.push_str(if *dbl { "//" } else { "/" });
                }
                s.push_str(st);
            }
            s
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 300, ..ProptestConfig::default() })]

    #[test]
    fn node_sets_are_ordered_and_duplicate_free(
        instr in prop::collection::vec((-3i8..3, 0usize..6), 1..40),
        path in path_strategy(),
    ) {
        let doc = build_doc(&instr);
        let Ok(expr) = parse(&path) else { return Ok(()); };
        let ctx = Context::root(&doc);
        let Ok(XValue::Nodes(ns)) = evaluate(&expr, &ctx) else { return Ok(()); };
        // Document-order keys must be strictly increasing.
        let keys: Vec<(Vec<u32>, u8, String)> = ns
            .iter()
            .map(|n| match n {
                NodeRef::Node(id) => (doc.order_key(*id), 0, String::new()),
                NodeRef::Attr { owner, name } => (doc.order_key(*owner), 1, name.clone()),
            })
            .collect();
        for w in keys.windows(2) {
            prop_assert!(
                w[0] < w[1],
                "result of {} not strictly document-ordered: {:?}",
                path,
                ns
            );
        }
    }

    #[test]
    fn count_matches_nodeset_length(
        instr in prop::collection::vec((-3i8..3, 0usize..6), 1..30),
    ) {
        let doc = build_doc(&instr);
        let ctx = Context::root(&doc);
        for tag in TAGS {
            let ns = evaluate(&parse(&format!("//{tag}")).unwrap(), &ctx).unwrap();
            let cnt = evaluate(&parse(&format!("count(//{tag})")).unwrap(), &ctx).unwrap();
            let n = match ns {
                XValue::Nodes(v) => v.len() as f64,
                other => panic!("{other:?}"),
            };
            prop_assert_eq!(cnt, XValue::Num(n));
        }
    }

    #[test]
    fn union_is_commutative_on_nodesets(
        instr in prop::collection::vec((-3i8..3, 0usize..6), 1..30),
    ) {
        let doc = build_doc(&instr);
        let ctx = Context::root(&doc);
        let ab = evaluate(&parse("//a | //b").unwrap(), &ctx).unwrap();
        let ba = evaluate(&parse("//b | //a").unwrap(), &ctx).unwrap();
        prop_assert_eq!(ab, ba);
    }
}
